"""Graph serialization: TSV and JSON round-trips.

Two formats are supported:

* **TSV** — a simple two-section text format, convenient for large graphs
  and for eyeballing:

  .. code-block:: text

     # nodes: id <TAB> label <TAB> value(optional, JSON-encoded)
     N	0	movie	"Skyfall"
     N	1	year	2012
     # edges: source <TAB> target
     E	0	1

* **JSON** — a single document with ``nodes`` and ``edges`` arrays; handy
  for small fixtures and interchange.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.errors import GraphError
from repro.graph.graph import Graph, GraphView


# --------------------------------------------------------------------------- TSV
def write_tsv(graph: GraphView, destination) -> None:
    """Write ``graph`` to a path or text file object in TSV format."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _write_tsv(graph, handle)
    else:
        _write_tsv(graph, destination)


def _write_tsv(graph: GraphView, handle: TextIO) -> None:
    for v in sorted(graph.nodes()):
        value = graph.value_of(v)
        if value is None:
            handle.write(f"N\t{v}\t{graph.label_of(v)}\n")
        else:
            handle.write(f"N\t{v}\t{graph.label_of(v)}\t{json.dumps(value)}\n")
    for v in sorted(graph.nodes()):
        for w in sorted(graph.out_neighbors(v)):
            handle.write(f"E\t{v}\t{w}\n")


def read_tsv(source) -> Graph:
    """Read a graph from a path or text file object in TSV format."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read_tsv(handle)
    return _read_tsv(source)


def _read_tsv(handle: TextIO) -> Graph:
    graph = Graph()
    for lineno, raw in enumerate(handle, start=1):
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        kind = parts[0]
        if kind == "N":
            if len(parts) not in (3, 4):
                raise GraphError(f"line {lineno}: malformed node row {line!r}")
            node_id = int(parts[1])
            value = json.loads(parts[3]) if len(parts) == 4 else None
            graph.add_node(parts[2], value=value, node_id=node_id)
        elif kind == "E":
            if len(parts) != 3:
                raise GraphError(f"line {lineno}: malformed edge row {line!r}")
            graph.add_edge(int(parts[1]), int(parts[2]))
        else:
            raise GraphError(f"line {lineno}: unknown row kind {kind!r}")
    return graph


# -------------------------------------------------------------------------- JSON
def to_dict(graph: GraphView) -> dict:
    """Convert a graph to a JSON-serializable dict."""
    nodes = []
    for v in sorted(graph.nodes()):
        entry = {"id": v, "label": graph.label_of(v)}
        value = graph.value_of(v)
        if value is not None:
            entry["value"] = value
        nodes.append(entry)
    edges = [[v, w] for v in sorted(graph.nodes())
             for w in sorted(graph.out_neighbors(v))]
    return {"nodes": nodes, "edges": edges}


def from_dict(payload: dict) -> Graph:
    """Build a graph from the dict produced by :func:`to_dict`."""
    graph = Graph()
    try:
        for entry in payload["nodes"]:
            graph.add_node(entry["label"], value=entry.get("value"),
                           node_id=int(entry["id"]))
        for source, target in payload["edges"]:
            graph.add_edge(int(source), int(target))
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed graph document: {exc}") from exc
    return graph


def write_json(graph: GraphView, destination) -> None:
    """Write ``graph`` as JSON to a path or text file object."""
    payload = to_dict(graph)
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    else:
        json.dump(payload, destination)


def read_json(source) -> Graph:
    """Read a graph from JSON at a path or text file object."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return from_dict(json.load(handle))
    return from_dict(json.load(source))
