"""Synthetic dataset generators.

The paper evaluates on IMDb, DBpedia 3.9 and WebBase-2001. Those datasets
are not redistributable here, so each generator builds a synthetic graph
with the *same structural and cardinality properties* the paper's
algorithms consume (see DESIGN.md, "Substitutions"):

* :func:`imdb_like` — movies/casts/awards with the paper's C1–C6
  cardinality semantics, plus the published access schema ``A0``;
* :func:`dbpedia_like` — heterogeneous knowledge graph, many labels;
* :func:`web_like` — power-law web graph, labels are domains;
* :func:`random_labeled_graph` — uniform random graphs for property tests.

Each dataset generator returns ``(graph, schema)`` where the graph is
guaranteed to satisfy every constraint of the schema.
"""

from repro.graph.generators.imdb import imdb_like
from repro.graph.generators.dbpedia import dbpedia_like
from repro.graph.generators.web import web_like
from repro.graph.generators.random_graphs import random_labeled_graph

__all__ = ["imdb_like", "dbpedia_like", "web_like", "random_labeled_graph"]
