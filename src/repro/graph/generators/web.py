"""Web-like synthetic graph (the paper's WebBG / Webbase-2001 stand-in).

WebBase labels nodes (URLs) with their domain names. What matters for the
paper's experiments is (a) a zipfian domain-size distribution — a few huge
domains and a long tail of small ones, giving type (1) constraints on the
tail — and (b) scale-free link structure in which *in*-degrees are
unbounded, so most page-to-page label pairs admit no unit constraint
(this is why fewer web queries are effectively bounded).

Structured satellite nodes (per-domain site nodes, TLDs, categories,
registrars) provide the unit constraints a real crawl's metadata would:
every page references exactly one site node, one registrar and at most two
categories, and each site references one TLD.

Declared type (1) bounds for tail domains use the *base* (scale = 1.0)
population, so one schema remains valid across all scale factors —
mirroring how the paper keeps A fixed while scaling |G|.
"""

from __future__ import annotations

import random

from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.graph.graph import Graph

NUM_DOMAINS = 120
NUM_TLDS = 12
NUM_CATEGORIES = 60
NUM_REGISTRARS = 15

#: Domains with a base population at or below this are "tail" domains and
#: get a type (1) constraint.
TAIL_THRESHOLD = 400

BASE_TOTAL_PAGES = 30000
ZIPF_EXPONENT = 1.1

MAX_INTRA_LINKS = 8
MAX_CROSS_LINKS = 5
MAX_CATEGORIES_PER_PAGE = 2


def _domain_sizes(total_pages: int) -> list[int]:
    """Zipfian page counts per domain (deterministic)."""
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(NUM_DOMAINS)]
    weight_sum = sum(weights)
    return [max(int(total_pages * w / weight_sum), 2) for w in weights]


def web_like(scale: float = 1.0, seed: int = 0) -> tuple[Graph, AccessSchema]:
    """Generate the WebBG stand-in at the given scale."""
    rng = random.Random(seed)
    graph = Graph()

    tlds = [graph.add_node("tld", value=f"tld_{i}") for i in range(NUM_TLDS)]
    categories = [graph.add_node("category", value=f"cat_{i}")
                  for i in range(NUM_CATEGORIES)]
    registrars = [graph.add_node("registrar", value=f"reg_{i}")
                  for i in range(NUM_REGISTRARS)]
    sites = []
    for i in range(NUM_DOMAINS):
        site = graph.add_node("site", value=f"dom_{i}")
        sites.append(site)
        graph.add_edge(site, rng.choice(tlds))

    base_sizes = _domain_sizes(BASE_TOTAL_PAGES)
    actual_sizes = [max(int(size * scale), 1) for size in base_sizes]

    pages_by_domain: list[list[int]] = []
    all_pages: list[int] = []
    for i, size in enumerate(actual_sizes):
        pages = [graph.add_node(f"dom_{i}", value=j) for j in range(size)]
        pages_by_domain.append(pages)
        all_pages.extend(pages)
        site = sites[i]
        registrar = rng.choice(registrars)
        for page in pages:
            graph.add_edge(page, site)
            graph.add_edge(page, registrar)
            for category in rng.sample(categories,
                                       rng.randint(1, MAX_CATEGORIES_PER_PAGE)):
                graph.add_edge(page, category)

    # Scale-free page links: preferential attachment to early pages (hubs).
    for i, pages in enumerate(pages_by_domain):
        for page in pages:
            intra = rng.randint(0, MAX_INTRA_LINKS)
            for _ in range(intra):
                # Preferential: early pages of the domain are hubs.
                target = pages[min(int(rng.expovariate(4.0) * len(pages)),
                                   len(pages) - 1)]
                if target != page:
                    graph.add_edge(page, target)
            cross = rng.randint(0, MAX_CROSS_LINKS)
            for _ in range(cross):
                other = min(int(rng.expovariate(2.0) * NUM_DOMAINS),
                            NUM_DOMAINS - 1)
                bucket = pages_by_domain[other] if other < len(pages_by_domain) else pages
                target = bucket[min(int(rng.expovariate(4.0) * len(bucket)),
                                    len(bucket) - 1)]
                if target != page:
                    graph.add_edge(page, target)

    constraints = [
        AccessConstraint((), "site", NUM_DOMAINS),
        AccessConstraint((), "tld", NUM_TLDS),
        AccessConstraint((), "category", NUM_CATEGORIES),
        AccessConstraint((), "registrar", NUM_REGISTRARS),
        AccessConstraint(("site",), "tld", 1),
    ]
    tail = {i for i, base in enumerate(base_sizes) if base <= TAIL_THRESHOLD}
    # Tail domains first: their type (1) constraints are the seeds that
    # make web queries bounded, so small ‖A‖ prefixes (the Fig. 5(c,g,k)
    # sweep restricts the schema to its first constraints) stay useful.
    ordering = sorted(range(NUM_DOMAINS), key=lambda i: (i not in tail, i))
    for i in ordering:
        label = f"dom_{i}"
        if i in tail:
            population = max(base_sizes[i], actual_sizes[i])
            constraints.append(AccessConstraint((), label, population))
            # A site node has at most |dom_i| page neighbours of its own
            # domain, and tail populations are constant in |G|.
            constraints.append(AccessConstraint(("site",), label, population))
        constraints.append(AccessConstraint((label,), "site", 1))
        constraints.append(AccessConstraint((label,), "registrar", 1))
        constraints.append(AccessConstraint((label,), "category",
                                            MAX_CATEGORIES_PER_PAGE))

    # Page-to-page constraints between *tail* domains: a dom_i page can
    # have at most |dom_j| neighbours labeled dom_j, and tail populations
    # are constant in |G| — so dom_i -> (dom_j, base_j) always holds.
    # Only pairs that actually occur as links are declared (mirroring the
    # paper's "we extracted constraints ... using degree bounds").
    linked_pairs: set[tuple[int, int]] = set()
    for i in tail:
        for page in pages_by_domain[i]:
            for other_page in graph.neighbors(page):
                other_label = graph.label_of(other_page)
                if other_label.startswith("dom_"):
                    j = int(other_label[4:])
                    if j in tail:
                        linked_pairs.add((i, j))
    for (i, j) in sorted(linked_pairs):
        bound = max(base_sizes[j], actual_sizes[j])
        constraints.append(AccessConstraint((f"dom_{i}",), f"dom_{j}", bound))
    return graph, AccessSchema(constraints)
