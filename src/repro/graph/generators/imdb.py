"""IMDb-like synthetic graph (the paper's IMDbG stand-in).

Reproduces the cardinality semantics of Examples 1 and 3:

* C1/φ1: each award is presented to at most 4 movies per year
  — ``(year, award) -> (movie, 4)``;
* C2/φ2: each movie has at most 30 first-billed actors and 30 actresses
  — ``movie -> (actor, 30)``, ``movie -> (actress, 30)``;
* C3/φ3: each person has one country of origin
  — ``actor -> (country, 1)``, ``actress -> (country, 1)``;
* C4–C6/φ4–φ6: 135 years, 24 awards, 196 countries
  — ``∅ -> (year, 135)``, ``∅ -> (award, 24)``, ``∅ -> (country, 196)``.

plus auxiliary structure (genres, directors, release countries) that gives
the ‖A‖-sweep benchmarks a pool of ~20 constraints, mirroring the paper's
"168 access constraints extracted from IMDbG; there are many more ... which
we did not use".

The node/edge counts scale linearly with ``scale`` while the label domains
(years, awards, countries, genres) stay fixed — exactly how the paper's
scale-factor experiment subsets a fixed universe.
"""

from __future__ import annotations

import random

from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.graph.graph import Graph

#: Fixed label-domain sizes from the paper.
NUM_YEARS = 135          # 1880-2014 (C4)
NUM_AWARDS = 24          # major movie awards (C5)
NUM_COUNTRIES = 196      # (C6)
NUM_GENRES = 30
NUM_STUDIOS = 150
MAX_MOVIES_PER_STUDIO = 60

#: Declared cardinality bounds (enforced during generation).
MAX_MOVIES_PER_YEAR_AWARD = 4     # C1
MAX_ACTORS_PER_MOVIE = 30         # C2
MAX_AWARDS_PER_MOVIE = 8
MAX_GENRES_PER_MOVIE = 3
MAX_DIRECTORS_PER_MOVIE = 2
MAX_RELEASE_COUNTRIES = 2
MAX_MOVIES_PER_PERSON = 50
MAX_MOVIES_PER_YEAR = 90          # release-calendar bound (constant in |G|)
MAX_MOVIES_PER_DIRECTOR = 40

#: Base population at scale 1.0.
BASE_MOVIES = 4000
BASE_ACTORS = 8000
BASE_ACTRESSES = 8000
BASE_DIRECTORS = 1200


def imdb_like(scale: float = 1.0, seed: int = 0) -> tuple[Graph, AccessSchema]:
    """Generate the IMDbG stand-in at the given scale.

    Returns ``(graph, schema)``; the graph satisfies every constraint in
    the schema by construction.
    """
    rng = random.Random(seed)
    graph = Graph()

    years = [graph.add_node("year", value=1880 + i) for i in range(NUM_YEARS)]
    awards = [graph.add_node("award", value=f"award_{i}") for i in range(NUM_AWARDS)]
    countries = [graph.add_node("country", value=f"country_{i}")
                 for i in range(NUM_COUNTRIES)]
    genres = [graph.add_node("genre", value=f"genre_{i}") for i in range(NUM_GENRES)]
    studios = [graph.add_node("studio", value=f"studio_{i}")
               for i in range(NUM_STUDIOS)]

    num_movies = max(int(BASE_MOVIES * scale), 20)
    num_actors = max(int(BASE_ACTORS * scale), 40)
    num_actresses = max(int(BASE_ACTRESSES * scale), 40)
    num_directors = max(int(BASE_DIRECTORS * scale), 10)

    movies = [graph.add_node("movie", value=f"movie_{i}") for i in range(num_movies)]
    actors = [graph.add_node("actor", value=f"actor_{i}") for i in range(num_actors)]
    actresses = [graph.add_node("actress", value=f"actress_{i}")
                 for i in range(num_actresses)]
    directors = [graph.add_node("director", value=f"director_{i}")
                 for i in range(num_directors)]

    # Persons have exactly one country of origin (C3).
    for person in actors + actresses + directors:
        graph.add_edge(person, rng.choice(countries))

    # Movies: one year, 1-3 genres, 1-2 directors, 1-2 release countries.
    # Per-year and per-director movie counts are capped so that
    # year -> (movie, N) and director -> (movie, N) hold at every scale.
    movies_by_year: dict[int, list[int]] = {y: [] for y in years}
    movies_per_director = {d: 0 for d in directors}
    movies_per_studio = {s: 0 for s in studios}
    for movie in movies:
        year = rng.choice(years)
        if len(movies_by_year[year]) >= MAX_MOVIES_PER_YEAR:
            year = min(years, key=lambda y: len(movies_by_year[y]))
        graph.add_edge(movie, year)
        movies_by_year[year].append(movie)
        studio = rng.choice(studios)
        if movies_per_studio[studio] >= MAX_MOVIES_PER_STUDIO:
            studio = min(studios, key=movies_per_studio.__getitem__)
        graph.add_edge(movie, studio)
        movies_per_studio[studio] += 1
        for genre in rng.sample(genres, rng.randint(1, MAX_GENRES_PER_MOVIE)):
            graph.add_edge(movie, genre)
        for director in rng.sample(directors, rng.randint(1, MAX_DIRECTORS_PER_MOVIE)):
            if movies_per_director[director] < MAX_MOVIES_PER_DIRECTOR:
                graph.add_edge(movie, director)
                movies_per_director[director] += 1
        for country in rng.sample(countries, rng.randint(1, MAX_RELEASE_COUNTRIES)):
            graph.add_edge(movie, country)

    # Awards: for each (year, award) pair, at most 4 winning movies (C1),
    # and each movie collects at most MAX_AWARDS_PER_MOVIE awards.
    awards_per_movie = {m: 0 for m in movies}
    for year in years:
        eligible = movies_by_year[year]
        if not eligible:
            continue
        for award in awards:
            if rng.random() > 0.35:
                continue
            winners = rng.sample(eligible,
                                 min(len(eligible),
                                     rng.randint(1, MAX_MOVIES_PER_YEAR_AWARD)))
            for movie in winners:
                if awards_per_movie[movie] >= MAX_AWARDS_PER_MOVIE:
                    continue
                graph.add_edge(movie, award)
                awards_per_movie[movie] += 1

    # Casts: 3-12 first-billed actors and actresses per movie (within C2),
    # with a per-person movie cap so person -> (movie, N) also holds.
    # Both edge directions are materialized (movie "hasActor" person and
    # person "actedIn" movie), as RDF-style datasets do; neighbour-based
    # cardinalities are direction-agnostic, so every bound still holds,
    # while simulation covers gain usable child edges.
    movies_per_person = {p: 0 for p in actors + actresses}

    def cast(movie: int, pool: list[int], count: int) -> None:
        chosen = rng.sample(pool, min(count, len(pool)))
        for person in chosen:
            if movies_per_person[person] >= MAX_MOVIES_PER_PERSON:
                continue
            graph.add_edge(movie, person)
            graph.add_edge(person, movie)
            movies_per_person[person] += 1

    for movie in movies:
        cast(movie, actors, rng.randint(3, 12))
        cast(movie, actresses, rng.randint(3, 12))

    schema = AccessSchema([
        # The paper's A0 (Example 3).
        AccessConstraint(("year", "award"), "movie", MAX_MOVIES_PER_YEAR_AWARD),
        AccessConstraint(("movie",), "actor", MAX_ACTORS_PER_MOVIE),
        AccessConstraint(("movie",), "actress", MAX_ACTORS_PER_MOVIE),
        AccessConstraint(("actor",), "country", 1),
        AccessConstraint(("actress",), "country", 1),
        AccessConstraint((), "year", NUM_YEARS),
        AccessConstraint((), "award", NUM_AWARDS),
        AccessConstraint((), "country", NUM_COUNTRIES),
        # Auxiliary constraints (the "many more" the paper mentions).
        AccessConstraint((), "genre", NUM_GENRES),
        AccessConstraint(("movie",), "year", 1),
        AccessConstraint(("movie",), "genre", MAX_GENRES_PER_MOVIE),
        AccessConstraint(("movie",), "director", MAX_DIRECTORS_PER_MOVIE),
        AccessConstraint(("movie",), "country", MAX_RELEASE_COUNTRIES),
        AccessConstraint(("movie",), "award", MAX_AWARDS_PER_MOVIE),
        AccessConstraint(("director",), "country", 1),
        AccessConstraint(("actor",), "movie", MAX_MOVIES_PER_PERSON),
        AccessConstraint(("actress",), "movie", MAX_MOVIES_PER_PERSON),
        AccessConstraint(("award", "movie"), "year", 1),
        AccessConstraint(("actress", "year"), "movie", MAX_MOVIES_PER_PERSON),
        AccessConstraint(("actor", "year"), "movie", MAX_MOVIES_PER_PERSON),
        AccessConstraint(("year",), "movie", MAX_MOVIES_PER_YEAR),
        AccessConstraint(("director",), "movie", MAX_MOVIES_PER_DIRECTOR),
        AccessConstraint((), "studio", NUM_STUDIOS),
        AccessConstraint(("studio",), "movie", MAX_MOVIES_PER_STUDIO),
        AccessConstraint(("movie",), "studio", 1),
    ])
    return graph, schema
