"""DBpedia-like synthetic knowledge graph (the paper's DBpediaG stand-in).

DBpedia's salient properties for this paper are (a) a *large number of
labels* (entity types — 1434 in DBpedia 3.9) with zipfian population
sizes, and (b) typed relations with natural per-entity cardinality bounds
(a city lies in one country, a film has a handful of directors...).

The generator builds a typed entity graph around a geography backbone
(continent/country/city) with people, organizations and creative works
attached, plus a tail of small "rare" entity types that give type (1)
constraints the same role label frequencies played in the paper.
"""

from __future__ import annotations

import random

from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.graph.graph import Graph

NUM_CONTINENTS = 7
NUM_COUNTRIES = 180
NUM_LANGUAGES = 150
NUM_OCCUPATIONS = 90
NUM_GENRES = 40
NUM_RARE_TYPES = 40     # tail entity types with tiny populations
MAX_COUNTRIES_PER_CONTINENT = 40

BASE_CITIES = 2500
BASE_PERSONS = 6000
BASE_COMPANIES = 1200
BASE_UNIVERSITIES = 400
BASE_FILMS = 2500
BASE_BOOKS = 1800

MAX_INFLUENCES = 4
MAX_FILM_CAST = 10
MAX_FILMS_PER_PERSON = 30
MAX_BOOKS_PER_PERSON = 25
MAX_EMPLOYERS = 3
MAX_PERSON_LANGUAGES = 4
MAX_PERSON_OCCUPATIONS = 3

#: Reverse-direction caps, constant in |G| (enforced during generation) —
#: they let covers deduce downward from the geography backbone.
MAX_CITIES_PER_COUNTRY = 60
MAX_PERSONS_PER_CITY = 40
MAX_COMPANIES_PER_CITY = 20
MAX_UNIVERSITIES_PER_CITY = 8


def dbpedia_like(scale: float = 1.0, seed: int = 0) -> tuple[Graph, AccessSchema]:
    """Generate the DBpediaG stand-in at the given scale."""
    rng = random.Random(seed)
    graph = Graph()

    continents = [graph.add_node("continent", value=f"continent_{i}")
                  for i in range(NUM_CONTINENTS)]
    countries = [graph.add_node("country", value=f"country_{i}")
                 for i in range(NUM_COUNTRIES)]
    languages = [graph.add_node("language", value=f"lang_{i}")
                 for i in range(NUM_LANGUAGES)]
    occupations = [graph.add_node("occupation", value=f"occ_{i}")
                   for i in range(NUM_OCCUPATIONS)]
    genres = [graph.add_node("genre", value=f"genre_{i}")
              for i in range(NUM_GENRES)]

    countries_per_continent = {c: 0 for c in continents}
    for country in countries:
        continent = rng.choice(continents)
        if countries_per_continent[continent] >= MAX_COUNTRIES_PER_CONTINENT:
            continent = min(continents, key=countries_per_continent.__getitem__)
        countries_per_continent[continent] += 1
        graph.add_edge(country, continent)
        for language in rng.sample(languages, rng.randint(1, 3)):
            graph.add_edge(country, language)

    num_cities = max(int(BASE_CITIES * scale), 20)
    num_persons = max(int(BASE_PERSONS * scale), 40)
    num_companies = max(int(BASE_COMPANIES * scale), 10)
    num_universities = max(int(BASE_UNIVERSITIES * scale), 5)
    num_films = max(int(BASE_FILMS * scale), 10)
    num_books = max(int(BASE_BOOKS * scale), 10)

    def pick_capped(pool: list[int], counts: dict[int, int], cap: int) -> int:
        """Choose a pool member whose usage is below ``cap``."""
        choice = rng.choice(pool)
        if counts[choice] >= cap:
            choice = min(pool, key=counts.__getitem__)
        counts[choice] += 1
        return choice

    cities = [graph.add_node("city", value=f"city_{i}") for i in range(num_cities)]
    cities_per_country = {c: 0 for c in countries}
    for city in cities:
        graph.add_edge(city, pick_capped(countries, cities_per_country,
                                         MAX_CITIES_PER_COUNTRY))

    persons = [graph.add_node("person", value=1900 + rng.randint(0, 99))
               for _ in range(num_persons)]
    persons_per_city = {c: 0 for c in cities}
    for person in persons:
        graph.add_edge(person, pick_capped(cities, persons_per_city,
                                           MAX_PERSONS_PER_CITY))  # birthplace
        for language in rng.sample(languages,
                                   rng.randint(1, MAX_PERSON_LANGUAGES)):
            graph.add_edge(person, language)
        for occupation in rng.sample(occupations,
                                     rng.randint(1, MAX_PERSON_OCCUPATIONS)):
            graph.add_edge(person, occupation)
    for person in persons:
        for other in rng.sample(persons, rng.randint(0, MAX_INFLUENCES)):
            if other != person and not graph.has_edge(person, other):
                graph.add_edge(person, other)                        # influenced

    companies = [graph.add_node("company", value=f"company_{i}")
                 for i in range(num_companies)]
    employees_of = {p: 0 for p in persons}
    companies_per_city = {c: 0 for c in cities}
    for company in companies:
        graph.add_edge(company, pick_capped(cities, companies_per_city,
                                            MAX_COMPANIES_PER_CITY))
        for person in rng.sample(persons, min(len(persons), rng.randint(2, 12))):
            if employees_of[person] < MAX_EMPLOYERS:
                graph.add_edge(person, company)
                employees_of[person] += 1

    universities = [graph.add_node("university", value=f"univ_{i}")
                    for i in range(num_universities)]
    universities_per_city = {c: 0 for c in cities}
    for university in universities:
        graph.add_edge(university, pick_capped(cities, universities_per_city,
                                               MAX_UNIVERSITIES_PER_CITY))

    # Films/books carry both edge directions to their people (starring and
    # actedIn / author and wrote), as RDF dumps do; neighbour cardinalities
    # are unaffected, simulation covers gain child edges.
    films = [graph.add_node("film", value=1950 + rng.randint(0, 70))
             for _ in range(num_films)]
    films_per_person = {p: 0 for p in persons}
    for film in films:
        for genre in rng.sample(genres, rng.randint(1, 2)):
            graph.add_edge(film, genre)
        for person in rng.sample(persons, min(len(persons),
                                               rng.randint(2, MAX_FILM_CAST))):
            if films_per_person[person] < MAX_FILMS_PER_PERSON:
                graph.add_edge(film, person)
                graph.add_edge(person, film)
                films_per_person[person] += 1

    books = [graph.add_node("book", value=1900 + rng.randint(0, 120))
             for _ in range(num_books)]
    books_per_person = {p: 0 for p in persons}
    for book in books:
        for genre in rng.sample(genres, rng.randint(1, 2)):
            graph.add_edge(book, genre)
        for person in rng.sample(persons, min(len(persons), rng.randint(1, 3))):
            if books_per_person[person] < MAX_BOOKS_PER_PERSON:
                graph.add_edge(book, person)
                graph.add_edge(person, book)
                books_per_person[person] += 1

    # Tail of rare entity types (e.g. "space_mission_17"): tiny populations,
    # each member linked to a country plus chain links to the previous rare
    # type. DBpedia 3.9 has 1434 types with zipfian sizes; this tail is what
    # makes many of a random workload's labels type (1)-coverable.
    rare_labels: list[str] = []
    rare_nodes: dict[str, list[int]] = {}
    for i in range(NUM_RARE_TYPES):
        label = f"rare_type_{i}"
        rare_labels.append(label)
        members = []
        for j in range(rng.randint(1, 12)):
            node = graph.add_node(label, value=f"{label}_{j}")
            graph.add_edge(node, rng.choice(countries))
            members.append(node)
        rare_nodes[label] = members
    rare_pairs: list[tuple[str, str]] = []
    for i in range(1, NUM_RARE_TYPES):
        a, b = rare_labels[i], rare_labels[i - 1]
        rare_pairs.append((a, b))
        for node in rare_nodes[a]:
            graph.add_edge(node, rng.choice(rare_nodes[b]))

    schema = AccessSchema([
        AccessConstraint((), "continent", NUM_CONTINENTS),
        AccessConstraint((), "country", NUM_COUNTRIES),
        AccessConstraint((), "language", NUM_LANGUAGES),
        AccessConstraint((), "occupation", NUM_OCCUPATIONS),
        AccessConstraint((), "genre", NUM_GENRES),
        AccessConstraint(("country",), "continent", 1),
        AccessConstraint(("country",), "language", 3),
        AccessConstraint(("city",), "country", 1),
        AccessConstraint(("person",), "city", 1),
        AccessConstraint(("person",), "language", MAX_PERSON_LANGUAGES),
        AccessConstraint(("person",), "occupation", MAX_PERSON_OCCUPATIONS),
        AccessConstraint(("person",), "company", MAX_EMPLOYERS),
        AccessConstraint(("person",), "film", MAX_FILMS_PER_PERSON),
        AccessConstraint(("person",), "book", MAX_BOOKS_PER_PERSON),
        AccessConstraint(("company",), "city", 1),
        AccessConstraint(("university",), "city", 1),
        AccessConstraint(("film",), "person", MAX_FILM_CAST),
        AccessConstraint(("film",), "genre", 2),
        AccessConstraint(("book",), "person", 3),
        AccessConstraint(("book",), "genre", 2),
        AccessConstraint(("city", "continent"), "country", 1),
        AccessConstraint(("country",), "city", MAX_CITIES_PER_COUNTRY),
        AccessConstraint(("city",), "person", MAX_PERSONS_PER_CITY),
        AccessConstraint(("city",), "company", MAX_COMPANIES_PER_CITY),
        AccessConstraint(("city",), "university", MAX_UNIVERSITIES_PER_CITY),
        AccessConstraint(("continent",), "country", MAX_COUNTRIES_PER_CONTINENT),
    ] + [AccessConstraint((), label, 12) for label in rare_labels]
      + [AccessConstraint((label,), "country", 1) for label in rare_labels]
      + [AccessConstraint((a,), b, 12) for a, b in rare_pairs]
      + [AccessConstraint((b,), a, 12) for a, b in rare_pairs])
    return graph, schema
