"""Uniform random labeled graphs — fixtures for property-based tests.

Unlike the dataset generators, these graphs enforce nothing; tests pair
them with :mod:`repro.constraints.discovery` to obtain schemas that the
graph satisfies by construction (discovered bounds are observed maxima).
"""

from __future__ import annotations

import random

from repro.graph.graph import Graph


def random_labeled_graph(num_nodes: int, num_labels: int, num_edges: int,
                         seed: int = 0, value_range: int | None = 100,
                         rng: random.Random | None = None) -> Graph:
    """A random directed graph with uniform labels and integer values.

    Parameters
    ----------
    value_range:
        Node values are drawn from ``[0, value_range)``; pass None for
        valueless nodes.
    """
    rng = rng or random.Random(seed)
    graph = Graph()
    for _ in range(num_nodes):
        label = f"L{rng.randrange(max(num_labels, 1))}"
        value = rng.randrange(value_range) if value_range else None
        graph.add_node(label, value=value)
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        return graph
    added = 0
    attempts = 0
    while added < num_edges and attempts < 10 * num_edges:
        attempts += 1
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        if source != target and graph.add_edge(source, target):
            added += 1
    return graph
