"""Graph substrate: node-labeled directed graphs (Section II of the paper).

The central class is :class:`~repro.graph.graph.Graph`, a mutable
adjacency-set store with a built-in label index. A read-only, memory-compact
snapshot is available as :class:`~repro.graph.frozen.FrozenGraph`; both
expose the same read interface (:class:`~repro.graph.graph.GraphView`), so
all matching algorithms work on either.
"""

from repro.graph.graph import Graph, GraphView
from repro.graph.frozen import FrozenGraph
from repro.graph.delta import GraphDelta, EdgeChange, NodeChange

__all__ = [
    "Graph",
    "GraphView",
    "FrozenGraph",
    "GraphDelta",
    "EdgeChange",
    "NodeChange",
]
