"""Mutable node-labeled directed graph store.

This implements the data-graph model of Section II of the paper:
``G = (V, E, f, nu)`` where ``f(v)`` is the label of node ``v`` and
``nu(v)`` its attribute value. Nodes are integer ids, labels are strings,
and values are arbitrary comparable scalars (or ``None``).

Design notes
------------
* Adjacency is stored as two ``dict[int, set[int]]`` maps (out and in),
  which makes ``has_edge`` O(1) and neighbour iteration O(degree) — the two
  operations every algorithm in this library leans on.
* A label index ``label -> set[node]`` is maintained incrementally so that
  type (1) access constraints (``∅ -> (l, N)``) can be served in O(N).
* The class deliberately avoids networkx: per the reproduction notes, a
  plain dict-of-sets store is several times faster and leaner, which
  matters when benchmarks sweep graph scale.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import GraphError


class GraphView:
    """Read-only interface shared by :class:`Graph` and ``FrozenGraph``.

    Subclasses must provide the attributes/methods used below; this base
    class implements the derived conveniences on top of them so the two
    stores stay behaviourally identical.
    """

    # -- interface expected from subclasses --------------------------------
    def nodes(self) -> Iterable[int]:
        raise NotImplementedError

    def has_node(self, node: int) -> bool:
        raise NotImplementedError

    def label_of(self, node: int) -> str:
        raise NotImplementedError

    def value_of(self, node: int):
        raise NotImplementedError

    def out_neighbors(self, node: int) -> Iterable[int]:
        raise NotImplementedError

    def in_neighbors(self, node: int) -> Iterable[int]:
        raise NotImplementedError

    def has_edge(self, source: int, target: int) -> bool:
        raise NotImplementedError

    def nodes_with_label(self, label: str) -> Iterable[int]:
        raise NotImplementedError

    @property
    def num_nodes(self) -> int:
        raise NotImplementedError

    @property
    def num_edges(self) -> int:
        raise NotImplementedError

    # -- derived operations -------------------------------------------------
    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` as defined in the paper."""
        return self.num_nodes + self.num_edges

    def neighbors(self, node: int) -> set[int]:
        """All neighbours of ``node`` regardless of edge direction."""
        return set(self.out_neighbors(node)) | set(self.in_neighbors(node))

    def degree(self, node: int) -> int:
        """Number of distinct neighbours (undirected degree)."""
        return len(self.neighbors(node))

    def out_degree(self, node: int) -> int:
        return sum(1 for _ in self.out_neighbors(node))

    def in_degree(self, node: int) -> int:
        return sum(1 for _ in self.in_neighbors(node))

    def is_adjacent(self, u: int, v: int) -> bool:
        """True if there is an edge between ``u`` and ``v`` in either
        direction (the paper's notion of *neighbour*)."""
        return self.has_edge(u, v) or self.has_edge(v, u)

    def labels(self) -> set[str]:
        """The set of labels that occur in the graph."""
        return {self.label_of(v) for v in self.nodes()}

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label``."""
        return sum(1 for _ in self.nodes_with_label(label))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges ``(source, target)``."""
        for v in self.nodes():
            for w in self.out_neighbors(v):
                yield (v, w)

    def common_neighbors(self, nodes: Iterable[int]) -> set[int]:
        """Common neighbours of ``nodes`` (either direction).

        Per Section II: when ``nodes`` is empty, *all* nodes of the graph
        are common neighbours.
        """
        nodes = list(nodes)
        if not nodes:
            return set(self.nodes())
        result = self.neighbors(nodes[0])
        for v in nodes[1:]:
            result &= self.neighbors(v)
            if not result:
                break
        return result

    def subgraph(self, nodes: Iterable[int], edges: Iterable[tuple[int, int]] | None = None) -> "Graph":
        """Materialize a subgraph as a fresh mutable :class:`Graph`.

        If ``edges`` is None the subgraph is induced on ``nodes``; otherwise
        only the given edges are kept (they must connect kept nodes).
        """
        keep = set(nodes)
        sub = Graph()
        for v in keep:
            sub.add_node(self.label_of(v), value=self.value_of(v), node_id=v)
        if edges is None:
            for v in keep:
                for w in self.out_neighbors(v):
                    if w in keep:
                        sub.add_edge(v, w)
        else:
            for (v, w) in edges:
                if v not in keep or w not in keep:
                    raise GraphError(f"edge ({v}, {w}) leaves the node set")
                sub.add_edge(v, w)
        return sub


class Graph(GraphView):
    """Mutable node-labeled directed graph with a label index.

    Examples
    --------
    >>> g = Graph()
    >>> m = g.add_node("movie", value="Skyfall")
    >>> y = g.add_node("year", value=2012)
    >>> g.add_edge(m, y)
    True
    >>> sorted(g.nodes_with_label("year")) == [y]
    True
    >>> g.has_edge(m, y), g.has_edge(y, m)
    (True, False)
    """

    __slots__ = ("_labels", "_values", "_out", "_in", "_by_label",
                 "_num_edges", "_next_id")

    def __init__(self):
        self._labels: dict[int, str] = {}
        self._values: dict[int, object] = {}
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}
        self._by_label: dict[str, set[int]] = {}
        self._num_edges = 0
        self._next_id = 0

    # -- construction --------------------------------------------------------
    def add_node(self, label: str, value=None, node_id: Optional[int] = None) -> int:
        """Add a node and return its id.

        ``node_id`` may be supplied to control ids (e.g. when loading from
        a file); otherwise ids are allocated sequentially.
        """
        if not isinstance(label, str) or not label:
            raise GraphError(f"node label must be a non-empty string, got {label!r}")
        if node_id is None:
            node_id = self._next_id
        elif node_id in self._labels:
            raise GraphError(f"node {node_id} already exists")
        self._next_id = max(self._next_id, node_id + 1)
        self._labels[node_id] = label
        if value is not None:
            self._values[node_id] = value
        self._out[node_id] = set()
        self._in[node_id] = set()
        self._by_label.setdefault(label, set()).add(node_id)
        return node_id

    def add_edge(self, source: int, target: int) -> bool:
        """Add the directed edge ``(source, target)``.

        Returns True if the edge was new, False if it already existed.
        Self-loops are allowed (they occur in web graphs). Parallel edges
        are not (the model is a set of edges).
        """
        if source not in self._labels:
            raise GraphError(f"unknown source node {source}")
        if target not in self._labels:
            raise GraphError(f"unknown target node {target}")
        if target in self._out[source]:
            return False
        self._out[source].add(target)
        self._in[target].add(source)
        self._num_edges += 1
        return True

    def remove_edge(self, source: int, target: int) -> None:
        """Remove the directed edge ``(source, target)``."""
        try:
            self._out[source].remove(target)
        except KeyError:
            raise GraphError(f"edge ({source}, {target}) does not exist") from None
        self._in[target].remove(source)
        self._num_edges -= 1

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._labels:
            raise GraphError(f"unknown node {node}")
        for w in list(self._out[node]):
            self.remove_edge(node, w)
        for w in list(self._in[node]):
            self.remove_edge(w, node)
        label = self._labels.pop(node)
        self._values.pop(node, None)
        del self._out[node]
        del self._in[node]
        bucket = self._by_label[label]
        bucket.remove(node)
        if not bucket:
            del self._by_label[label]

    def set_value(self, node: int, value) -> None:
        """Set (or clear, with None) the attribute value of ``node``."""
        if node not in self._labels:
            raise GraphError(f"unknown node {node}")
        if value is None:
            self._values.pop(node, None)
        else:
            self._values[node] = value

    # -- read interface -------------------------------------------------------
    def nodes(self) -> Iterable[int]:
        return self._labels.keys()

    def has_node(self, node: int) -> bool:
        return node in self._labels

    def label_of(self, node: int) -> str:
        try:
            return self._labels[node]
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def value_of(self, node: int):
        if node not in self._labels:
            raise GraphError(f"unknown node {node}")
        return self._values.get(node)

    def out_neighbors(self, node: int) -> set[int]:
        try:
            return self._out[node]
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def in_neighbors(self, node: int) -> set[int]:
        try:
            return self._in[node]
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def has_edge(self, source: int, target: int) -> bool:
        out = self._out.get(source)
        return out is not None and target in out

    def nodes_with_label(self, label: str) -> frozenset[int]:
        # A frozen copy, not the internal ``_by_label`` bucket: handing out
        # the live set would let callers corrupt the label index.
        return frozenset(self._by_label.get(label, ()))

    def label_count(self, label: str) -> int:
        return len(self._by_label.get(label, ()))

    def labels(self) -> set[str]:
        # Already a copy — mutating the result cannot touch ``_by_label``.
        return set(self._by_label.keys())

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # -- misc ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges}, labels={len(self._by_label)})"

    def copy(self) -> "Graph":
        """Deep copy of the graph (values are shared, structure is not)."""
        g = Graph()
        g._labels = dict(self._labels)
        g._values = dict(self._values)
        g._out = {v: set(s) for v, s in self._out.items()}
        g._in = {v: set(s) for v, s in self._in.items()}
        g._by_label = {label: set(s) for label, s in self._by_label.items()}
        g._num_edges = self._num_edges
        g._next_id = self._next_id
        return g
