"""Shard partitioning: an exact node cover with halo graphs.

The scatter-gather executor (:mod:`repro.core.executor`) evaluates the
node phase of a plan independently per shard and merges candidate sets,
so the partition must guarantee that a per-shard index fetch, unioned
over all shards, equals the global fetch. Two invariants make that true:

* **Exact cover** — every data node is *owned* by exactly one shard, and
  every directed edge is owned by exactly one shard (its source's
  owner). Per-shard constraint indexes enumerate owned target nodes
  only, so the global index entry for any key is the disjoint union of
  the shard entries.
* **Halo closure** — a shard's graph contains its owned nodes plus every
  neighbour of an owned node (the *halo*), and every edge incident to an
  owned node. An owned node therefore sees its complete neighbourhood
  inside the shard, which is exactly what index construction
  (:func:`repro.constraints.index._keys_for_target`) and edge
  verification (``has_edge`` against an owned endpoint) need. Halo nodes
  have *incomplete* adjacency and are never used as index targets or
  probe sources.

Assignment is label/hash-aware: nodes are dealt round-robin within each
label bucket (so every label — and with it every type (1) index scan and
per-label index build — balances across shards), with a stable per-label
CRC32 offset so small buckets do not all pile onto shard 0. The
assignment depends only on (sorted node ids per label, num_shards),
making it reproducible across processes and Python versions — no
``hash()`` randomization anywhere.

See DESIGN.md ("Sharded execution") for the correctness argument.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import GraphError
from repro.graph.frozen import FrozenGraph
from repro.graph.graph import Graph, GraphView


@dataclass(frozen=True)
class GraphSummary:
    """Lightweight stand-in for a graph a session does not hold.

    A sharded :class:`~repro.engine.engine.QueryEngine` session keeps the
    data in its shards (possibly in worker processes); the parent only
    needs the aggregate numbers for banners, metrics and benchmarks.
    """

    num_nodes: int
    num_edges: int
    num_labels: int

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` as defined in the paper."""
        return self.num_nodes + self.num_edges

    def __repr__(self) -> str:
        return (f"GraphSummary(nodes={self.num_nodes}, "
                f"edges={self.num_edges}, labels={self.num_labels})")


@dataclass
class Shard:
    """One shard of a :class:`GraphPartition`.

    Attributes
    ----------
    shard_id:
        Position of this shard in the partition.
    owned:
        Sorted tuple of node ids this shard owns (exact-cover member).
    graph:
        Frozen halo graph: owned nodes, their neighbours, and every edge
        incident to an owned node.
    owned_edges:
        Number of directed edges owned by this shard (source is owned).
    """

    shard_id: int
    owned: tuple[int, ...]
    graph: FrozenGraph
    owned_edges: int

    @property
    def num_halo(self) -> int:
        return self.graph.num_nodes - len(self.owned)

    def __repr__(self) -> str:
        return (f"Shard({self.shard_id}, owned={len(self.owned)}, "
                f"halo={self.num_halo}, owned_edges={self.owned_edges})")


class GraphPartition:
    """An exact node cover of a graph into halo shards.

    Examples
    --------
    >>> g = Graph()
    >>> nodes = [g.add_node("L") for _ in range(6)]
    >>> g.add_edge(nodes[0], nodes[1])
    True
    >>> part = partition_graph(g, 2)
    >>> sorted(v for shard in part.shards for v in shard.owned) == sorted(g.nodes())
    True
    """

    def __init__(self, shards: list[Shard], assignment: dict[int, int],
                 summary: GraphSummary, cross_edges: int):
        self.shards = shards
        self.assignment = assignment
        self.summary = summary
        #: Directed edges whose endpoints live in different shards — the
        #: traffic a distributed edge phase would pay for.
        self.cross_edges = cross_edges

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def owner_of(self, node: int) -> int:
        try:
            return self.assignment[node]
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def owned_edge_list(self, shard_id: int) -> Iterator[tuple[int, int]]:
        """Directed edges owned by ``shard_id`` (source is owned there).

        The concatenation over all shards enumerates every edge of the
        source graph exactly once — the edge side of the exact cover.
        """
        shard = self.shards[shard_id]
        for v in shard.owned:
            for w in shard.graph.out_neighbors(v):
                yield (v, w)

    def __repr__(self) -> str:
        return (f"GraphPartition(shards={self.num_shards}, "
                f"nodes={self.summary.num_nodes}, "
                f"cross_edges={self.cross_edges})")


def assign_nodes(graph: GraphView, num_shards: int) -> dict[int, int]:
    """Label/hash-aware shard assignment (exact cover of the nodes).

    Within each label bucket nodes are dealt round-robin in sorted-id
    order, starting from a stable CRC32 offset of the label. Every label
    is spread as evenly as possible across shards, so per-shard index
    build cost and type (1) scan payloads balance.
    """
    if num_shards < 1:
        raise GraphError(f"num_shards must be >= 1, got {num_shards}")
    assignment: dict[int, int] = {}
    for label in sorted(graph.labels()):
        offset = zlib.crc32(label.encode("utf-8")) % num_shards
        for i, v in enumerate(sorted(graph.nodes_with_label(label))):
            assignment[v] = (offset + i) % num_shards
    return assignment


def partition_graph(graph: GraphView, num_shards: int,
                    assignment: dict[int, int] | None = None) -> GraphPartition:
    """Partition ``graph`` into ``num_shards`` halo shards.

    ``assignment`` may override the default :func:`assign_nodes` cover
    (it must map every node to a shard id in range).
    """
    if assignment is None:
        assignment = assign_nodes(graph, num_shards)
    else:
        if num_shards < 1:
            raise GraphError(f"num_shards must be >= 1, got {num_shards}")
        missing = [v for v in graph.nodes() if v not in assignment]
        if missing:
            raise GraphError(
                f"assignment does not cover nodes {sorted(missing)[:5]}...")
        bad = {s for s in assignment.values()
               if not (0 <= s < num_shards)}
        if bad:
            raise GraphError(
                f"assignment uses shard ids {sorted(bad)} outside "
                f"[0, {num_shards})")

    builders = [Graph() for _ in range(num_shards)]
    present: list[set[int]] = [set() for _ in range(num_shards)]

    def ensure(shard: int, v: int) -> None:
        if v not in present[shard]:
            builders[shard].add_node(graph.label_of(v),
                                     value=graph.value_of(v), node_id=v)
            present[shard].add(v)

    owned_lists: list[list[int]] = [[] for _ in range(num_shards)]
    owned_edge_counts = [0] * num_shards
    cross_edges = 0
    for v in sorted(graph.nodes()):
        shard = assignment[v]
        owned_lists[shard].append(v)
        ensure(shard, v)
        for w in sorted(graph.out_neighbors(v)):
            ensure(shard, w)
            builders[shard].add_edge(v, w)
            owned_edge_counts[shard] += 1
            if assignment[w] != shard:
                cross_edges += 1
        for w in sorted(graph.in_neighbors(v)):
            # Halo closure for in-edges: the owner of the *target* also
            # stores the edge, so every edge incident to an owned node
            # is present in its shard graph.
            ensure(shard, w)
            builders[shard].add_edge(w, v)

    shards = [
        Shard(shard_id=i, owned=tuple(owned_lists[i]),
              graph=FrozenGraph.from_graph(builders[i]),
              owned_edges=owned_edge_counts[i])
        for i in range(num_shards)
    ]
    summary = GraphSummary(num_nodes=graph.num_nodes,
                           num_edges=graph.num_edges,
                           num_labels=len(graph.labels()))
    return GraphPartition(shards=shards, assignment=assignment,
                          summary=summary, cross_edges=cross_edges)


def build_shard_indexes(partition: GraphPartition, schema) -> list:
    """One frozen :class:`~repro.constraints.index.SchemaIndex` per shard.

    Each per-constraint index enumerates *owned* target nodes only: the
    halo guarantees their neighbourhoods are complete, and ownership
    guarantees the global entry for any key is the disjoint union of the
    shard entries — the identity the scatter-gather merge relies on.
    """
    from repro.constraints.index import FrozenConstraintIndex, SchemaIndex

    shard_indexes = []
    for shard in partition.shards:
        owned = set(shard.owned)
        indexes = {}
        for constraint in schema:
            targets = [w for w in shard.graph.nodes_with_label(constraint.target)
                       if w in owned]
            indexes[constraint] = FrozenConstraintIndex(
                constraint, shard.graph, targets=targets)
        shard_indexes.append(
            SchemaIndex.from_prebuilt(shard.graph, schema, indexes))
    return shard_indexes


def merge_shard_runtimes(runtimes, schema):
    """Fold loaded shard runtimes back into one frozen graph + index.

    The inverse of sharding, used to serve a sharded artifact as an
    ordinary single-graph session (``open_path(..., strategy=
    "sequential")``): on one CPU, in-process scatter over shards only
    adds coordination overhead, and merging back unlocks the (much
    faster) sequential/vectorized plan executors.

    Correctness rests on the partition invariants: the exact cover means
    every node and every directed edge is owned by exactly one shard, so
    collecting owned nodes and owned out-edges reconstructs the source
    graph exactly; and each per-shard index enumerates owned targets
    only, so the dict-union of the shard entries per key is the global
    index entry. Returns ``(FrozenGraph, SchemaIndex)``.
    """
    from repro.constraints.index import FrozenConstraintIndex, SchemaIndex

    builder = Graph()
    for runtime in runtimes:
        graph = runtime.graph
        for v in sorted(runtime.owned):
            builder.add_node(graph.label_of(v), value=graph.value_of(v),
                             node_id=v)
    for runtime in runtimes:
        graph = runtime.graph
        for v in sorted(runtime.owned):
            for w in graph.out_neighbors(v):
                builder.add_edge(v, w)
    merged_graph = FrozenGraph.from_graph(builder)

    indexes = {}
    for constraint in schema:
        entries: dict[tuple, list] = {}
        for runtime in runtimes:
            index = runtime.schema_index.index_for(constraint)
            for key in index.keys():
                entries.setdefault(tuple(key), []).extend(index.fetch(key))
        indexes[constraint] = FrozenConstraintIndex.from_entries(
            constraint, entries)
    return merged_graph, SchemaIndex.from_prebuilt(merged_graph, schema,
                                                   indexes)


def cross_edge_count(graph: GraphView, assignment: dict[int, int]) -> int:
    """Directed edges whose endpoints are owned by different shards."""
    return sum(1 for v, w in graph.edges() if assignment[v] != assignment[w])


__all__ = [
    "GraphPartition",
    "GraphSummary",
    "Shard",
    "assign_nodes",
    "build_shard_indexes",
    "cross_edge_count",
    "merge_shard_runtimes",
    "partition_graph",
]
