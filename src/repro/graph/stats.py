"""Graph profiling: the statistics that drive constraint discovery.

The paper's Section II discovers access constraints from "degree bounds,
label frequencies and data semantics". This module computes those profiles
in one pass each, so a user can eyeball where constraints will come from
before running :mod:`repro.constraints.discovery`:

* label histogram (type (1) candidates),
* per-label-pair neighbour-degree distributions (type (2) candidates),
* degree distribution summaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.graph import GraphView
from repro.util.percentiles import percentile


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of a non-negative integer distribution."""

    count: int
    minimum: int
    maximum: int
    mean: float
    p50: int
    p90: int
    p99: int

    @classmethod
    def from_values(cls, values) -> "DistributionSummary":
        data = sorted(values)
        if not data:
            return cls(0, 0, 0, 0.0, 0, 0, 0)
        return cls(count=len(data), minimum=data[0], maximum=data[-1],
                   mean=sum(data) / len(data),
                   p50=percentile(data, 0.50), p90=percentile(data, 0.90),
                   p99=percentile(data, 0.99))


def label_histogram(graph: GraphView) -> dict[str, int]:
    """Node counts per label, descending — small tails are the type (1)
    constraint candidates."""
    counts = {label: graph.label_count(label) for label in graph.labels()}
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def degree_summary(graph: GraphView) -> dict[str, DistributionSummary]:
    """Out/in/total degree distributions over all nodes."""
    outs, ins, totals = [], [], []
    for v in graph.nodes():
        out_degree = graph.out_degree(v)
        in_degree = graph.in_degree(v)
        outs.append(out_degree)
        ins.append(in_degree)
        totals.append(graph.degree(v))
    return {
        "out": DistributionSummary.from_values(outs),
        "in": DistributionSummary.from_values(ins),
        "total": DistributionSummary.from_values(totals),
    }


def label_pair_degrees(graph: GraphView,
                       max_pairs: int | None = None
                       ) -> dict[tuple[str, str], DistributionSummary]:
    """For each ordered label pair ``(l, l')``: the distribution of
    "number of ``l'``-labeled neighbours" over ``l``-labeled nodes.

    The ``maximum`` column of each row is exactly the bound
    :func:`repro.constraints.discovery.discover_unit` would declare.
    """
    per_pair: dict[tuple[str, str], list[int]] = {}
    for v in graph.nodes():
        label = graph.label_of(v)
        counts = Counter(graph.label_of(w) for w in graph.neighbors(v))
        for other, count in counts.items():
            per_pair.setdefault((label, other), []).append(count)
    summaries = {pair: DistributionSummary.from_values(values)
                 for pair, values in per_pair.items()}
    ordered = dict(sorted(summaries.items(),
                          key=lambda kv: (kv[1].maximum, kv[0])))
    if max_pairs is not None:
        ordered = dict(list(ordered.items())[:max_pairs])
    return ordered


def profile(graph: GraphView, top_labels: int = 15,
            top_pairs: int = 15) -> str:
    """Human-readable profile of a graph (used by the CLI and notebooks)."""
    lines = [f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
             f"{len(graph.labels())} labels"]
    lines.append("\nlabel histogram (top):")
    for label, count in list(label_histogram(graph).items())[:top_labels]:
        lines.append(f"  {label:24s} {count}")
    lines.append("\ndegrees:")
    for kind, summary in degree_summary(graph).items():
        lines.append(f"  {kind:6s} max={summary.maximum:6d} "
                     f"mean={summary.mean:8.2f} p90={summary.p90:5d} "
                     f"p99={summary.p99:5d}")
    lines.append("\ntightest label-pair bounds (type (2) candidates):")
    for (la, lb), summary in list(label_pair_degrees(graph).items())[:top_pairs]:
        lines.append(f"  {la} -> {lb}: max={summary.maximum} "
                     f"(over {summary.count} nodes)")
    return "\n".join(lines)
