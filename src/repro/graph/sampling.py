"""Subgraph sampling — the scale-factor machinery of Fig. 5(a,e,i).

The paper varies ``|G|`` "by using scale factors from 0.1 to 1", i.e. by
taking subsets of one fixed graph while keeping the access schema fixed.
That is sound because access constraints are *monotone under subgraphs*:
removing nodes or edges can only shrink common-neighbour sets, so any
graph satisfying ``A`` keeps satisfying it after sampling
(:func:`induced_sample` never adds anything).
"""

from __future__ import annotations

import random

from repro.errors import GraphError
from repro.graph.graph import Graph, GraphView


def induced_sample(graph: GraphView, fraction: float, seed: int = 0,
                   keep_labels: set[str] | None = None) -> Graph:
    """Induced subgraph on a random ``fraction`` of the nodes.

    Nodes whose label is in ``keep_labels`` are always retained — the
    scale sweep keeps label-domain nodes (years, awards, sites...) so that
    the workload's anchors exist at every scale, mirroring how a real
    dataset subset keeps its vocabulary.
    """
    if not 0 < fraction <= 1:
        raise GraphError(f"fraction must be in (0, 1], got {fraction}")
    rng = random.Random(seed)
    keep_labels = keep_labels or set()
    kept = [v for v in sorted(graph.nodes())
            if graph.label_of(v) in keep_labels or rng.random() < fraction]
    return graph.subgraph(kept)


def scale_series(graph: GraphView, fractions, seed: int = 0,
                 keep_labels: set[str] | None = None) -> list[tuple[float, Graph]]:
    """Nested subgraph series for a scale sweep (fraction 1.0 reuses the
    original graph object)."""
    series = []
    for fraction in fractions:
        if fraction >= 1.0:
            series.append((fraction, graph))
        else:
            series.append((fraction, induced_sample(graph, fraction,
                                                    seed=seed,
                                                    keep_labels=keep_labels)))
    return series
