"""Read-only compact graph snapshot.

``FrozenGraph`` stores adjacency in CSR (compressed sparse row) form using
plain Python ``array`` objects, which cuts memory roughly 5x compared to
dict-of-sets and speeds up scans. It implements the same
:class:`~repro.graph.graph.GraphView` interface, so every algorithm in the
library (matchers, index builders, executors) runs on it unchanged.

The snapshot renumbers nothing: node ids are preserved, so candidate sets
and match relations computed on a ``FrozenGraph`` are directly comparable
with those computed on the source :class:`Graph`.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable

from repro.errors import GraphError
from repro.graph.graph import Graph, GraphView


class FrozenGraph(GraphView):
    """Immutable CSR snapshot of a :class:`Graph`.

    Examples
    --------
    >>> g = Graph()
    >>> a = g.add_node("A"); b = g.add_node("B")
    >>> g.add_edge(a, b)
    True
    >>> fz = FrozenGraph.from_graph(g)
    >>> fz.has_edge(a, b), fz.has_edge(b, a)
    (True, False)
    """

    __slots__ = ("_ids", "_pos", "_labels", "_values", "_out_ptr", "_out_dst",
                 "_in_ptr", "_in_src", "_by_label", "_num_edges", "_kernel")

    def __init__(self, ids, pos, labels, values, out_ptr, out_dst,
                 in_ptr, in_src, by_label, num_edges):
        self._ids = ids              # array('q'): index -> node id (sorted)
        self._pos = pos              # dict: node id -> index
        self._labels = labels        # list[str] by index
        self._values = values        # dict: node id -> value (sparse)
        self._out_ptr = out_ptr      # array('q') of length n+1
        self._out_dst = out_dst      # array('q'): node ids, sorted per row
        self._in_ptr = in_ptr
        self._in_src = in_src
        self._by_label = by_label    # label -> tuple of node ids
        self._num_edges = num_edges
        #: Lazily-built per-graph kernel state (repro.core.kernels); the
        #: snapshot is immutable, so the cache never invalidates.
        self._kernel = None

    @classmethod
    def from_graph(cls, graph: GraphView) -> "FrozenGraph":
        """Build a frozen snapshot from any graph view."""
        ids = array("q", sorted(graph.nodes()))
        pos = {v: i for i, v in enumerate(ids)}
        labels = [graph.label_of(v) for v in ids]
        values = {}
        by_label: dict[str, list[int]] = {}
        for i, v in enumerate(ids):
            value = graph.value_of(v)
            if value is not None:
                values[v] = value
            by_label.setdefault(labels[i], []).append(v)

        out_ptr = array("q", [0])
        out_dst = array("q")
        in_ptr = array("q", [0])
        in_src = array("q")
        num_edges = 0
        for v in ids:
            row = sorted(graph.out_neighbors(v))
            out_dst.extend(row)
            num_edges += len(row)
            out_ptr.append(len(out_dst))
        for v in ids:
            row = sorted(graph.in_neighbors(v))
            in_src.extend(row)
            in_ptr.append(len(in_src))

        frozen_by_label = {label: tuple(vs) for label, vs in by_label.items()}
        return cls(ids, pos, labels, values, out_ptr, out_dst,
                   in_ptr, in_src, frozen_by_label, num_edges)

    # -- binary snapshot interface (repro.engine.persist) -----------------------
    def to_buffers(self) -> tuple[dict, dict]:
        """Decompose the snapshot into flat int64 buffers plus JSON meta.

        Returns ``(buffers, meta)``: ``buffers`` maps buffer names to
        int64 sequences (``array('q')`` or an equivalent memoryview) and
        ``meta`` is a JSON-serializable dict carrying the label table and
        the sparse value map. :meth:`from_buffers` is the exact inverse;
        everything else (positions, label buckets, edge count) is derived.
        """
        label_table = sorted(set(self._labels))
        code = {label: i for i, label in enumerate(label_table)}
        label_codes = array("q", (code[label] for label in self._labels))
        buffers = {"ids": self._ids, "label_codes": label_codes,
                   "out_ptr": self._out_ptr, "out_dst": self._out_dst,
                   "in_ptr": self._in_ptr, "in_src": self._in_src}
        meta = {"labels": label_table,
                "values": [[v, self._values[v]] for v in sorted(self._values)]}
        return buffers, meta

    @classmethod
    def from_buffers(cls, buffers: dict, meta: dict) -> "FrozenGraph":
        """Reassemble a snapshot from :meth:`to_buffers` output.

        The int64 buffers are adopted as-is — passing memoryviews over a
        loaded artifact makes this zero-copy for the CSR payloads; only
        the derived lookup structures (id positions, label buckets) are
        rebuilt.
        """
        try:
            ids = buffers["ids"]
            label_table = meta["labels"]
            labels = [label_table[code] for code in buffers["label_codes"]]
            values = {int(v): value for v, value in meta["values"]}
            out_ptr, out_dst = buffers["out_ptr"], buffers["out_dst"]
            in_ptr, in_src = buffers["in_ptr"], buffers["in_src"]
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise GraphError(f"malformed frozen-graph buffers: {exc}") from exc
        n = len(ids)
        if (len(labels) != n or len(out_ptr) != n + 1 or len(in_ptr) != n + 1
                or (n and (out_ptr[n] != len(out_dst)
                           or in_ptr[n] != len(in_src)))):
            raise GraphError("frozen-graph buffer shapes are inconsistent")
        pos = {v: i for i, v in enumerate(ids)}
        by_label: dict[str, list[int]] = {}
        for i, v in enumerate(ids):
            by_label.setdefault(labels[i], []).append(v)
        frozen_by_label = {label: tuple(vs) for label, vs in by_label.items()}
        return cls(ids, pos, labels, values, out_ptr, out_dst,
                   in_ptr, in_src, frozen_by_label, len(out_dst))

    def int64_views(self) -> dict:
        """Zero-copy numpy int64 views over the CSR buffers.

        Works for both fresh snapshots (``array('q')`` storage) and
        artifact warm-starts (memoryviews over the loaded blob) — either
        way ``np.frombuffer`` aliases the existing bytes, nothing is
        copied. The views alias immutable storage: treat as read-only.
        """
        from repro.util.arrays import as_int64, require_numpy
        require_numpy()
        return {"ids": as_int64(self._ids),
                "out_ptr": as_int64(self._out_ptr),
                "out_dst": as_int64(self._out_dst),
                "in_ptr": as_int64(self._in_ptr),
                "in_src": as_int64(self._in_src)}

    # -- read interface ---------------------------------------------------------
    def nodes(self) -> Iterable[int]:
        return iter(self._ids)

    def has_node(self, node: int) -> bool:
        return node in self._pos

    def _index(self, node: int) -> int:
        try:
            return self._pos[node]
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def label_of(self, node: int) -> str:
        return self._labels[self._index(node)]

    def value_of(self, node: int):
        self._index(node)
        return self._values.get(node)

    def _row(self, ptr: array, data: array, node: int) -> memoryview:
        i = self._index(node)
        return memoryview(data)[ptr[i]:ptr[i + 1]]

    def out_neighbors(self, node: int):
        return self._row(self._out_ptr, self._out_dst, node)

    def in_neighbors(self, node: int):
        return self._row(self._in_ptr, self._in_src, node)

    def has_edge(self, source: int, target: int) -> bool:
        i = self._pos.get(source)
        if i is None:
            return False
        lo, hi = self._out_ptr[i], self._out_ptr[i + 1]
        j = bisect_left(self._out_dst, target, lo, hi)
        return j < hi and self._out_dst[j] == target

    def nodes_with_label(self, label: str) -> tuple[int, ...]:
        return self._by_label.get(label, ())

    def label_count(self, label: str) -> int:
        return len(self._by_label.get(label, ()))

    def labels(self) -> set[str]:
        return set(self._by_label.keys())

    @property
    def num_nodes(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def out_degree(self, node: int) -> int:
        i = self._index(node)
        return self._out_ptr[i + 1] - self._out_ptr[i]

    def in_degree(self, node: int) -> int:
        i = self._index(node)
        return self._in_ptr[i + 1] - self._in_ptr[i]

    def thaw(self) -> Graph:
        """Convert back to a mutable :class:`Graph`."""
        g = Graph()
        for v in self._ids:
            g.add_node(self.label_of(v), value=self._values.get(v), node_id=v)
        for v in self._ids:
            for w in self.out_neighbors(v):
                g.add_edge(v, w)
        return g

    def __repr__(self) -> str:
        return (f"FrozenGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"labels={len(self._by_label)})")
