"""Graph deltas: batched updates ``ΔG`` to a data graph.

Section II of the paper remarks that access-constraint indices "can be
incrementally and locally maintained in response to changes to the
underlying graph G. It suffices to inspect ``ΔG ∪ NbG(ΔG)``". This module
defines the update batches; :mod:`repro.constraints.maintenance` implements
the incremental index maintenance on top of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import GraphError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class NodeChange:
    """Insertion or deletion of a node.

    ``label``/``value`` are required for insertions; for deletions they are
    ignored (the graph knows them).
    """

    insert: bool
    node: int
    label: str | None = None
    value: object = None


@dataclass(frozen=True)
class EdgeChange:
    """Insertion or deletion of a directed edge."""

    insert: bool
    source: int
    target: int


@dataclass
class GraphDelta:
    """An ordered batch of node and edge changes.

    The batch is applied in order, so a delta may insert a node and then
    edges incident to it. :meth:`apply` mutates the graph and returns the
    set of nodes whose neighbourhood changed (``ΔG`` plus the endpoints of
    changed edges), which is exactly the set index maintenance must
    inspect.
    """

    changes: list = field(default_factory=list)

    # -- construction helpers ---------------------------------------------------
    def add_node(self, node: int, label: str, value=None) -> "GraphDelta":
        self.changes.append(NodeChange(True, node, label, value))
        return self

    def remove_node(self, node: int) -> "GraphDelta":
        self.changes.append(NodeChange(False, node))
        return self

    def add_edge(self, source: int, target: int) -> "GraphDelta":
        self.changes.append(EdgeChange(True, source, target))
        return self

    def remove_edge(self, source: int, target: int) -> "GraphDelta":
        self.changes.append(EdgeChange(False, source, target))
        return self

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self) -> Iterator:
        return iter(self.changes)

    # -- application --------------------------------------------------------------
    def apply(self, graph: Graph) -> set[int]:
        """Apply the batch to ``graph``; return nodes with changed
        neighbourhoods (the *dirty* set for index maintenance).

        For a removed node, its former neighbours are dirty; the removed
        node itself no longer exists and is not reported.
        """
        dirty: set[int] = set()
        for change in self.changes:
            if isinstance(change, NodeChange):
                if change.insert:
                    if change.label is None:
                        raise GraphError(
                            f"node insertion for {change.node} must carry a label")
                    graph.add_node(change.label, value=change.value,
                                   node_id=change.node)
                    dirty.add(change.node)
                else:
                    neighbours = set(graph.neighbors(change.node))
                    graph.remove_node(change.node)
                    dirty.discard(change.node)
                    dirty |= neighbours
            elif isinstance(change, EdgeChange):
                if change.insert:
                    graph.add_edge(change.source, change.target)
                else:
                    graph.remove_edge(change.source, change.target)
                dirty.add(change.source)
                dirty.add(change.target)
            else:  # pragma: no cover - defensive
                raise GraphError(f"unknown change type {change!r}")
        return {v for v in dirty if graph.has_node(v)}
