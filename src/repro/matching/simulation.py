"""Graph simulation: the maximum match relation (the paper's gsim).

Section II's simulation semantics: ``Q(G)`` is the unique maximum relation
``R ⊆ V_Q × V`` such that (a) matched nodes agree on label and predicate,
and (b) every pattern node has a match, and whenever ``(u, v) ∈ R`` and
``(u, u') ∈ E_Q`` there is an edge ``(v, v') ∈ E`` with ``(u', v') ∈ R``.
If no *total* relation exists, ``Q(G)`` is empty.

The fixpoint is the counter-based refinement of Henzinger, Henzinger &
Kopke (FOCS 1995), the paper's reference [20]: for every pattern edge
``(u, u')`` and candidate ``v`` of ``u``, a counter tracks how many
successors of ``v`` remain in ``sim(u')``; when it hits zero ``v`` is
evicted from ``sim(u)`` and the eviction propagates. This gives the
``O((|V|+|V_Q|)(|E|+|E_Q|))`` behaviour the paper quotes.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.errors import MatchTimeout, PatternError
from repro.graph.graph import GraphView
from repro.pattern.pattern import Pattern


def simulate(pattern: Pattern, graph: GraphView,
             candidates: Mapping[int, set[int]] | None = None,
             timeout: float | None = None) -> dict[int, set[int]]:
    """The maximum simulation relation as ``{pattern node: match set}``.

    Returns ``{}`` when the maximum relation is not total (the paper's
    ``Q(G) = ∅``). Pass ``candidates`` to restrict the initial match sets
    (they must be supersets of the true matches); optgsim and bSim use
    this hook.
    """
    if pattern.num_nodes == 0:
        raise PatternError("cannot simulate an empty pattern")
    started = time.monotonic()

    # Initial match sets: label + predicate (+ caller restriction).
    sim: dict[int, set[int]] = {}
    for u in pattern.nodes():
        label = pattern.label_of(u)
        predicate = pattern.predicate_of(u)
        if candidates is not None and u in candidates:
            base = candidates[u]
        else:
            base = graph.nodes_with_label(label)
        sim[u] = {v for v in base
                  if graph.label_of(v) == label
                  and (predicate.is_trivial or predicate.evaluate(graph.value_of(v)))}
        if not sim[u]:
            return {}

    # Counters: per pattern edge (u, u') and candidate v of u, how many
    # successors of v remain in sim(u'). Every counter is initialized
    # against a frozen snapshot of the *initial* sim sets: init-time
    # evictions go through the same propagation queue as fixpoint
    # evictions, so each is subtracted exactly once. (Counting against
    # the live, already-shrunk sets would let the queue double-subtract
    # nodes the counter never included.)
    pattern_edges = list(pattern.edges())
    initial = {u: frozenset(s) for u, s in sim.items()}
    counters: dict[tuple[int, int, int], int] = {}
    removals: list[tuple[int, int]] = []  # (pattern node, evicted data node)

    initialized = 0
    for (u, u_child) in pattern_edges:
        child_set = initial[u_child]
        for v in list(sim[u]):
            initialized += 1
            if timeout is not None and initialized % 4096 == 0:
                elapsed = time.monotonic() - started
                if elapsed > timeout:
                    raise MatchTimeout(f"simulation exceeded {timeout}s",
                                       elapsed=elapsed)
            count = 0
            for w in graph.out_neighbors(v):
                if w in child_set:
                    count += 1
            counters[(u, u_child, v)] = count
            if count == 0:
                sim[u].discard(v)
                removals.append((u, v))
        if not sim[u]:
            return {}

    # Pattern edges grouped by child, for eviction propagation.
    edges_into: dict[int, list[int]] = {}
    for (u, u_child) in pattern_edges:
        edges_into.setdefault(u_child, []).append(u)

    steps = 0
    while removals:
        steps += 1
        if timeout is not None and steps % 4096 == 0:
            elapsed = time.monotonic() - started
            if elapsed > timeout:
                raise MatchTimeout(f"simulation exceeded {timeout}s",
                                   elapsed=elapsed)
        u_child, removed = removals.pop()
        for u in edges_into.get(u_child, ()):
            pool = sim[u]
            for v in graph.in_neighbors(removed):
                if v not in pool:
                    continue
                key = (u, u_child, v)
                counters[key] -= 1
                if counters[key] == 0:
                    pool.discard(v)
                    removals.append((u, v))
            if not pool:
                return {}
    return sim


def simulation_holds(pattern: Pattern, graph: GraphView,
                     relation: Mapping[int, set[int]]) -> bool:
    """Verify that ``relation`` is a total simulation (test oracle).

    Checks conditions (a) and (b) of the paper's definition directly;
    used by property tests to validate :func:`simulate` output.
    """
    if not relation:
        return False
    for u in pattern.nodes():
        matches = relation.get(u, set())
        if not matches:
            return False
        predicate = pattern.predicate_of(u)
        for v in matches:
            if graph.label_of(v) != pattern.label_of(u):
                return False
            if not predicate.is_trivial and not predicate.evaluate(graph.value_of(v)):
                return False
            for u_child in pattern.out_neighbors(u):
                child_matches = relation.get(u_child, set())
                if not any(w in child_matches for w in graph.out_neighbors(v)):
                    return False
    return True


def relation_pairs(relation: Mapping[int, set[int]]) -> set[tuple[int, int]]:
    """Flatten a relation into ``(pattern node, data node)`` pairs — the
    paper's ``R ⊆ V_Q × V`` form, convenient for equality assertions."""
    return {(u, v) for u, matches in relation.items() for v in matches}
