"""Index-assisted conventional matchers (the paper's optVF2 and optgsim).

The paper compares bounded evaluation against "optimized versions [of VF2
and gsim] by using indices in the access constraints". The optimization is
candidate seeding: pattern nodes whose label carries a type (1) constraint
draw their initial candidates from the (small) label index instead of
scanning ``G``; matching then proceeds conventionally, so the cost remains
dependent on ``|G|`` for the unseeded nodes — which is exactly the gap the
paper's Fig. 5 exposes.
"""

from __future__ import annotations

from repro.accounting import AccessStats
from repro.constraints.index import SchemaIndex
from repro.matching.simulation import simulate
from repro.matching.vf2 import find_matches
from repro.pattern.pattern import Pattern


def type1_candidates(pattern: Pattern, schema_index: SchemaIndex,
                     stats: AccessStats | None = None) -> dict[int, set[int]]:
    """Candidate sets for pattern nodes covered by type (1) constraints.

    Only seeded nodes appear in the result; matchers fall back to the
    label index of ``G`` for the rest.
    """
    candidates: dict[int, set[int]] = {}
    graph = schema_index.graph
    for u in pattern.nodes():
        constraint = schema_index.schema.type1_for(pattern.label_of(u))
        if constraint is None:
            continue
        fetched = schema_index.fetch(constraint, (), stats=stats)
        predicate = pattern.predicate_of(u)
        candidates[u] = {v for v in fetched
                         if predicate.is_trivial
                         or predicate.evaluate(graph.value_of(v))}
    return candidates


def opt_vf2(pattern: Pattern, schema_index: SchemaIndex,
            limit: int | None = None, timeout: float | None = None,
            stats: AccessStats | None = None) -> list[dict[int, int]]:
    """optVF2: VF2 with type (1)-seeded candidates, still over all of G."""
    seeds = type1_candidates(pattern, schema_index, stats=stats)
    return find_matches(pattern, schema_index.graph, candidates=seeds,
                        limit=limit, timeout=timeout)


def opt_gsim(pattern: Pattern, schema_index: SchemaIndex,
             timeout: float | None = None,
             stats: AccessStats | None = None) -> dict[int, set[int]]:
    """optgsim: simulation with type (1)-seeded initial match sets."""
    seeds = type1_candidates(pattern, schema_index, stats=stats)
    return simulate(pattern, schema_index.graph, candidates=seeds,
                    timeout=timeout)
