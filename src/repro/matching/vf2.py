"""Subgraph isomorphism: a VF2-style backtracking matcher.

Implements the paper's subgraph-query semantics (Section II): a match is
an injective mapping ``h`` from pattern nodes to data nodes preserving
labels, predicates, and every pattern edge's direction (non-induced —
extra data edges between matched nodes are permitted, since the match
subgraph ``G'`` keeps exactly the images of pattern edges).

Classic VF2 ingredients: a static connected search order starting from the
most selective node, candidate generation from the adjacency of already
mapped neighbours, and early pruning through label/predicate/degree
filters. A soft ``timeout`` makes the matcher usable as a baseline on
graphs where full enumeration is infeasible (the paper's VF2 runs were
cut off at 40 000 s).
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

from repro.errors import MatchTimeout, PatternError
from repro.graph.graph import GraphView
from repro.pattern.pattern import Pattern

#: How many search steps between timeout checks.
_TIMEOUT_STRIDE = 2048


def find_matches(pattern: Pattern, graph: GraphView,
                 candidates: dict[int, set[int]] | None = None,
                 limit: int | None = None,
                 timeout: float | None = None) -> list[dict[int, int]]:
    """All matches of ``pattern`` in ``graph`` as mappings ``u -> v``.

    The returned list is sorted canonically (by the match's sorted
    ``(u, v)`` item tuple), so two runs that find the same match set —
    e.g. the sequential and scatter-gather executors, at any shard or
    worker count — produce byte-identical output regardless of search
    order.

    Parameters
    ----------
    candidates:
        Optional per-pattern-node candidate restriction (must be a
        superset of the true matches for completeness); used by optVF2
        and bVF2.
    limit:
        Stop after this many matches.
    timeout:
        Raise :class:`~repro.errors.MatchTimeout` after this many seconds.
    """
    matches = list(iter_matches(pattern, graph, candidates=candidates,
                                limit=limit, timeout=timeout))
    matches.sort(key=lambda match: tuple(sorted(match.items())))
    return matches


def count_matches(pattern: Pattern, graph: GraphView,
                  candidates: dict[int, set[int]] | None = None,
                  timeout: float | None = None) -> int:
    """Number of matches (full enumeration)."""
    return sum(1 for _ in iter_matches(pattern, graph, candidates=candidates,
                                       timeout=timeout))


def match_exists(pattern: Pattern, graph: GraphView,
                 candidates: dict[int, set[int]] | None = None,
                 timeout: float | None = None) -> bool:
    """True iff at least one match exists."""
    for _ in iter_matches(pattern, graph, candidates=candidates, limit=1,
                          timeout=timeout):
        return True
    return False


def iter_matches(pattern: Pattern, graph: GraphView,
                 candidates: dict[int, set[int]] | None = None,
                 limit: int | None = None,
                 timeout: float | None = None) -> Iterator[dict[int, int]]:
    """Lazily yield matches; see :func:`find_matches`."""
    if pattern.num_nodes == 0:
        raise PatternError("cannot match an empty pattern")

    pools = _initial_pools(pattern, graph, candidates)
    if any(not pool for pool in pools.values()):
        return
    order = _search_order(pattern, pools)
    yield from _backtrack(pattern, graph, pools, order, limit, timeout)


def _initial_pools(pattern: Pattern, graph: GraphView,
                   candidates: dict[int, set[int]] | None
                   ) -> dict[int, set[int]]:
    """Label + predicate (+ caller restriction) candidate pools."""
    pools: dict[int, set[int]] = {}
    for u in pattern.nodes():
        base: Iterable[int]
        if candidates is not None and u in candidates:
            base = candidates[u]
        else:
            base = graph.nodes_with_label(pattern.label_of(u))
        predicate = pattern.predicate_of(u)
        out_need = len(pattern.out_neighbors(u))
        in_need = len(pattern.in_neighbors(u))
        pool = set()
        for v in base:
            if graph.label_of(v) != pattern.label_of(u):
                continue
            if not predicate.is_trivial and not predicate.evaluate(graph.value_of(v)):
                continue
            if out_need and graph.out_degree(v) < out_need:
                continue
            if in_need and graph.in_degree(v) < in_need:
                continue
            pool.add(v)
        pools[u] = pool
    return pools


def _search_order(pattern: Pattern, pools: dict[int, set[int]]) -> list[int]:
    """Static order: most selective start, then most-connected-first.

    Keeps the frontier connected whenever the pattern is connected, so
    candidate generation can intersect mapped neighbours' adjacency.
    """
    remaining = set(pattern.nodes())
    order: list[int] = []
    while remaining:
        frontier = [u for u in remaining
                    if any(w in order for w in pattern.neighbors(u))]
        if not frontier:  # first node, or a new weak component
            frontier = list(remaining)
        chosen = min(frontier,
                     key=lambda u: (len(pools[u]),
                                    -sum(1 for w in pattern.neighbors(u)
                                         if w in order)))
        order.append(chosen)
        remaining.remove(chosen)
    return order


def _backtrack(pattern: Pattern, graph: GraphView,
               pools: dict[int, set[int]], order: list[int],
               limit: int | None, timeout: float | None
               ) -> Iterator[dict[int, int]]:
    started = time.monotonic()
    steps = 0
    found = 0
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def candidates_for(u: int) -> Iterable[int]:
        """Generate candidates for ``u`` given the current mapping."""
        base: set[int] | None = None
        # Use the smallest adjacency set among mapped neighbours.
        for w in pattern.out_neighbors(u):
            if w in mapping:
                adj = set(graph.in_neighbors(mapping[w]))
                base = adj if base is None else (base & adj)
        for w in pattern.in_neighbors(u):
            if w in mapping:
                adj = set(graph.out_neighbors(mapping[w]))
                base = adj if base is None else (base & adj)
        pool = pools[u]
        if base is None:
            return sorted(pool)
        return sorted(base & pool)

    def feasible(u: int, v: int) -> bool:
        if v in used:
            return False
        for w in pattern.out_neighbors(u):
            if w in mapping and not graph.has_edge(v, mapping[w]):
                return False
        for w in pattern.in_neighbors(u):
            if w in mapping and not graph.has_edge(mapping[w], v):
                return False
        return True

    stack: list[tuple[int, Iterator[int]]] = [(order[0], iter(candidates_for(order[0])))]
    while stack:
        steps += 1
        if timeout is not None and steps % _TIMEOUT_STRIDE == 0:
            elapsed = time.monotonic() - started
            if elapsed > timeout:
                raise MatchTimeout(
                    f"subgraph matching exceeded {timeout}s", elapsed=elapsed,
                    partial=found)
        depth = len(stack) - 1
        u, iterator = stack[-1]
        advanced = False
        for v in iterator:
            if not feasible(u, v):
                continue
            mapping[u] = v
            used.add(v)
            if depth + 1 == len(order):
                found += 1
                yield dict(mapping)
                del mapping[u]
                used.remove(v)
                if limit is not None and found >= limit:
                    return
                continue
            next_u = order[depth + 1]
            stack.append((next_u, iter(candidates_for(next_u))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if stack:
                prev_u = stack[-1][0]
                if prev_u in mapping:
                    used.remove(mapping[prev_u])
                    del mapping[prev_u]
