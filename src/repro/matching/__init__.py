"""Pattern matchers: the two query semantics and four evaluation routes.

From-scratch matchers (the paper's baselines):

* :func:`find_matches` / :func:`count_matches` — **VF2**-style subgraph
  isomorphism (all matches of Q in G, non-induced, label+predicate aware);
* :func:`simulate` — **gsim**, the maximum graph-simulation relation
  (Henzinger-Henzinger-Kopke style counter fixpoint).

Index-assisted baselines (the paper's optVF2/optgsim):

* :func:`opt_vf2` / :func:`opt_gsim` — same algorithms seeded with
  candidates retrieved through type (1) constraint indices.

Bounded evaluation (the paper's bVF2/bSim):

* :func:`bvf2` / :func:`bsim` — execute a (worst-case optimal) query plan
  to fetch ``G_Q``, then match inside ``G_Q`` only.
"""

from repro.matching.vf2 import find_matches, count_matches, match_exists
from repro.matching.simulation import simulate, simulation_holds
from repro.matching.optimized import opt_vf2, opt_gsim, type1_candidates
from repro.matching.bounded import bvf2, bsim, BoundedRun

__all__ = [
    "find_matches",
    "count_matches",
    "match_exists",
    "simulate",
    "simulation_holds",
    "opt_vf2",
    "opt_gsim",
    "type1_candidates",
    "bvf2",
    "bsim",
    "BoundedRun",
]
