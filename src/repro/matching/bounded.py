"""Bounded evaluation: the paper's bVF2 and bSim.

For an effectively bounded query, evaluation is:

1. generate (or reuse) a worst-case-optimal plan (QPlan/sQPlan);
2. execute it against the schema indexes, fetching ``G_Q`` — time and
   data volume depend only on ``Q`` and ``A``;
3. run the conventional matcher *inside* ``G_Q``, restricted to the
   fetched candidate sets.

``Q(G_Q) = Q(G)`` by Theorems 1/7, so the result is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting import AccessStats
from repro.constraints.index import SchemaIndex
from repro.core.executor import ExecutionResult, execute_plan
from repro.core.plan import QueryPlan
from repro.core.qplan import qplan, sqplan
from repro.matching.simulation import simulate
from repro.matching.vf2 import find_matches
from repro.pattern.pattern import Pattern


@dataclass
class BoundedRun:
    """A bounded evaluation: the answer plus full provenance."""

    answer: object                 # list of mappings (bVF2) or relation (bSim)
    execution: ExecutionResult

    @property
    def plan(self) -> QueryPlan:
        return self.execution.plan

    @property
    def stats(self) -> AccessStats:
        return self.execution.stats

    @property
    def gq(self):
        return self.execution.gq


def canonical_answer(semantics: str, answer) -> list:
    """A JSON-stable, fully ordered rendering of a query answer.

    Subgraph answers become sorted lists of sorted ``[u, v]`` item
    lists; simulation relations become sorted ``[u, v]`` pair lists.
    Two evaluation strategies agree on an answer iff their canonical
    forms are byte-identical after ``json.dumps`` — the determinism
    contract the scatter-gather executor is tested against.
    """
    from repro.core.actualized import SUBGRAPH
    from repro.matching.simulation import relation_pairs

    if semantics == SUBGRAPH:
        return sorted([sorted(match.items()) for match in answer])
    return sorted([list(pair) for pair in relation_pairs(answer)])


def bvf2(pattern: Pattern, schema_index: SchemaIndex,
         plan: QueryPlan | None = None,
         stats: AccessStats | None = None) -> BoundedRun:
    """Bounded subgraph-query evaluation (the paper's bVF2).

    Raises :class:`~repro.errors.NotEffectivelyBounded` when no plan is
    supplied and the query is not effectively bounded.
    """
    if plan is None:
        plan = qplan(pattern, schema_index.schema)
    execution = execute_plan(plan, schema_index, stats=stats)
    matches = find_matches(pattern, execution.gq,
                           candidates=execution.candidates)
    return BoundedRun(answer=matches, execution=execution)


def bsim(pattern: Pattern, schema_index: SchemaIndex,
         plan: QueryPlan | None = None,
         stats: AccessStats | None = None) -> BoundedRun:
    """Bounded simulation-query evaluation (the paper's bSim)."""
    if plan is None:
        plan = sqplan(pattern, schema_index.schema)
    execution = execute_plan(plan, schema_index, stats=stats)
    relation = simulate(pattern, execution.gq,
                        candidates=execution.candidates)
    return BoundedRun(answer=relation, execution=execution)
