"""The one front door of the library: ``repro.connect``.

Three historical entry points grew up independently —
``QueryEngine.open`` (an in-memory graph + schema),
``QueryEngine.open_path`` (a compiled artifact), and
``QueryEngine.from_shards`` (a pre-built shard backend) — each with its
own drifting keyword surface. :func:`connect` collapses them behind one
``(source, config)`` signature:

>>> import repro
>>> engine = repro.connect("artifacts/imdb")                  # artifact
>>> engine = repro.connect((graph, schema))                   # in-memory
>>> engine = repro.connect("artifacts/imdb", workers=4)       # worker pool
>>> engine = repro.connect(
...     "artifacts/imdb", backend="remote",
...     shard_addrs=["10.0.0.1:8650", "10.0.0.2:8650"])       # shard fleet

All session options live on one frozen :class:`SessionConfig`; keyword
arguments to :func:`connect` are shorthand for overriding its fields, so
``connect(p, workers=4)`` and ``connect(p, config=SessionConfig(
workers=4))`` are the same call. A config is a value — build one per
deployment and reuse it across reconnects.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Sequence

from repro.errors import EngineError


@dataclasses.dataclass(frozen=True)
class SessionConfig:
    """Every knob of a :func:`connect` call, as one immutable value.

    Fields group by which sources consult them; irrelevant fields are
    ignored (an in-memory open never looks at ``workers``), except where
    the combination is contradictory enough to reject — those rules live
    with the loader (:func:`repro.engine.persist.load_engine`).

    All sources: ``frozen``, ``validate``, ``cache_size``,
    ``plan_cache``, ``executor``.

    Artifacts: ``allow_stale``, ``strategy`` (``auto``/``sequential``/
    ``scatter``), ``workers`` + ``mp_context`` (process pool), and
    ``backend`` (``auto``/``inline``/``process``/``remote``) with the
    remote-fleet settings — ``shard_addrs`` (one ``host:port`` per
    shard, in shard order), the two timeouts, bounded retry
    (``retries``/``retry_backoff_s``), ``owner_routing`` and
    ``wire_format`` (``auto`` negotiates packed binary frames when both
    ends can, ``json`` forces the compatibility codec, ``binary``
    demands the packed codec and fails the handshake on a JSON-only
    server).
    """

    frozen: bool = True
    validate: bool = False
    cache_size: int = 128
    plan_cache: object | None = None
    executor: str = "auto"
    # -- artifact sources ---------------------------------------------------
    allow_stale: bool = False
    strategy: str = "auto"
    workers: int = 0
    mp_context: object | None = None
    # -- shard fleet --------------------------------------------------------
    backend: str = "auto"
    shard_addrs: Sequence[str] = ()
    connect_timeout: float = 5.0
    request_timeout: float = 30.0
    retries: int = 2
    retry_backoff_s: float = 0.1
    owner_routing: bool = True
    wire_format: str = "auto"
    #: Scatter driver: True (default) runs the pipelined per-shard-
    #: progress executor; False forces the lock-step wave barrier (the
    #: reference mode the skewed-fleet benchmark compares against).
    scatter_pipeline: bool = True

    def replace(self, **overrides) -> "SessionConfig":
        """A copy with ``overrides`` applied; unknown names raise
        :class:`~repro.errors.EngineError` (the typo guard for
        :func:`connect`'s keyword shorthand)."""
        bad = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if bad:
            raise EngineError(
                f"unknown session option(s) {sorted(bad)}; see "
                f"repro.SessionConfig for the full surface")
        return dataclasses.replace(self, **overrides)


def connect(source, *, config: SessionConfig | None = None, **overrides):
    """Open a query-serving session over ``source``.

    ``source`` selects the session kind:

    * ``str`` / ``Path`` — a compiled artifact directory
      (``repro compile``). Single-layout artifacts warm-start an
      ordinary session; sharded artifacts open under
      ``config.strategy``/``config.backend`` — in this process, over a
      worker pool (``workers=N``), or against a running shard-server
      fleet (``backend="remote"``, ``shard_addrs=[...]``).
    * ``(graph, schema)`` — an in-memory graph under an access schema;
      snapshot + index are built on the spot.
    * ``(backend, schema, graph_summary)`` — a pre-built
      :class:`~repro.engine.parallel.ShardBackend`; assembles the
      scatter-gather session around it (the expert/testing form).

    Options come from ``config`` (a :class:`SessionConfig`), with
    keyword ``overrides`` applied on top. Returns a
    :class:`~repro.engine.QueryEngine`; close it (or use it as a
    context manager) to release pools and fleet connections.
    """
    from repro.engine.engine import QueryEngine

    cfg = (config or SessionConfig()).replace(**overrides)
    if isinstance(source, (str, Path)):
        from repro.engine import persist

        return persist.load_engine(
            source, frozen=cfg.frozen, validate=cfg.validate,
            cache_size=cfg.cache_size, allow_stale=cfg.allow_stale,
            workers=cfg.workers, mp_context=cfg.mp_context,
            strategy=cfg.strategy, executor=cfg.executor,
            backend=cfg.backend, shard_addrs=cfg.shard_addrs,
            connect_timeout=cfg.connect_timeout,
            request_timeout=cfg.request_timeout, retries=cfg.retries,
            retry_backoff_s=cfg.retry_backoff_s,
            owner_routing=cfg.owner_routing,
            wire_format=cfg.wire_format,
            scatter_pipeline=cfg.scatter_pipeline)
    if isinstance(source, tuple) and len(source) == 2:
        graph, schema = source
        if cfg.backend not in ("auto", "inline") or cfg.shard_addrs:
            raise EngineError(
                "an in-memory (graph, schema) source has no shards; "
                "backend/shard_addrs apply to sharded artifacts")
        return QueryEngine(graph, schema, frozen=cfg.frozen,
                           validate=cfg.validate, cache_size=cfg.cache_size,
                           plan_cache=cfg.plan_cache, executor=cfg.executor)
    if isinstance(source, tuple) and len(source) == 3:
        backend, schema, graph_summary = source
        return QueryEngine._assemble_from_shards(
            backend, schema, graph_summary, plan_cache=cfg.plan_cache,
            cache_size=cfg.cache_size,
            scatter_pipeline=cfg.scatter_pipeline)
    raise EngineError(
        f"cannot connect to {type(source).__name__!r}: expected an "
        f"artifact path, a (graph, schema) pair, or a "
        f"(backend, schema, graph_summary) triple")


__all__ = ["SessionConfig", "connect"]
