"""LRU plan cache and canonical pattern keys.

The compiled artifacts of bounded evaluation — the EBChk verdict and the
QPlan/sQPlan plan — depend on ``(Q, A, semantics)`` only, never on the
graph. A :class:`~repro.engine.engine.QueryEngine` therefore caches them
per session keyed on a *canonical pattern key*, so a repeated query (even
one rebuilt from scratch with different node ids) pays planning once.

Canonical keys are computed by colour refinement (a directed 1-WL pass
seeded with node labels + predicate atoms) followed by an exact
minimisation over the permutations of still-tied nodes. Patterns here are
tiny (the paper's workloads use 3–7 nodes), so the exact step is cheap;
a guard falls back to an id-ordered key for adversarially symmetric
patterns rather than enumerating huge permutation spaces.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from itertools import permutations, product
from typing import Hashable, Iterable

from repro.pattern.pattern import Pattern

#: Permutation budget for the exact canonicalization step. Patterns with
#: more symmetric orderings than this get an id-ordered (non-isomorphism-
#: invariant, but stable and correct) key instead.
MAX_CANONICAL_ORDERS = 5040  # 7!


def _node_descriptor(pattern: Pattern, node: int) -> tuple:
    """Renaming-invariant description of one pattern node: its label plus
    the (order-canonicalised) predicate atoms."""
    predicate = pattern.predicate_of(node)
    return (pattern.label_of(node),
            tuple(sorted(str(atom) for atom in predicate.atoms)))


def _refine_colors(pattern: Pattern) -> dict[int, tuple]:
    """Directed colour refinement until the partition stabilises."""
    colors: dict[int, Hashable] = {
        u: _node_descriptor(pattern, u) for u in pattern.nodes()}
    for _ in range(pattern.num_nodes):
        refined = {
            u: (colors[u],
                tuple(sorted(colors[w] for w in pattern.out_neighbors(u))),
                tuple(sorted(colors[w] for w in pattern.in_neighbors(u))))
            for u in pattern.nodes()}
        if len(set(refined.values())) == len(set(colors.values())):
            colors = refined
            break
        colors = refined
    return colors


def _encode(pattern: Pattern, order: tuple[int, ...]) -> tuple:
    """Encode the pattern with nodes renumbered to positions in ``order``."""
    position = {node: i for i, node in enumerate(order)}
    nodes = tuple(_node_descriptor(pattern, node) for node in order)
    edges = tuple(sorted((position[u], position[v])
                         for u, v in pattern.edges()))
    return (nodes, edges)


def pattern_fingerprint(pattern: Pattern) -> tuple[tuple, tuple[int, ...]]:
    """``(key, order)`` for a pattern.

    ``key`` is hashable and equal for isomorphic patterns (modulo the
    permutation budget); ``order`` lists the pattern's node ids in the
    canonical position order realizing ``key``. Two patterns with equal
    keys are isomorphic via ``order[i] <-> order[i]``, which is what lets
    the engine translate a cached plan onto a renumbered pattern.

    The result is memoized on the pattern (reset by any mutation), so a
    prepared query re-run in a loop pays canonicalization once.
    """
    cached = pattern._fingerprint
    if cached is not None:
        return cached
    result = _compute_fingerprint(pattern)
    pattern._fingerprint = result
    return result


def _compute_fingerprint(pattern: Pattern) -> tuple[tuple, tuple[int, ...]]:
    colors = _refine_colors(pattern)
    classes: dict[Hashable, list[int]] = {}
    for node in sorted(pattern.nodes()):
        classes.setdefault(colors[node], []).append(node)
    ordered_classes = [classes[color] for color in sorted(classes)]

    total_orders = 1
    for members in ordered_classes:
        for k in range(2, len(members) + 1):
            total_orders *= k
        if total_orders > MAX_CANONICAL_ORDERS:
            # Too symmetric for the exact step: stable id-ordered fallback
            # (identical resubmissions still hit; renumbered clones miss).
            order = tuple(sorted(pattern.nodes()))
            return _encode(pattern, order), order

    best_key, best_order = None, None
    for arrangement in product(*(permutations(members)
                                 for members in ordered_classes)):
        order = tuple(node for members in arrangement for node in members)
        key = _encode(pattern, order)
        if best_key is None or key < best_key:
            best_key, best_order = key, order
    return best_key, best_order


class PlanCache:
    """LRU cache for prepared plans, keyed on canonical pattern form +
    semantics.

    Values are opaque to the cache (the engine stores the canonical node
    order together with the compiled plan). Hit/miss/eviction counters are
    kept here and surfaced through the engine's
    :class:`~repro.accounting.AccessStats`.

    A cache may be shared between engines **only** when they serve the
    same access schema — plans compiled for one schema are meaningless
    under another. All operations take a per-cache lock, so a cache (and
    therefore a frozen engine session) may be hit from several worker
    threads concurrently — the query server's executor pool does exactly
    that.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, validate=None):
        """Return the cached value (refreshing recency) or None.

        ``validate``, when given, is a predicate on the stored value; an
        entry that fails it is dropped and counted as a miss (used by the
        engine for schema-staleness checks, so hit/miss counters reflect
        whether a compilation was actually avoided).
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            if validate is not None and not validate(value):
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh an entry, evicting the least recently used."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True if it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> Iterable[Hashable]:
        """Keys from least to most recently used (eviction order)."""
        with self._lock:
            return iter(list(self._entries.keys()))

    def items(self) -> list[tuple[Hashable, object]]:
        """``(key, value)`` pairs in eviction order, without touching the
        hit/miss counters or recency (used by artifact serialization)."""
        with self._lock:
            return list(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def info(self) -> dict:
        """Counters in one dict (mirrors ``functools.lru_cache``)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._entries),
                "maxsize": self.maxsize}

    def __repr__(self) -> str:
        return (f"PlanCache(size={len(self._entries)}/{self.maxsize}, "
                f"hits={self.hits}, misses={self.misses})")
