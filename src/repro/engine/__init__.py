"""Query-serving session layer: compile once, serve many.

* :class:`~repro.engine.engine.QueryEngine` — one graph snapshot + one
  schema index behind a facade with plan caching, answer memoization and
  batched execution.
* :class:`~repro.engine.engine.PreparedQuery` — a compiled (EBChk +
  QPlan) query bound to a session.
* :class:`~repro.engine.cache.PlanCache` — the LRU plan cache, sharable
  between sessions serving the same schema.
* :mod:`~repro.engine.persist` — on-disk compiled artifacts:
  ``QueryEngine.save(path)`` / ``QueryEngine.open_path(path)`` give warm
  starts that skip graph load, index build and plan compilation.
"""

from repro.engine.cache import PlanCache, pattern_fingerprint
from repro.engine.engine import PreparedQuery, QueryEngine
from repro.engine.extension import (
    ExtensionPlan,
    ExtensionReport,
    plan_extension,
    workload_stats,
)
from repro.engine.parallel import (
    InlineShardBackend,
    ProcessShardBackend,
    ShardRuntime,
)
from repro.engine.persist import (
    inspect_artifact,
    load_engine,
    render_inspection,
    save_engine,
    save_extended_sharded,
    save_sharded_engine,
    verify_sharded_artifact,
)

__all__ = [
    "ExtensionPlan",
    "ExtensionReport",
    "InlineShardBackend",
    "PlanCache",
    "PreparedQuery",
    "ProcessShardBackend",
    "QueryEngine",
    "ShardRuntime",
    "inspect_artifact",
    "load_engine",
    "pattern_fingerprint",
    "plan_extension",
    "render_inspection",
    "save_engine",
    "save_extended_sharded",
    "save_sharded_engine",
    "verify_sharded_artifact",
    "workload_stats",
]
