"""Query-serving session layer: compile once, serve many.

* :class:`~repro.engine.engine.QueryEngine` — one graph snapshot + one
  schema index behind a facade with plan caching, answer memoization and
  batched execution.
* :class:`~repro.engine.engine.PreparedQuery` — a compiled (EBChk +
  QPlan) query bound to a session.
* :class:`~repro.engine.cache.PlanCache` — the LRU plan cache, sharable
  between sessions serving the same schema.
"""

from repro.engine.cache import PlanCache, pattern_fingerprint
from repro.engine.engine import PreparedQuery, QueryEngine

__all__ = [
    "PlanCache",
    "PreparedQuery",
    "QueryEngine",
    "pattern_fingerprint",
]
