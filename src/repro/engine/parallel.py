"""Shard backends: inline shards, the worker-process pool, and the
networked shard fleet.

The scatter-gather executor (:func:`repro.core.executor.
execute_plans_scatter`) is written against the :class:`ShardBackend`
contract:

* ``num_shards`` / ``constraint_pos`` — layout metadata;
* ``scatter(tasks, shard_sets=None)`` — run the tasks against the
  shards, returning one response list per shard, aligned with ``tasks``.
  ``shard_sets`` is the owner-routing hook: when given, ``shard_sets[i]``
  is the set of shard ids that must execute ``tasks[i]``, and every
  other shard's entry for that task is ``None``. Routing is *sound* by
  the disjoint-union identity: a shard that owns no node a task could
  report contributes an empty response under broadcast, so skipping it
  cannot change the merged result;
* ``extension_stats(labels)`` / ``extend(constraints)`` — the schema-
  lifecycle rounds: per-shard extension-planning aggregates over owned
  nodes, and shard-local index builds for *added* constraints (owned
  targets only, so the disjoint-union identity of
  :mod:`repro.graph.partition` extends to the new indexes).

Three implementations live here:

* :class:`InlineShardBackend` — shards held in-process; ``scatter`` is a
  plain loop. This is the zero-overhead default (``workers=0``) and the
  reference the other two are tested against.
* :class:`ProcessShardBackend` — shards held by worker *processes*, each
  warm-started from its per-shard artifact directory
  (:mod:`repro.engine.persist`). Only task/response tuples ever cross a
  process boundary — graphs and indexes are loaded worker-side from
  disk, so the pool is start-method agnostic (``fork`` and ``spawn``
  both work; CI smokes ``spawn`` on Python 3.12, the strictest mode).
* :class:`RemoteShardBackend` — shards held by standalone ``repro
  shard-serve`` processes (:mod:`repro.server.shardserver`), reached
  over the wire protocol of :mod:`repro.server.protocol` (packed binary
  frames when the hello handshake negotiates them, JSON lines
  otherwise). The front-end holds no graph at all; it multiplexes one
  wave's tasks per connection round, with connect/read timeouts,
  bounded retry with backoff on transient faults, and typed
  :class:`~repro.errors.ShardUnavailable` errors once retries exhaust.

Thread safety: the in-process backends serialize ``scatter`` rounds
(inline excepted — frozen reads need none). The remote backend is
pipelined: requests are correlated by id, each connection has a reader
thread, and ``scatter_submit`` lets several rounds overlap on the same
connections — per-task completion callbacks fire from the reader
threads the moment a task's own shards have answered. Retry backoff
runs on the per-shard reader thread, so one shard mid-backoff never
stalls another shard's traffic.
"""

from __future__ import annotations

import abc
import atexit
import json
import multiprocessing
import pickle
import threading
import time
from typing import Sequence

from repro.constraints.index import FrozenConstraintIndex
from repro.constraints.schema import AccessConstraint
from repro.core import kernels
from repro.core.executor import run_shard_task
from repro.errors import (
    EngineError,
    ReproError,
    ShardHandshakeMismatch,
    ShardProtocolError,
    ShardUnavailable,
)
from repro.graph.frozen import FrozenGraph
from repro.obs.trace import current_span


class ShardRuntime:
    """One shard's in-memory state: halo graph, owned set, shard index."""

    __slots__ = ("shard_id", "graph", "schema_index", "owned",
                 "_owned_sorted")

    def __init__(self, shard_id: int, graph, schema_index,
                 owned: Sequence[int]):
        self.shard_id = shard_id
        self.graph = graph
        self.schema_index = schema_index
        self.owned = frozenset(owned)
        self._owned_sorted = None  # lazy int64 array for vectorized tasks

    def handle(self, task: tuple):
        # Shard graphs are CSR snapshots, so the probe/edge tasks run on
        # the array kernels when numpy is available; responses are
        # identical either way (see run_shard_task_vectorized).
        if kernels.HAVE_NUMPY and isinstance(self.graph, FrozenGraph):
            if self._owned_sorted is None:
                self._owned_sorted = kernels.sorted_id_array(self.owned)
            return kernels.run_shard_task_vectorized(
                self.graph, self.schema_index, self.owned,
                self._owned_sorted, task)
        return run_shard_task(self.graph, self.schema_index, self.owned, task)

    def owned_labels(self) -> list[str]:
        """Sorted distinct labels of the shard's *owned* nodes — the
        per-label half of the owner-routing metadata (a shard owning no
        node of a constraint's target label can never contribute to a
        fetch/edge task for that constraint)."""
        return sorted({self.graph.label_of(v) for v in self.owned})

    def extension_stats(self, labels: Sequence[str]) -> tuple[dict, dict]:
        """Per-shard extension-planning aggregates over *owned* nodes,
        restricted to ``labels``: label counts (merge by sum) and
        neighbour-label bounds (merge by max). Owned nodes carry their
        complete neighbourhood in the halo graph, so the merged values
        equal :func:`repro.constraints.discovery.neighbor_label_bounds`
        and ``label_count`` over the whole graph."""
        wanted = set(labels)
        counts: dict[str, int] = {}
        bounds: dict[tuple[str, str], int] = {}
        for v in self.owned:
            label = self.graph.label_of(v)
            if label not in wanted:
                continue
            counts[label] = counts.get(label, 0) + 1
            per_label: dict[str, int] = {}
            for w in self.graph.neighbors(v):
                other = self.graph.label_of(w)
                if other in wanted:
                    per_label[other] = per_label.get(other, 0) + 1
            for other, count in per_label.items():
                key = (label, other)
                if count > bounds.get(key, 0):
                    bounds[key] = count
        return counts, bounds

    def extend(self, constraints: Sequence[AccessConstraint]) -> dict:
        """Build and adopt shard-local indexes for *added* constraints.

        Targets are the owned nodes with the constraint's target label —
        the same enumeration as
        :func:`repro.graph.partition.build_shard_indexes`, so the union
        of the new shard entries for any key equals the global entry.
        The index goes live (``adopt_index``) before the constraint is
        appended to the shard's schema, mirroring the parent catalog's
        publish ordering."""
        built = 0
        cells = 0
        for constraint in constraints:
            if self.schema_index.has_index(constraint):
                continue
            targets = [w for w in
                       self.graph.nodes_with_label(constraint.target)
                       if w in self.owned]
            index = FrozenConstraintIndex(constraint, self.graph,
                                          targets=targets)
            self.schema_index.adopt_index(constraint, index)
            self.schema_index.schema.add(constraint)
            built += 1
            cells += index.size
        return {"shard_id": self.shard_id, "built": built, "cells": cells}

    def __repr__(self) -> str:
        return (f"ShardRuntime({self.shard_id}, owned={len(self.owned)}, "
                f"graph={self.graph!r})")


class OwnerRouter:
    """Front-end-side ownership metadata for owner-routed scatter.

    Built from ``partition.bin``'s owned-node buffers (node → owning
    shard) and the per-shard owned-label sets. The two lookups cover the
    three task kinds exactly (see
    :meth:`repro.core.executor.execute_plans_scatter`): ``probe`` tasks
    go only to shards owning a source candidate, ``fetch``/``edge``
    tasks only to shards owning at least one node of the constraint's
    target label — every skipped shard would have contributed an empty
    response, so the merged result is unchanged.
    """

    __slots__ = ("_owner_of", "_label_shards", "num_shards")

    def __init__(self, owners_by_shard: dict, labels_by_shard: dict):
        self._owner_of = {int(v): shard_id
                          for shard_id, owned in owners_by_shard.items()
                          for v in owned}
        label_shards: dict[str, set[int]] = {}
        for shard_id, labels in labels_by_shard.items():
            for label in labels:
                label_shards.setdefault(label, set()).add(shard_id)
        self._label_shards = {label: frozenset(shards)
                              for label, shards in label_shards.items()}
        self.num_shards = len(owners_by_shard)

    def shards_with_label(self, label: str) -> frozenset:
        """Shards owning at least one node labeled ``label``."""
        return self._label_shards.get(label, frozenset())

    def shards_owning_any(self, nodes) -> frozenset:
        """Shards owning at least one of ``nodes``."""
        owner_of = self._owner_of
        return frozenset(owner_of[v] for v in nodes if v in owner_of)

    def __repr__(self) -> str:
        return (f"OwnerRouter(shards={self.num_shards}, "
                f"nodes={len(self._owner_of)}, "
                f"labels={len(self._label_shards)})")


class ShardBackend(abc.ABC):
    """The public contract every shard backend implements.

    :func:`repro.core.executor.execute_plans_scatter` and the engine's
    schema-extension path are written against exactly this surface;
    :class:`InlineShardBackend`, :class:`ProcessShardBackend` and
    :class:`RemoteShardBackend` all subclass it, and
    ``tests/test_backend_contract.py`` runs one suite over all three.

    Subclasses must call ``super().__init__(schema)`` (which seeds
    ``constraint_pos`` and the round counters) and use
    :meth:`_record_round` / :meth:`_grow_positions` so accounting and
    position bookkeeping stay uniform.
    """

    def __init__(self, schema):
        #: constraint -> position in the schema's canonical order (the
        #: scatter task protocol addresses constraints by position).
        #: ``extend`` grows it in place.
        self.constraint_pos = schema.positions()
        #: Owner-routing metadata (:class:`OwnerRouter`) or None for
        #: broadcast scatter.
        self.router: OwnerRouter | None = None
        #: Round accounting: ``scatter_messages`` counts (task, shard)
        #: executions — the fan-out owner routing exists to cut — and
        #: ``scatter_messages_broadcast`` what a broadcast of the same
        #: rounds would have cost.
        self.scatter_rounds = 0
        self.tasks_scattered = 0
        self.scatter_messages = 0
        self.scatter_messages_broadcast = 0
        #: Pipelining accounting: rounds submitted while a previous
        #: round was still in flight (only an asynchronous backend can
        #: overlap rounds), and cross-execution cell-dedup hits credited
        #: by the pipelined executor driver.
        self.rounds_overlapped = 0
        self.scatter_dedup_hits = 0

    # -- contract -------------------------------------------------------------
    @property
    @abc.abstractmethod
    def num_shards(self) -> int:
        """Number of shards in the partition."""

    @property
    def workers(self) -> int:
        """Local worker processes backing the shards (0 when the shards
        are in-process or remote)."""
        return 0

    @abc.abstractmethod
    def scatter(self, tasks: list[tuple],
                shard_sets: list | None = None) -> list[list]:
        """Run one wave of tasks; one response list per shard, aligned
        with ``tasks``. With ``shard_sets``, a shard's entry for a task
        it was not routed is ``None``."""

    def scatter_submit(self, tasks: list[tuple],
                       shard_sets: list | None = None,
                       on_task=None) -> None:
        """Pipelined scatter: submit one round and complete tasks
        individually. ``on_task(i, responses)`` fires exactly once per
        task index — with the task's per-shard response row (aligned
        with shard order, ``None`` for unrouted shards) once every
        routed shard answered, or with an :class:`Exception` when the
        task's round failed. Completions may arrive on backend reader
        threads, out of submission order, and before this call returns.

        The base implementation is synchronous — it runs
        :meth:`scatter` and completes every task before returning —
        which gives the in-process backends pipelined-driver support
        with barrier cost semantics. :class:`RemoteShardBackend`
        overrides it with a truly asynchronous path.
        """
        responses = self.scatter(tasks, shard_sets)
        for i in range(len(tasks)):
            on_task(i, [row[i] for row in responses])

    @abc.abstractmethod
    def extension_stats(self, labels: Sequence[str]) -> list[tuple]:
        """Per-shard (label counts, neighbour bounds) in shard order."""

    @abc.abstractmethod
    def extend(self, constraints: Sequence[AccessConstraint]) -> list[dict]:
        """Build shard-local indexes for added constraints on every
        shard; per-shard build summaries in shard order. Implementations
        must grow ``constraint_pos`` (:meth:`_grow_positions`) before
        returning, so the parent may publish the new schema generation
        the moment this call completes."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the backend's resources (idempotent)."""

    # -- shared bookkeeping ---------------------------------------------------
    def _record_round(self, tasks, shard_sets) -> None:
        self.scatter_rounds += 1
        self.tasks_scattered += len(tasks)
        broadcast = len(tasks) * self.num_shards
        self.scatter_messages_broadcast += broadcast
        if shard_sets is None:
            self.scatter_messages += broadcast
        else:
            self.scatter_messages += sum(len(s) for s in shard_sets)

    def _grow_positions(self, constraints) -> None:
        for constraint in constraints:
            self.constraint_pos.setdefault(constraint,
                                           len(self.constraint_pos))


class InlineShardBackend(ShardBackend):
    """All shards in the current process; ``scatter`` is a loop.

    Frozen shard state makes concurrent ``scatter`` calls safe without
    locking — reads only. ``owner_routing=False`` drops the router and
    broadcasts every task (the reference mode benchmarks compare
    against).
    """

    def __init__(self, runtimes: list[ShardRuntime], schema, *,
                 owner_routing: bool = True):
        if not runtimes:
            raise EngineError("a shard backend needs at least one shard")
        super().__init__(schema)
        self.runtimes = runtimes
        if owner_routing:
            self.router = OwnerRouter(
                {r.shard_id: r.owned for r in runtimes},
                {r.shard_id: r.owned_labels() for r in runtimes})

    @property
    def num_shards(self) -> int:
        return len(self.runtimes)

    def scatter(self, tasks: list[tuple],
                shard_sets: list | None = None) -> list[list]:
        self._record_round(tasks, shard_sets)
        if shard_sets is None:
            return [[runtime.handle(task) for task in tasks]
                    for runtime in self.runtimes]
        return [[runtime.handle(task) if runtime.shard_id in routed else None
                 for task, routed in zip(tasks, shard_sets)]
                for runtime in self.runtimes]

    def extension_stats(self, labels: Sequence[str]) -> list[tuple]:
        return [runtime.extension_stats(labels)
                for runtime in self.runtimes]

    def extend(self, constraints: Sequence[AccessConstraint]) -> list[dict]:
        results = [runtime.extend(constraints) for runtime in self.runtimes]
        self._grow_positions(constraints)
        return results

    def close(self) -> None:  # symmetric with the other backends
        pass

    def __repr__(self) -> str:
        return f"InlineShardBackend(shards={self.num_shards})"


# ------------------------------------------------------------- worker process
def _shard_worker_main(conn, artifact_path: str, shard_ids: list[int]) -> None:
    """Worker-process entry point (module-level: spawn-picklable).

    Warm-starts the assigned shards from the sharded artifact at
    ``artifact_path`` and serves ``("scatter", tasks, shard_lists)``
    requests until a ``("close",)`` sentinel (or EOF) arrives. Responses
    are ``("ok", {shard_id: [response, ...]})`` or ``("error", repr)`` —
    a failed round reports instead of wedging the parent. The ready
    message carries each shard's owned-label set, the per-label half of
    the parent's owner-routing metadata.
    """
    try:
        from repro.engine import persist
        runtimes = persist.load_shard_runtimes(artifact_path, shard_ids)
    except BaseException as exc:  # noqa: BLE001 — report, then exit
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", {r.shard_id: r.owned_labels() for r in runtimes}))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "close":
            break
        try:
            if kind == "scatter":
                _, tasks, shard_lists = message
                payload = {}
                for runtime in runtimes:
                    if shard_lists is None:
                        responses = [runtime.handle(task) for task in tasks]
                    else:
                        responses = [runtime.handle(task)
                                     if runtime.shard_id in routed else None
                                     for task, routed
                                     in zip(tasks, shard_lists)]
                    payload[runtime.shard_id] = responses
            elif kind == "stats":
                _, labels = message
                payload = {runtime.shard_id: runtime.extension_stats(labels)
                           for runtime in runtimes}
            elif kind == "extend":
                _, docs = message
                constraints = [AccessConstraint.from_dict(doc)
                               for doc in docs]
                payload = {runtime.shard_id: runtime.extend(constraints)
                           for runtime in runtimes}
            else:
                raise EngineError(f"unknown worker message {kind!r}")
            conn.send(("ok", payload))
        except BaseException as exc:  # noqa: BLE001 — keep serving
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class ProcessShardBackend(ShardBackend):
    """Worker-process pool over the shards of a sharded artifact.

    Parameters
    ----------
    artifact_path:
        Sharded artifact directory every worker warm-starts from.
    shard_ids:
        All shard ids in the artifact, in partition order.
    schema:
        The access schema (for the constraint-position table).
    workers:
        Number of worker processes; shards are dealt round-robin, so
        ``workers`` may be smaller than the shard count.
    mp_context:
        A ``multiprocessing`` context; defaults to the interpreter's
        current start method (``multiprocessing.get_context()``), so a
        global ``set_start_method("spawn")`` is honoured.
    owner_routing:
        Build the :class:`OwnerRouter` from ``partition.bin`` plus the
        workers' ready messages (default); False broadcasts every task.
    """

    def __init__(self, artifact_path, shard_ids: Sequence[int], schema, *,
                 workers: int, mp_context=None, owner_routing: bool = True):
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        super().__init__(schema)
        self._shard_ids = list(shard_ids)
        self._lock = threading.Lock()
        self._closed = False
        ctx = mp_context if mp_context is not None \
            else multiprocessing.get_context()
        workers = min(workers, len(self._shard_ids))
        assignments = [self._shard_ids[w::workers] for w in range(workers)]
        self._workers = []
        try:
            for worker_shards in assignments:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, str(artifact_path), worker_shards),
                    daemon=True)
                process.start()
                child_conn.close()
                self._workers.append((process, parent_conn, worker_shards))
            labels_by_shard: dict[int, list[str]] = {}
            for process, conn, worker_shards in self._workers:
                kind, payload = conn.recv()
                if kind != "ready":
                    raise EngineError(
                        f"shard worker failed to start: {payload}")
                labels_by_shard.update(payload)
            if owner_routing:
                from repro.engine import persist
                self.router = OwnerRouter(
                    persist.load_partition_owners(artifact_path),
                    labels_by_shard)
        except BaseException:
            self._terminate()
            raise
        atexit.register(self.close)

    @property
    def num_shards(self) -> int:
        return len(self._shard_ids)

    @property
    def workers(self) -> int:
        return len(self._workers)

    def _round(self, message: tuple) -> dict:
        """Broadcast one message to every worker and gather the merged
        ``{shard_id: payload}`` responses. Rounds serialize under a lock
        (see module docstring)."""
        with self._lock:
            if self._closed:
                raise EngineError("shard worker pool is closed")
            # Serialize the broadcast once, not once per worker
            # (send_bytes of a pickle is what Connection.send does
            # internally, so worker-side recv() is unchanged).
            blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            for _, conn, _ in self._workers:
                conn.send_bytes(blob)
            by_shard: dict[int, object] = {}
            errors: list[str] = []
            for _, conn, worker_shards in self._workers:
                try:
                    kind, payload = conn.recv()
                except EOFError:
                    self._closed = True
                    self._terminate()
                    raise EngineError(
                        f"shard worker for shards {worker_shards} died "
                        f"mid-round") from None
                # Drain every worker before raising: each sends exactly
                # one response per round, and leaving responses queued
                # would desynchronize the next round's pipes.
                if kind != "ok":
                    errors.append(str(payload))
                else:
                    by_shard.update(payload)
            if errors:
                raise EngineError(f"shard worker error: {'; '.join(errors)}")
        return by_shard

    def scatter(self, tasks: list[tuple],
                shard_sets: list | None = None) -> list[list]:
        """One scatter round: every worker runs its shards' routed
        tasks; responses come back in shard order."""
        self._record_round(tasks, shard_sets)
        by_shard = self._round(("scatter", tasks, shard_sets))
        return [by_shard[shard_id] for shard_id in self._shard_ids]

    def extension_stats(self, labels: Sequence[str]) -> list[tuple]:
        """Per-shard (label counts, neighbour bounds) in shard order."""
        by_shard = self._round(("stats", list(labels)))
        return [by_shard[shard_id] for shard_id in self._shard_ids]

    def extend(self, constraints: Sequence[AccessConstraint]) -> list[dict]:
        """One extension round: every worker builds shard-local indexes
        for the added constraints over its shards' owned targets.
        Constraints cross the pipe as their JSON documents; the position
        table grows before returning so the parent may publish the new
        catalog generation immediately."""
        by_shard = self._round(("extend", [c.to_dict() for c in constraints]))
        self._grow_positions(constraints)
        return [by_shard[shard_id] for shard_id in self._shard_ids]

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Drop the exit hook's strong reference: a process that
            # opens and closes many pools must not accumulate them.
            atexit.unregister(self.close)
            for _, conn, _ in self._workers:
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
            for process, conn, _ in self._workers:
                process.join(timeout=5)
                conn.close()
            self._terminate(join=False)

    def _terminate(self, join: bool = True) -> None:
        for process, _, _ in self._workers:
            if process.is_alive():
                process.terminate()
                if join:
                    process.join(timeout=5)

    def __repr__(self) -> str:
        return (f"ProcessShardBackend(shards={self.num_shards}, "
                f"workers={len(self._workers)}, "
                f"closed={self._closed})")


# ------------------------------------------------------------- remote fleet
def parse_shard_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; raises ``EngineError`` on
    junk so a typo'd ``--shard-addrs`` fails before any connect."""
    host, sep, port = str(addr).rpartition(":")
    if not sep or not host:
        raise EngineError(f"shard address {addr!r} is not host:port")
    try:
        return host, int(port)
    except ValueError:
        raise EngineError(f"shard address {addr!r} has a non-numeric "
                          f"port") from None


class _ScatterEncoder:
    """Encode-once cache for one scatter round's task bytes.

    A broadcast (or any routing that sends one task list to several
    shards) used to re-encode the identical task list per shard; this
    caches the heavy parts — the JSON ``tasks`` array fragment, or the
    binary ``tasks_meta`` fragment plus the packed payload section —
    keyed by (codec, task-index tuple), and splices the tiny per-shard
    envelope (``id``, ``op``, ``trace``) around the cached bytes at send
    time. Encoding cost is therefore paid once per *distinct* task list,
    not once per shard.
    """

    __slots__ = ("tasks", "_json", "_binary")

    def __init__(self, tasks: list[tuple]):
        self.tasks = tasks
        self._json: dict[tuple, bytes] = {}
        self._binary: dict[tuple, tuple[bytes, bytes]] = {}

    def _json_fragment(self, key: tuple) -> bytes:
        fragment = self._json.get(key)
        if fragment is None:
            from repro.server import protocol
            fragment = json.dumps(
                [protocol.encode_task(self.tasks[i]) for i in key],
                separators=(",", ":")).encode("utf-8")
            self._json[key] = fragment
        return fragment

    def _binary_parts(self, key: tuple) -> tuple[bytes, bytes]:
        parts = self._binary.get(key)
        if parts is None:
            from repro.server import protocol
            metas, buffers = protocol.encode_tasks_binary(
                [self.tasks[i] for i in key])
            parts = (json.dumps(metas, separators=(",", ":")).encode(),
                     protocol.encode_payload(buffers))
            self._binary[key] = parts
        return parts

    def encode(self, codec: str, key: tuple, envelope: dict) -> bytes:
        """One shard's complete scatter frame bytes."""
        from repro.server import protocol
        head = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
        if codec == protocol.CODEC_BINARY:
            metas, payload = self._binary_parts(key)
            header = head[:-1] + b',"tasks_meta":' + metas + b"}"
            return protocol.binary_frame(header, payload)
        return head[:-1] + b',"tasks":' + self._json_fragment(key) + b"}\n"


class _PendingRequest:
    """One in-flight request on a shard connection: the encoded frame
    bytes (kept for retransmission after a reconnect — the request id is
    reused, so correlation survives), the completion callback, and the
    optional ``shard_rpc`` span the completion closes."""

    __slots__ = ("rid", "data", "on_done", "span")

    def __init__(self, rid: int, data: bytes, on_done, span):
        self.rid = rid
        self.data = data
        self.on_done = on_done
        self.span = span


class _ShardConn:
    """One front-end connection to one ``repro shard-serve`` process.

    Requests are correlated by id, so several may be in flight at once:
    submitters append to ``pending`` and send under ``lock``, while the
    connection's reader thread (:meth:`RemoteShardBackend._reader_loop`)
    pops completions as response frames arrive, in whatever order the
    server answers rounds. ``sock is None`` means "currently
    disconnected"; the reader reconnects (re-handshakes, replays
    extensions, retransmits ``pending``) on demand. The wire counters
    (bytes each way, encode seconds, in-flight peak) persist across
    reconnects — they describe the shard's slot, not one socket.
    """

    __slots__ = ("addr", "host", "port", "sock", "file", "shard_id",
                 "next_id", "codec", "bytes_sent", "bytes_received",
                 "encode_s", "lock", "cond", "pending", "reader",
                 "fail_streak", "inflight_peak")

    def __init__(self, addr: str):
        self.addr = addr
        self.host, self.port = parse_shard_addr(addr)
        self.sock = None
        self.file = None
        self.shard_id: int | None = None
        self.next_id = 0
        self.codec: str | None = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.encode_s = 0.0
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.pending: dict[int, _PendingRequest] = {}
        self.reader: threading.Thread | None = None
        #: Consecutive transient faults with no successfully-read frame
        #: in between — the retry budget spans reconnects that only
        #: manage to fail again (e.g. a server that truncates every
        #: response).
        self.fail_streak = 0
        self.inflight_peak = 0

    def send(self, doc: dict) -> int:
        from repro.server import protocol
        self.next_id += 1
        scatter = doc.get("_scatter")
        started = time.perf_counter()
        if scatter is not None:
            encoder, key = scatter
            envelope = {"id": self.next_id,
                        **{k: v for k, v in doc.items() if k != "_scatter"}}
            data = encoder.encode(self.codec or protocol.CODEC_JSON, key,
                                  envelope)
        else:
            data = protocol.encode({"id": self.next_id, **doc})
        self.encode_s += time.perf_counter() - started
        self.sock.sendall(data)
        self.bytes_sent += len(data)
        return self.next_id

    def recv(self, request_id: int) -> dict:
        from repro.server import protocol
        try:
            response = protocol.read_frame(self.file)
        except ShardProtocolError as exc:
            raise ShardProtocolError(f"shard {self.addr}: {exc}",
                                     addr=self.addr) from None
        self.bytes_received += response.nbytes
        if response.get("id") != request_id:
            raise ShardProtocolError(
                f"shard {self.addr}: response id {response.get('id')!r} "
                f"does not match request id {request_id!r}", addr=self.addr)
        if not response.get("ok"):
            protocol.raise_error(response)
        return response

    def call(self, doc: dict) -> dict:
        return self.recv(self.send(doc))

    def close(self) -> None:
        for stream in (self.file, self.sock):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        self.sock = None
        self.file = None


#: Transient connection faults worth a bounded retry: refused/reset/
#: timed-out sockets and peers that hung up (cleanly or mid-frame).
_TRANSIENT = (OSError, EOFError)


class RemoteShardBackend(ShardBackend):
    """The backend contract over a fleet of ``repro shard-serve``
    processes.

    The front-end opens the *same* sharded artifact directory the fleet
    serves from (plans, catalog, partition — everything except the shard
    graphs) and handshakes every address: exact protocol and artifact
    format-version agreement plus a manifest-checksum match against the
    top manifest's per-shard root of trust, so a fleet serving a
    different compile fails loudly at connect, never silently mid-wave.
    Addresses may list the shards in any order — each server reports
    which shard it holds, and the set must cover the partition exactly.

    Failure semantics: transient faults (connect refused/reset, read
    timeout, peer death mid-round) are retried per shard up to
    ``retries`` times with exponential backoff, re-handshaking on every
    reconnect and replaying any online schema extensions before the
    round resumes — a shard restarted from the artifact mid-run answers
    identically. Exhausted retries raise
    :class:`~repro.errors.ShardUnavailable`; wire garbage and handshake
    disagreements raise their own typed errors immediately (they are
    deployment bugs, not weather).
    """

    def __init__(self, shard_addrs: Sequence[str], schema, *,
                 artifact_path, manifest: dict | None = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 30.0,
                 retries: int = 2, retry_backoff_s: float = 0.1,
                 owner_routing: bool = True, wire_format: str = "auto"):
        from repro.engine import persist
        from repro.server import protocol

        super().__init__(schema)
        if wire_format not in protocol.WIRE_FORMATS:
            raise EngineError(
                f"wire_format must be one of {protocol.WIRE_FORMATS}, "
                f"got {wire_format!r}")
        self.wire_format = wire_format
        self._artifact_path = artifact_path
        if manifest is None:
            manifest = persist.read_sharded_manifest(artifact_path)
        shard_meta = manifest.get("shards") or []
        if len(shard_addrs) != len(shard_meta):
            raise EngineError(
                f"artifact at {artifact_path} has {len(shard_meta)} "
                f"shards but {len(shard_addrs)} shard addresses were "
                f"given")
        self._expected = {
            "format_version": manifest.get("format_version"),
            "schema_version": manifest.get("schema_version"),
            "manifest_sha256": {shard_id: meta.get("manifest_sha256")
                                for shard_id, meta
                                in enumerate(shard_meta)},
        }
        self._shard_ids = list(range(len(shard_meta)))
        self.shard_addrs = list(shard_addrs)
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self._lock = threading.Lock()
        self._closed = False
        #: Online extensions to replay after a shard restart (a restart
        #: warm-starts from the artifact, which predates them).
        self._applied_extensions: list[dict] = []
        self.reconnects = 0
        self._conns: dict[int, _ShardConn] = {}
        conns = [_ShardConn(addr) for addr in shard_addrs]
        try:
            labels_by_shard: dict[int, list[str]] = {}
            for conn in conns:
                hello = self._connect(conn)
                if conn.shard_id in self._conns:
                    other = self._conns[conn.shard_id].addr
                    raise ShardHandshakeMismatch(
                        f"shard servers {other} and {conn.addr} both "
                        f"serve shard {conn.shard_id}", addr=conn.addr,
                        found=conn.shard_id)
                self._conns[conn.shard_id] = conn
                labels_by_shard[conn.shard_id] = \
                    [str(label) for label in hello.get("owned_labels", ())]
            missing = sorted(set(self._shard_ids) - set(self._conns))
            if missing:
                raise ShardHandshakeMismatch(
                    f"shard addresses cover no server for shards "
                    f"{missing}", expected=self._shard_ids)
            if owner_routing:
                self.router = OwnerRouter(
                    persist.load_partition_owners(artifact_path,
                                                  manifest=manifest),
                    labels_by_shard)
        except BaseException:
            for conn in conns:
                conn.close()
            raise

    # -- connection management ------------------------------------------------
    def _connect(self, conn: _ShardConn) -> dict:
        """(Re)connect one shard connection and run the handshake;
        returns the server's hello document."""
        from repro.server import protocol

        conn.close()
        try:
            conn.sock = protocol.connect_retry(
                conn.host, conn.port, timeout=self.request_timeout,
                connect_timeout=self.connect_timeout)
        except OSError as exc:
            raise ShardUnavailable(
                f"cannot connect to shard server {conn.addr}: {exc}",
                addr=conn.addr, shard_id=conn.shard_id) from None
        conn.file = conn.sock.makefile("rb")
        try:
            hello = conn.call({
                "op": "hello",
                "protocol": protocol.PROTOCOL_VERSION,
                "format_version": self._expected["format_version"],
                "codecs": protocol.supported_codecs(self.wire_format),
            })
        except _TRANSIENT as exc:
            conn.close()
            raise ShardUnavailable(
                f"shard server {conn.addr} hung up during the handshake: "
                f"{exc}", addr=conn.addr, shard_id=conn.shard_id) from None
        for field in ("protocol", "format_version", "schema_version"):
            expected = protocol.PROTOCOL_VERSION if field == "protocol" \
                else self._expected[field]
            if hello.get(field) != expected:
                conn.close()
                raise ShardHandshakeMismatch(
                    f"shard server {conn.addr} speaks {field} "
                    f"{hello.get(field)!r}, this front-end expects "
                    f"{expected!r}", addr=conn.addr,
                    found=hello.get(field), expected=expected)
        shard_id = hello.get("shard_id")
        expected_sha = self._expected["manifest_sha256"].get(shard_id)
        if expected_sha is None:
            conn.close()
            raise ShardHandshakeMismatch(
                f"shard server {conn.addr} serves shard {shard_id!r}, "
                f"which is not in the partition "
                f"({len(self._shard_ids)} shards)", addr=conn.addr,
                found=shard_id, expected=self._shard_ids)
        if hello.get("manifest_sha256") != expected_sha:
            conn.close()
            raise ShardHandshakeMismatch(
                f"shard server {conn.addr} serves a different compile of "
                f"shard {shard_id} (manifest checksum mismatch); "
                f"re-deploy the fleet from this artifact", addr=conn.addr,
                found=hello.get("manifest_sha256"), expected=expected_sha)
        codec = hello.get("codec") or protocol.CODEC_JSON
        if codec not in protocol.supported_codecs(self.wire_format):
            conn.close()
            raise ShardHandshakeMismatch(
                f"shard server {conn.addr} negotiated codec {codec!r}, "
                f"which this front-end (wire_format={self.wire_format!r}) "
                f"does not speak", addr=conn.addr, found=codec,
                expected=protocol.supported_codecs(self.wire_format))
        if self.wire_format == "binary" and protocol.binary_supported() \
                and codec != protocol.CODEC_BINARY:
            # "binary" is a demand, not a preference: a JSON-only server
            # is a deployment mismatch, not something to paper over.
            conn.close()
            raise ShardHandshakeMismatch(
                f"shard server {conn.addr} cannot speak the binary codec "
                f"this front-end requires (wire_format='binary'); "
                f"upgrade the server or use --wire-format auto",
                addr=conn.addr, found=codec,
                expected=[protocol.CODEC_BINARY])
        conn.codec = codec
        conn.shard_id = shard_id
        return hello

    def _reconnect(self, conn: _ShardConn) -> None:
        self.reconnects += 1
        self._connect(conn)
        if self._applied_extensions:
            # A restarted server warm-started from the artifact, which
            # predates any online extension — replay them (idempotent
            # shard-side) before it sees another task.
            conn.call({"op": "extend",
                       "constraints": list(self._applied_extensions)})

    # -- pipelined submission -------------------------------------------------
    def _submit(self, conn: _ShardConn, doc: dict, on_done, span=None) -> int:
        """Register and send one request on ``conn``; ``on_done`` fires
        exactly once — with the response frame, or with a typed
        exception — from the connection's reader thread (or inline for
        server-side typed errors read there). Never blocks on the
        network beyond the send itself: faults are handed to the reader
        thread, whose bounded reconnect/retransmit path runs its backoff
        without holding any lock another shard's traffic needs."""
        from repro.server import protocol

        started = time.perf_counter()
        scatter = doc.get("_scatter")
        with conn.lock:
            if self._closed:
                raise EngineError("remote shard backend is closed")
            conn.next_id += 1
            rid = conn.next_id
            if scatter is not None:
                encoder, key = scatter
                envelope = {"id": rid, **{k: v for k, v in doc.items()
                                          if k != "_scatter"}}
                data = encoder.encode(conn.codec or protocol.CODEC_JSON,
                                      key, envelope)
            else:
                data = protocol.encode({"id": rid, **doc})
            conn.encode_s += time.perf_counter() - started
            conn.pending[rid] = _PendingRequest(rid, data, on_done, span)
            depth = len(conn.pending)
            if depth > conn.inflight_peak:
                conn.inflight_peak = depth
            self._ensure_reader(conn)
            if conn.sock is not None:
                try:
                    conn.sock.sendall(data)
                    conn.bytes_sent += len(data)
                except OSError:
                    # Leave the entry pending: the reader notices the
                    # dead socket and reconnects + retransmits.
                    conn.close()
            conn.cond.notify_all()
        return rid

    def _ensure_reader(self, conn: _ShardConn) -> None:
        """Start (or restart) the connection's reader thread. Caller
        holds ``conn.lock``."""
        if conn.reader is None or not conn.reader.is_alive():
            conn.reader = threading.Thread(
                target=self._reader_loop, args=(conn,),
                name=f"repro-shard-reader-{conn.addr}", daemon=True)
            conn.reader.start()

    def _reader_loop(self, conn: _ShardConn) -> None:
        """Per-connection reader: correlates response frames to pending
        requests by id. Sleeps (condition wait) whenever nothing is
        pending, so an idle connection never trips the read timeout.
        Exits after exhausting the retry budget or desynchronizing —
        the next submit starts a fresh reader."""
        from repro.server import protocol

        try:
            while True:
                with conn.lock:
                    while not conn.pending and not self._closed:
                        conn.cond.wait()
                    if self._closed:
                        break
                    file = conn.file
                    disconnected = conn.sock is None
                if disconnected:
                    if not self._recover(conn, ShardUnavailable(
                            f"connection to shard server {conn.addr} "
                            f"is down", addr=conn.addr,
                            shard_id=conn.shard_id)):
                        return
                    continue
                try:
                    frame = protocol.read_frame(file)
                except ShardProtocolError as exc:
                    # Wire garbage — the stream cannot be trusted.
                    self._fail_pending(conn, ShardProtocolError(
                        f"shard {conn.addr}: {exc}", addr=conn.addr))
                    return
                except (OSError, EOFError, ValueError) as exc:
                    # Timeout, reset, peer hang-up, or our own side
                    # closing the socket mid-read: transient.
                    conn.close()
                    if not self._recover(conn, exc):
                        return
                    continue
                conn.bytes_received += frame.nbytes
                rid = frame.get("id")
                with conn.lock:
                    entry = conn.pending.pop(rid, None)
                    conn.fail_streak = 0
                if entry is None:
                    self._fail_pending(conn, ShardProtocolError(
                        f"shard {conn.addr}: response id {rid!r} matches "
                        f"no in-flight request", addr=conn.addr))
                    return
                if not frame.get("ok"):
                    # Typed server-side error; the stream stays in sync.
                    try:
                        protocol.raise_error(frame)
                    except ReproError as exc:
                        self._complete(entry, exc)
                    continue
                self._complete(entry, frame)
        except BaseException as exc:  # pragma: no cover - defensive
            self._fail_pending(conn, ShardUnavailable(
                f"shard reader for {conn.addr} failed: {exc!r}",
                addr=conn.addr, shard_id=conn.shard_id))
            raise

    def _recover(self, conn: _ShardConn, error: Exception) -> bool:
        """Bounded reconnect/retransmit after a transient fault, run on
        the connection's reader thread — the backoff sleeps hold no
        lock, so every other shard keeps answering while this one is
        mid-backoff. The retry budget (``fail_streak``) only resets when
        a response frame is actually read, so a server that reconnects
        happily but keeps truncating responses still exhausts it.
        Returns False once the pending requests have been failed."""
        last = error
        while True:
            with conn.lock:
                if self._closed:
                    break
                conn.fail_streak += 1
                attempt = conn.fail_streak
            if attempt > self.retries:
                self._fail_pending(conn, ShardUnavailable(
                    f"shard server {conn.addr} (shard {conn.shard_id}) "
                    f"is unavailable after {self.retries + 1} attempts: "
                    f"{last}", addr=conn.addr, shard_id=conn.shard_id,
                    attempts=self.retries + 1))
                return False
            time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))
            fatal = None
            with conn.lock:
                if self._closed:
                    break
                for entry in conn.pending.values():
                    if entry.span is not None:
                        entry.span.set(
                            retries=attempt,
                            reconnects=entry.span.attrs.get(
                                "reconnects", 0) + 1)
                try:
                    self._reconnect(conn)
                    for rid in sorted(conn.pending):
                        data = conn.pending[rid].data
                        conn.sock.sendall(data)
                        conn.bytes_sent += len(data)
                    return True
                except _TRANSIENT as exc:
                    conn.close()
                    last = exc
                except ShardUnavailable as exc:
                    last = exc
                except ReproError as exc:
                    # Handshake disagreement — a deployment bug, not
                    # weather; no amount of retrying fixes it.
                    fatal = exc
            if fatal is not None:
                self._fail_pending(conn, fatal)
                return False
        self._fail_pending(conn, ShardUnavailable(
            "remote shard backend is closed", addr=conn.addr,
            shard_id=conn.shard_id))
        return False

    def _fail_pending(self, conn: _ShardConn, exc: Exception) -> None:
        """Fail every in-flight request on ``conn`` with ``exc`` (in
        request order) and reset the retry budget — the next round
        starts with a fresh one, exactly like the pre-pipelined
        per-round retry semantics."""
        with conn.lock:
            entries = [conn.pending[rid] for rid in sorted(conn.pending)]
            conn.pending.clear()
            conn.fail_streak = 0
            conn.close()
            conn.cond.notify_all()
        for entry in entries:
            self._complete(entry, exc)

    @staticmethod
    def _complete(entry: _PendingRequest, result) -> None:
        """Close the request's span and fire its callback exactly once.
        Spans may end on reader threads — ``Trace.record`` is written
        for that."""
        span = entry.span
        if span is not None:
            if isinstance(result, Exception):
                span.set(error=type(result).__name__)
            elif isinstance(result, dict) and "server_ms" in result:
                span.set(server_ms=result["server_ms"])
            span.end()
        if entry.on_done is not None:
            entry.on_done(result)

    def _request_round(self, messages: dict[int, dict]) -> dict[int, dict]:
        """Send one request per participating shard and gather the
        responses. All sends go out before any wait, the fleet works the
        round concurrently, and per-shard faults retry on the per-shard
        reader threads — a healthy shard's answer is consumed while an
        unhealthy one is still mid-backoff. Every shard's completion is
        awaited before any error is raised (completions are exactly-once
        per request, so nothing is left to desynchronize later rounds).

        With a span active in the calling context, each participating
        shard gets a ``shard_rpc`` child span and its request carries the
        trace context as the optional ``trace`` wire field — the shard
        server stamps its request log with the same trace id and reports
        its server-side time back as ``server_ms``."""
        if not messages:
            return {}
        parent = current_span()
        lock = threading.Lock()
        done = threading.Event()
        results: dict[int, object] = {}

        def _gather(shard_id):
            def on_done(result):
                with lock:
                    results[shard_id] = result
                    if len(results) == len(messages):
                        done.set()
            return on_done

        for shard_id, doc in messages.items():
            span = None
            if parent is not None:
                from repro.server import protocol

                span = parent.child("shard_rpc", shard=shard_id,
                                    addr=self._conns[shard_id].addr,
                                    rpc=str(doc.get("op")))
                doc = {**doc, "trace": protocol.encode_trace(span)}
            self._submit(self._conns[shard_id], doc, _gather(shard_id),
                         span=span)
        done.wait()
        out: dict[int, dict] = {}
        errors: list[Exception] = []
        for shard_id in sorted(messages):
            result = results[shard_id]
            if isinstance(result, Exception):
                errors.append(result)
            else:
                out[shard_id] = result
        if errors:
            raise errors[0]
        return out

    # -- contract -------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shard_ids)

    def _decode_scatter(self, conn: _ShardConn, result: dict,
                        kinds: list[str]) -> list:
        """Decode one shard's scatter response frame into per-task
        values aligned with the task indices it was sent."""
        from repro.server import protocol

        if "responses_meta" in result:
            decoded = protocol.decode_shard_responses_binary(
                result["responses_meta"],
                getattr(result, "payloads", ()),
                expected_kinds=kinds)
            if len(decoded) != len(kinds):
                raise ShardProtocolError(
                    f"shard {conn.addr}: scatter response does not "
                    f"align with the {len(kinds)} tasks sent",
                    addr=conn.addr)
            return decoded
        payload = result.get("responses")
        if not isinstance(payload, list) or len(payload) != len(kinds):
            raise ShardProtocolError(
                f"shard {conn.addr}: scatter response does not align "
                f"with the {len(kinds)} tasks sent", addr=conn.addr)
        return [protocol.decode_shard_response(kind, encoded)
                for kind, encoded in zip(kinds, payload)]

    def scatter_submit(self, tasks: list[tuple],
                       shard_sets: list | None = None,
                       on_task=None) -> None:
        """Asynchronous scatter: each task completes — ``on_task(i,
        per-shard row)`` — the moment its own routed shards have
        answered, independent of the rest of the round, and response
        decode runs on the reader threads, overlapping the network and
        the other shards' compute. Several rounds may be in flight on
        the same connections at once (request-id correlation keeps them
        straight); ``rounds_overlapped`` counts the rounds submitted
        while an earlier one was still pending."""
        from repro.server import protocol

        self._record_round(tasks, shard_sets)
        if any(conn.pending for conn in self._conns.values()):
            self.rounds_overlapped += 1
        # One encoder per round: identical task lists (every shard under
        # broadcast) are encoded once and the bytes reused per shard.
        encoder = _ScatterEncoder(tasks)
        sent_indices: dict[int, tuple[int, ...]] = {}
        for shard_id in self._shard_ids:
            if shard_sets is None:
                indices = tuple(range(len(tasks)))
            else:
                indices = tuple(i for i, routed in enumerate(shard_sets)
                                if shard_id in routed)
            if indices:
                sent_indices[shard_id] = indices
        remaining = [0] * len(tasks)
        for indices in sent_indices.values():
            for i in indices:
                remaining[i] += 1
        rows: list[list] = [[None] * self.num_shards for _ in tasks]
        state_lock = threading.Lock()

        # Tasks routed to no shard at all (unknown label) complete
        # immediately with an all-None row, exactly like the barrier
        # path's broadcast-of-nothing.
        for i, count in enumerate(remaining):
            if count == 0:
                on_task(i, rows[i])

        def _shard_done(shard_id, indices, result):
            conn = self._conns[shard_id]
            decoded = None
            if not isinstance(result, Exception):
                try:
                    decoded = self._decode_scatter(
                        conn, result, [tasks[i][0] for i in indices])
                except ReproError as exc:
                    result = exc
            fired = []
            with state_lock:
                if isinstance(result, Exception):
                    for i in indices:
                        if remaining[i] > 0:
                            remaining[i] = -1  # exactly-once per task
                            fired.append((i, result))
                else:
                    for i, value in zip(indices, decoded):
                        if remaining[i] <= 0:
                            continue
                        rows[i][shard_id] = value
                        remaining[i] -= 1
                        if remaining[i] == 0:
                            fired.append((i, rows[i]))
            for i, outcome in fired:
                on_task(i, outcome)

        parent = current_span()
        for shard_id, indices in sent_indices.items():
            conn = self._conns[shard_id]
            doc: dict = {"op": "scatter", "_scatter": (encoder, indices)}
            span = None
            if parent is not None:
                span = parent.child("shard_rpc", shard=shard_id,
                                    addr=conn.addr, rpc="scatter")
                doc["trace"] = protocol.encode_trace(span)
            self._submit(
                conn, doc,
                lambda result, _sid=shard_id, _ind=indices:
                    _shard_done(_sid, _ind, result),
                span=span)

    def scatter(self, tasks: list[tuple],
                shard_sets: list | None = None) -> list[list]:
        if not tasks:
            self._record_round(tasks, shard_sets)
            return [[] for _ in self._shard_ids]
        lock = threading.Lock()
        done = threading.Event()
        outcomes: dict[int, object] = {}

        def on_task(i, outcome):
            with lock:
                outcomes[i] = outcome
                if len(outcomes) == len(tasks):
                    done.set()

        self.scatter_submit(tasks, shard_sets, on_task)
        done.wait()
        for i in range(len(tasks)):
            outcome = outcomes[i]
            if isinstance(outcome, Exception):
                raise outcome
        # scatter_submit completes per task row; the synchronous
        # contract wants per-shard rows — transpose.
        return [[outcomes[i][slot] for i in range(len(tasks))]
                for slot, _ in enumerate(self._shard_ids)]

    def extension_stats(self, labels: Sequence[str]) -> list[tuple]:
        from repro.server import protocol

        labels = list(labels)
        results = self._request_round(
            {shard_id: {"op": "extension_stats", "labels": labels}
             for shard_id in self._shard_ids})
        return [protocol.decode_extension_stats(results[shard_id])
                for shard_id in self._shard_ids]

    def extend(self, constraints: Sequence[AccessConstraint]) -> list[dict]:
        docs = [c.to_dict() for c in constraints]
        results = self._request_round(
            {shard_id: {"op": "extend", "constraints": docs}
             for shard_id in self._shard_ids})
        self._applied_extensions.extend(docs)
        self._grow_positions(constraints)
        out = []
        for shard_id in self._shard_ids:
            result = results[shard_id].get("result") or {}
            out.append({"shard_id": int(result.get("shard_id", shard_id)),
                        "built": int(result.get("built", 0)),
                        "cells": int(result.get("cells", 0))})
        return out

    # -- fleet management -----------------------------------------------------
    def ping(self) -> bool:
        """Round-trip every shard connection."""
        results = self._request_round(
            {shard_id: {"op": "ping"} for shard_id in self._shard_ids})
        return all(results[shard_id].get("op") == "pong"
                   for shard_id in self._shard_ids)

    def shard_metrics(self) -> list[dict]:
        """Per-shard server metrics snapshots, in shard order."""
        results = self._request_round(
            {shard_id: {"op": "metrics"} for shard_id in self._shard_ids})
        return [{k: v for k, v in results[shard_id].items()
                 if k not in ("id", "ok")}
                for shard_id in self._shard_ids]

    @property
    def wire_codec(self) -> str:
        """The fleet-wide negotiated codec: ``binary``/``json`` when the
        shards agree (the normal case), ``mixed`` during a rolling
        upgrade."""
        from repro.server import protocol
        codecs = {self._conns[shard_id].codec or protocol.CODEC_JSON
                  for shard_id in self._shard_ids
                  if shard_id in self._conns}
        if len(codecs) == 1:
            return codecs.pop()
        return "mixed" if codecs else protocol.CODEC_JSON

    def wire_stats(self) -> list[dict]:
        """Per-shard client-side wire counters, in shard order — a local
        read, no fleet round-trip."""
        out = []
        for shard_id in self._shard_ids:
            conn = self._conns.get(shard_id)
            if conn is None:
                continue
            out.append({"shard_id": shard_id, "addr": conn.addr,
                        "codec": conn.codec or "json",
                        "bytes_sent": conn.bytes_sent,
                        "bytes_received": conn.bytes_received,
                        "encode_ms": round(conn.encode_s * 1000.0, 3),
                        "inflight": len(conn.pending),
                        "inflight_peak": conn.inflight_peak})
        return out

    def reload_fleet(self) -> list[dict]:
        """Ask every shard server to reload its shard from disk (after a
        re-compile of the artifact tree it serves). The front-end must
        re-open its own session afterwards — the query service's hot
        reload drives both halves in that order."""
        results = self._request_round(
            {shard_id: {"op": "reload"} for shard_id in self._shard_ids})
        return [{k: v for k, v in results[shard_id].items()
                 if k not in ("id", "ok")}
                for shard_id in self._shard_ids]

    def close(self) -> None:
        """Close the fleet connections (idempotent). The servers keep
        running — they belong to the deployment, not to this session.
        Reader threads wake, fail any still-pending requests, and
        exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for conn in self._conns.values():
            self._fail_pending(conn, EngineError(
                "remote shard backend is closed"))

    def __repr__(self) -> str:
        addrs = [self._conns[shard_id].addr for shard_id in self._shard_ids
                 if shard_id in self._conns]
        return (f"RemoteShardBackend(shards={self.num_shards}, "
                f"addrs={addrs}, closed={self._closed})")


__all__ = [
    "InlineShardBackend",
    "OwnerRouter",
    "ProcessShardBackend",
    "RemoteShardBackend",
    "ShardBackend",
    "ShardRuntime",
    "parse_shard_addr",
]
