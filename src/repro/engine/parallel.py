"""Shard backends: inline shards and the multiprocessing worker pool.

The scatter-gather executor (:func:`repro.core.executor.
execute_plans_scatter`) is written against a tiny backend contract:

* ``num_shards`` / ``constraint_pos`` — layout metadata;
* ``scatter(tasks)`` — run every task against every shard, returning one
  response list per shard, aligned with ``tasks``;
* ``extension_stats(labels)`` / ``extend(constraints)`` — the schema-
  lifecycle rounds: per-shard extension-planning aggregates over owned
  nodes, and shard-local index builds for *added* constraints (owned
  targets only, so the disjoint-union identity of
  :mod:`repro.graph.partition` extends to the new indexes).

Two implementations live here:

* :class:`InlineShardBackend` — shards held in-process; ``scatter`` is a
  plain loop. This is the zero-overhead default (``workers=0``) and the
  reference the parallel backend is tested against.
* :class:`ProcessShardBackend` — shards held by worker *processes*, each
  warm-started from its per-shard artifact directory
  (:mod:`repro.engine.persist`). Only task/response tuples ever cross a
  process boundary — graphs and indexes are loaded worker-side from
  disk, so the pool is start-method agnostic (``fork`` and ``spawn``
  both work; CI smokes ``spawn`` on Python 3.12, the strictest mode).

Thread safety: ``scatter`` takes an internal lock for the duration of a
round, so a frozen sharded engine can serve the query server's worker
threads — rounds serialize, which bounds IPC multiplexing complexity at
the cost of round-level concurrency (micro-batching already funnels
concurrent requests into shared rounds, so little is lost).
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import threading
from typing import Sequence

from repro.constraints.index import FrozenConstraintIndex
from repro.constraints.schema import AccessConstraint
from repro.core import kernels
from repro.core.executor import run_shard_task
from repro.errors import EngineError
from repro.graph.frozen import FrozenGraph


class ShardRuntime:
    """One shard's in-memory state: halo graph, owned set, shard index."""

    __slots__ = ("shard_id", "graph", "schema_index", "owned",
                 "_owned_sorted")

    def __init__(self, shard_id: int, graph, schema_index,
                 owned: Sequence[int]):
        self.shard_id = shard_id
        self.graph = graph
        self.schema_index = schema_index
        self.owned = frozenset(owned)
        self._owned_sorted = None  # lazy int64 array for vectorized tasks

    def handle(self, task: tuple):
        # Shard graphs are CSR snapshots, so the probe/edge tasks run on
        # the array kernels when numpy is available; responses are
        # identical either way (see run_shard_task_vectorized).
        if kernels.HAVE_NUMPY and isinstance(self.graph, FrozenGraph):
            if self._owned_sorted is None:
                self._owned_sorted = kernels.sorted_id_array(self.owned)
            return kernels.run_shard_task_vectorized(
                self.graph, self.schema_index, self.owned,
                self._owned_sorted, task)
        return run_shard_task(self.graph, self.schema_index, self.owned, task)

    def extension_stats(self, labels: Sequence[str]) -> tuple[dict, dict]:
        """Per-shard extension-planning aggregates over *owned* nodes,
        restricted to ``labels``: label counts (merge by sum) and
        neighbour-label bounds (merge by max). Owned nodes carry their
        complete neighbourhood in the halo graph, so the merged values
        equal :func:`repro.constraints.discovery.neighbor_label_bounds`
        and ``label_count`` over the whole graph."""
        wanted = set(labels)
        counts: dict[str, int] = {}
        bounds: dict[tuple[str, str], int] = {}
        for v in self.owned:
            label = self.graph.label_of(v)
            if label not in wanted:
                continue
            counts[label] = counts.get(label, 0) + 1
            per_label: dict[str, int] = {}
            for w in self.graph.neighbors(v):
                other = self.graph.label_of(w)
                if other in wanted:
                    per_label[other] = per_label.get(other, 0) + 1
            for other, count in per_label.items():
                key = (label, other)
                if count > bounds.get(key, 0):
                    bounds[key] = count
        return counts, bounds

    def extend(self, constraints: Sequence[AccessConstraint]) -> dict:
        """Build and adopt shard-local indexes for *added* constraints.

        Targets are the owned nodes with the constraint's target label —
        the same enumeration as
        :func:`repro.graph.partition.build_shard_indexes`, so the union
        of the new shard entries for any key equals the global entry.
        The index goes live (``adopt_index``) before the constraint is
        appended to the shard's schema, mirroring the parent catalog's
        publish ordering."""
        built = 0
        cells = 0
        for constraint in constraints:
            if self.schema_index.has_index(constraint):
                continue
            targets = [w for w in
                       self.graph.nodes_with_label(constraint.target)
                       if w in self.owned]
            index = FrozenConstraintIndex(constraint, self.graph,
                                          targets=targets)
            self.schema_index.adopt_index(constraint, index)
            self.schema_index.schema.add(constraint)
            built += 1
            cells += index.size
        return {"shard_id": self.shard_id, "built": built, "cells": cells}

    def __repr__(self) -> str:
        return (f"ShardRuntime({self.shard_id}, owned={len(self.owned)}, "
                f"graph={self.graph!r})")


class InlineShardBackend:
    """All shards in the current process; ``scatter`` is a loop.

    Frozen shard state makes concurrent ``scatter`` calls safe without
    locking — reads only.
    """

    def __init__(self, runtimes: list[ShardRuntime], schema):
        if not runtimes:
            raise EngineError("a shard backend needs at least one shard")
        self.runtimes = runtimes
        self.constraint_pos = schema.positions()

    @property
    def num_shards(self) -> int:
        return len(self.runtimes)

    @property
    def workers(self) -> int:
        return 0

    def scatter(self, tasks: list[tuple]) -> list[list]:
        return [[runtime.handle(task) for task in tasks]
                for runtime in self.runtimes]

    def extension_stats(self, labels: Sequence[str]) -> list[tuple]:
        """Per-shard (label counts, neighbour bounds) in shard order."""
        return [runtime.extension_stats(labels)
                for runtime in self.runtimes]

    def extend(self, constraints: Sequence[AccessConstraint]) -> list[dict]:
        """Build shard-local indexes for the added constraints on every
        shard; per-shard build summaries in shard order. The position
        table grows *before* returning, so the parent may publish the
        new generation the moment this call completes."""
        results = [runtime.extend(constraints) for runtime in self.runtimes]
        for constraint in constraints:
            self.constraint_pos.setdefault(constraint,
                                           len(self.constraint_pos))
        return results

    def close(self) -> None:  # symmetric with the process backend
        pass

    def __repr__(self) -> str:
        return f"InlineShardBackend(shards={self.num_shards})"


# ------------------------------------------------------------- worker process
def _shard_worker_main(conn, artifact_path: str, shard_ids: list[int]) -> None:
    """Worker-process entry point (module-level: spawn-picklable).

    Warm-starts the assigned shards from the sharded artifact at
    ``artifact_path`` and serves ``("scatter", tasks)`` requests until a
    ``("close",)`` sentinel (or EOF) arrives. Responses are
    ``("ok", {shard_id: [response, ...]})`` or ``("error", repr)`` — a
    failed round reports instead of wedging the parent.
    """
    try:
        from repro.engine import persist
        runtimes = persist.load_shard_runtimes(artifact_path, shard_ids)
    except BaseException as exc:  # noqa: BLE001 — report, then exit
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", [r.shard_id for r in runtimes]))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "close":
            break
        try:
            if kind == "scatter":
                _, tasks = message
                payload = {runtime.shard_id: [runtime.handle(task)
                                              for task in tasks]
                           for runtime in runtimes}
            elif kind == "stats":
                _, labels = message
                payload = {runtime.shard_id: runtime.extension_stats(labels)
                           for runtime in runtimes}
            elif kind == "extend":
                _, docs = message
                constraints = [AccessConstraint.from_dict(doc)
                               for doc in docs]
                payload = {runtime.shard_id: runtime.extend(constraints)
                           for runtime in runtimes}
            else:
                raise EngineError(f"unknown worker message {kind!r}")
            conn.send(("ok", payload))
        except BaseException as exc:  # noqa: BLE001 — keep serving
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class ProcessShardBackend:
    """Worker-process pool over the shards of a sharded artifact.

    Parameters
    ----------
    artifact_path:
        Sharded artifact directory every worker warm-starts from.
    shard_ids:
        All shard ids in the artifact, in partition order.
    schema:
        The access schema (for the constraint-position table).
    workers:
        Number of worker processes; shards are dealt round-robin, so
        ``workers`` may be smaller than the shard count.
    mp_context:
        A ``multiprocessing`` context; defaults to the interpreter's
        current start method (``multiprocessing.get_context()``), so a
        global ``set_start_method("spawn")`` is honoured.
    """

    def __init__(self, artifact_path, shard_ids: Sequence[int], schema, *,
                 workers: int, mp_context=None):
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.constraint_pos = schema.positions()
        self._shard_ids = list(shard_ids)
        self._lock = threading.Lock()
        self._closed = False
        ctx = mp_context if mp_context is not None \
            else multiprocessing.get_context()
        workers = min(workers, len(self._shard_ids))
        assignments = [self._shard_ids[w::workers] for w in range(workers)]
        self._workers = []
        try:
            for worker_shards in assignments:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, str(artifact_path), worker_shards),
                    daemon=True)
                process.start()
                child_conn.close()
                self._workers.append((process, parent_conn, worker_shards))
            for process, conn, worker_shards in self._workers:
                kind, payload = conn.recv()
                if kind != "ready":
                    raise EngineError(
                        f"shard worker failed to start: {payload}")
        except BaseException:
            self._terminate()
            raise
        atexit.register(self.close)

    @property
    def num_shards(self) -> int:
        return len(self._shard_ids)

    @property
    def workers(self) -> int:
        return len(self._workers)

    def _round(self, message: tuple) -> dict:
        """Broadcast one message to every worker and gather the merged
        ``{shard_id: payload}`` responses. Rounds serialize under a lock
        (see module docstring)."""
        with self._lock:
            if self._closed:
                raise EngineError("shard worker pool is closed")
            # Serialize the broadcast once, not once per worker
            # (send_bytes of a pickle is what Connection.send does
            # internally, so worker-side recv() is unchanged).
            blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            for _, conn, _ in self._workers:
                conn.send_bytes(blob)
            by_shard: dict[int, object] = {}
            errors: list[str] = []
            for _, conn, worker_shards in self._workers:
                try:
                    kind, payload = conn.recv()
                except EOFError:
                    self._closed = True
                    self._terminate()
                    raise EngineError(
                        f"shard worker for shards {worker_shards} died "
                        f"mid-round") from None
                # Drain every worker before raising: each sends exactly
                # one response per round, and leaving responses queued
                # would desynchronize the next round's pipes.
                if kind != "ok":
                    errors.append(str(payload))
                else:
                    by_shard.update(payload)
            if errors:
                raise EngineError(f"shard worker error: {'; '.join(errors)}")
        return by_shard

    def scatter(self, tasks: list[tuple]) -> list[list]:
        """One scatter round: every worker runs ``tasks`` on each of its
        shards; responses come back in shard order."""
        by_shard = self._round(("scatter", tasks))
        return [by_shard[shard_id] for shard_id in self._shard_ids]

    def extension_stats(self, labels: Sequence[str]) -> list[tuple]:
        """Per-shard (label counts, neighbour bounds) in shard order."""
        by_shard = self._round(("stats", list(labels)))
        return [by_shard[shard_id] for shard_id in self._shard_ids]

    def extend(self, constraints: Sequence[AccessConstraint]) -> list[dict]:
        """One extension round: every worker builds shard-local indexes
        for the added constraints over its shards' owned targets.
        Constraints cross the pipe as their JSON documents; the position
        table grows before returning so the parent may publish the new
        catalog generation immediately."""
        by_shard = self._round(("extend", [c.to_dict() for c in constraints]))
        for constraint in constraints:
            self.constraint_pos.setdefault(constraint,
                                           len(self.constraint_pos))
        return [by_shard[shard_id] for shard_id in self._shard_ids]

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Drop the exit hook's strong reference: a process that
            # opens and closes many pools must not accumulate them.
            atexit.unregister(self.close)
            for _, conn, _ in self._workers:
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
            for process, conn, _ in self._workers:
                process.join(timeout=5)
                conn.close()
            self._terminate(join=False)

    def _terminate(self, join: bool = True) -> None:
        for process, _, _ in self._workers:
            if process.is_alive():
                process.terminate()
                if join:
                    process.join(timeout=5)

    def __repr__(self) -> str:
        return (f"ProcessShardBackend(shards={self.num_shards}, "
                f"workers={len(self._workers)}, "
                f"closed={self._closed})")


__all__ = [
    "InlineShardBackend",
    "ProcessShardBackend",
    "ShardRuntime",
]
