"""The ``QueryEngine`` session facade: compile once, serve many.

The seed library exposed bounded evaluation as loose pieces — build a
:class:`~repro.constraints.index.SchemaIndex`, run EBChk, generate a plan,
execute it — and every entry point re-paid the expensive parts per call.
The engine owns one graph snapshot plus one schema index and amortizes
everything that does not depend on the data graph:

* ``prepare(pattern, semantics)`` runs EBChk + QPlan once per canonical
  pattern form and caches the compiled plan in an LRU
  :class:`~repro.engine.cache.PlanCache`;
* ``query(...)`` is prepare + execute + match in one call, with the last
  answer of each prepared query reused until the graph changes;
* ``query_batch(...)`` serves multi-query workloads, executing each
  distinct query once per batch;
* a frozen session (the default) snapshots the graph into CSR form
  (:class:`~repro.graph.frozen.FrozenGraph`) and builds the compact
  read-only :class:`~repro.constraints.index.FrozenConstraintIndex`
  variant; a mutable session instead wraps
  :class:`~repro.constraints.maintenance.MaintainedSchemaIndex` so
  ``apply(delta)`` repairs indexes locally and invalidates cached
  answers (plans survive — they depend on ``Q`` and ``A`` only).

**Thread safety.** A *frozen* session may serve ``prepare``/``query``/
``query_batch`` from several threads concurrently: the graph snapshot
and frozen indexes are read-only, the plan caches lock internally, lazy
index decode publishes atomically, and session accounting folds under a
lock. (The worst that concurrent duplicates can do is compute the same
memoized answer twice — last write wins, both are correct.) The
:mod:`repro.server` worker pool relies on exactly this contract. Mutable
sessions (``frozen=False``) make no such promise: ``apply`` must not
race queries.

See DESIGN.md ("The QueryEngine session") for the lifecycle and cache
keying details.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.accounting import AccessStats
from repro.constraints.catalog import SchemaCatalog
from repro.constraints.index import ConstraintIndex, FrozenConstraintIndex
from repro.constraints.maintenance import MaintainedSchemaIndex, MaintenanceReport
from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.core.actualized import SEMANTICS, SUBGRAPH
from repro.core.executor import (
    MODE_PLAN,
    ExecutionResult,
    execute_plan,
    execute_plans_scatter,
)
from repro.core.plan import EdgeCheck, FetchOp, QueryPlan
from repro.core.qplan import generate_plan
from repro.engine.cache import PlanCache, pattern_fingerprint
from repro.errors import EngineError, NotEffectivelyBounded
from repro.graph.delta import GraphDelta
from repro.graph.frozen import FrozenGraph
from repro.graph.graph import Graph, GraphView
from repro.matching.bounded import BoundedRun
from repro.matching.simulation import simulate
from repro.matching.vf2 import find_matches
from repro.obs.trace import child_span


@dataclass
class _CacheEntry:
    """What the plan cache stores per (canonical pattern, semantics).

    ``order`` is the canonical node order of the pattern the plan was
    compiled for; together with the canonical order of an incoming
    isomorphic pattern it yields the node translation that makes the
    cached plan reusable. ``error`` carries a cached negative verdict
    (the query is not effectively bounded) so EBChk is not re-run either.

    Verdicts are keyed against the serving
    :class:`~repro.constraints.catalog.SchemaCatalog`: ``schema`` must
    be the catalog's current schema object (shared-cache protection —
    plans compiled for one schema are meaningless under another), and
    ``version``/``schema_size`` record the catalog generation the
    verdict was reached under. A *positive* entry (a plan) stays valid
    forever — a plan compiled under ``A`` is correct under any
    extension ``A ∪ A'`` — but a *negative* verdict is a miss as soon
    as the schema has grown (by a catalog generation, or by a direct
    ``schema_index.add_constraint``): the M-bounded extension may have
    made the query bounded, so EBChk must re-run instead of the stale
    refusal being served forever. The cache never stores anything
    graph- or session-bound.
    """

    order: tuple[int, ...]
    schema: AccessSchema
    version: int
    schema_size: int
    plan: QueryPlan | None = None
    error: NotEffectivelyBounded | None = None

    def usable_by(self, catalog: SchemaCatalog) -> bool:
        if self.schema is not catalog.current:
            return False
        if self.error is not None and (self.version != catalog.version
                                       or self.schema_size != len(self.schema)):
            return False
        return True


class PreparedQuery:
    """A compiled query bound to one engine session.

    Holds the pattern, semantics, and worst-case-optimal plan; executing
    it fetches ``G_Q`` through the session's indexes. The last computed
    answer is cached and served until the session's graph generation
    changes (see :meth:`QueryEngine.apply`).
    """

    __slots__ = ("engine", "pattern", "semantics", "plan",
                 "_run", "_run_generation")

    def __init__(self, engine: "QueryEngine", pattern, semantics: str,
                 plan: QueryPlan):
        self.engine = engine
        self.pattern = pattern
        self.semantics = semantics
        self.plan = plan
        self._run: BoundedRun | None = None
        self._run_generation = -1

    def execute(self, stats: AccessStats | None = None,
                edge_mode: str = MODE_PLAN) -> ExecutionResult:
        """Fetch ``G_Q`` (node + edge phases) without matching."""
        run_stats = AccessStats()
        execution = self.engine._execute_plans(
            [self.plan], [run_stats], edge_mode=edge_mode)[0]
        self.engine._account(run_stats, stats)
        return execution

    def run(self, stats: AccessStats | None = None,
            refresh: bool = False) -> BoundedRun:
        """Execute and match; ``Q(G_Q) = Q(G)`` so the answer is exact.

        The previous answer is reused when the graph has not changed since
        it was computed — unless ``refresh=True`` forces re-execution or
        ``stats`` is given (callers asking for access accounting want a
        real run, not a memoized answer).
        """
        if (not refresh and stats is None and self._run is not None
                and self._run_generation == self.engine.generation):
            return self._run
        run_stats = AccessStats()
        execution = self.engine._execute_plans([self.plan], [run_stats])[0]
        run = self._finish_run(execution)
        self.engine._account(run_stats, stats)
        return run

    def warm(self) -> "PreparedQuery":
        """Run the plan once through the array kernels with the
        accounting discarded.

        Populates the session-level pure-lookup caches (graph kernel
        columns, per-constraint index kernels, fetch / predicate-mask /
        initial-scan caches) so the first *served* execution already
        runs at steady-state latency. The warming run records nothing:
        the caches only ever skip probing and filtering work, never the
        per-execution accounting. A no-op for sessions the vectorized
        executor does not serve (sequential or scatter-gather).
        """
        engine = self.engine
        if engine._executor == "vectorized" and engine._shards is None:
            from repro.core.kernels import execute_plan_vectorized
            execute_plan_vectorized(self.plan, engine._schema_index)
        return self

    def _finish_run(self, execution: ExecutionResult) -> BoundedRun:
        """Match inside ``G_Q`` and memoize the answer."""
        with child_span("match", semantics=self.semantics):
            if self.semantics == SUBGRAPH:
                answer = find_matches(self.pattern, execution.gq,
                                      candidates=execution.candidates)
            else:
                answer = simulate(self.pattern, execution.gq,
                                  candidates=execution.candidates)
        run = BoundedRun(answer=answer, execution=execution)
        self._run = run
        self._run_generation = self.engine.generation
        return run

    @property
    def worst_case_total_accessed(self) -> float:
        """The plan's access envelope — a function of ``Q`` and ``A`` only."""
        return self.plan.worst_case_total_accessed

    def __repr__(self) -> str:
        return (f"PreparedQuery({self.pattern.name or 'pattern'!r}, "
                f"semantics={self.semantics!r}, ops={len(self.plan.ops)})")


class QueryEngine:
    """One graph snapshot + one schema index, serving repeated queries.

    Examples
    --------
    >>> from repro.graph.generators import imdb_like
    >>> from repro.pattern import parse_pattern
    >>> graph, schema = imdb_like(scale=0.02)
    >>> engine = QueryEngine.open(graph, schema)
    >>> q = parse_pattern("m: movie; y: year; m -> y")
    >>> first = engine.query(q)
    >>> again = engine.query(q)          # plan cache hit, answer reused
    >>> engine.stats.plan_cache_hits
    1

    Parameters
    ----------
    frozen:
        Snapshot the graph into CSR form and build compact read-only
        indexes (the default; fastest for query-serving sessions).
        ``frozen=False`` keeps the mutable graph and enables
        :meth:`apply` for incremental updates.
    validate:
        Verify ``G |= A`` (cardinality bounds) after the index build.
    cache_size:
        LRU capacity of the private plan cache.
    plan_cache:
        Share an existing :class:`PlanCache` between sessions serving the
        **same schema** (e.g. several snapshots of a growing graph).
    executor:
        Plan-execution strategy: ``"auto"`` (default) runs the numpy
        array-kernel executor (:mod:`repro.core.kernels`) whenever the
        session qualifies — numpy importable, frozen CSR snapshot,
        frozen indexes — and the sequential executor otherwise;
        ``"sequential"`` / ``"vectorized"`` force one of the two
        (forcing ``"vectorized"`` on a session that cannot run it
        raises). Answers, ``G_Q`` and access accounting are identical
        under every strategy.
    """

    #: Scatter driver for sharded sessions: True (default) runs the
    #: pipelined per-shard-progress executor, False the lock-step wave
    #: barrier. Threaded from ``SessionConfig.scatter_pipeline``.
    scatter_pipeline = True

    #: Accepted ``executor=`` arguments.
    EXECUTORS = ("auto", "sequential", "vectorized")

    def __init__(self, graph: GraphView, schema, *,
                 frozen: bool = True, validate: bool = False,
                 cache_size: int = 128, plan_cache: PlanCache | None = None,
                 schema_index=None, executor: str = "auto"):
        # ``schema`` may be a bare AccessSchema (wrapped in a fresh
        # generation-0 catalog) or a SchemaCatalog (the artifact load
        # path, preserving recorded generations).
        self._catalog = schema if isinstance(schema, SchemaCatalog) \
            else SchemaCatalog(schema)
        schema = self._catalog.current
        self.frozen = frozen
        self.stats = AccessStats()
        #: Shard backend of a sharded session (None for ordinary
        #: sessions); see :meth:`from_shards`.
        self._shards = None
        #: Artifact directory this session was loaded from / saved to, if
        #: any; ``apply`` marks it stale the moment the served graph
        #: diverges from the on-disk snapshot.
        self.artifact_path: Path | None = None
        self._cache = plan_cache if plan_cache is not None else PlanCache(cache_size)
        # Session-local PreparedQuery memo (LRU): keeps answer memoization
        # across re-prepares without the (sharable) plan cache pinning
        # this session's graph snapshot and answers.
        self._prepared = PlanCache(cache_size)
        self._stats_lock = threading.Lock()
        self._generation = 0
        if frozen:
            snapshot = graph if isinstance(graph, FrozenGraph) \
                else FrozenGraph.from_graph(graph)
            self._graph: GraphView = snapshot
            self._maintained: MaintainedSchemaIndex | None = None
            if schema_index is None:
                from repro.constraints.index import SchemaIndex
                schema_index = SchemaIndex(snapshot, schema, frozen=True,
                                           validate=validate)
            elif validate:
                schema_index.validate()
            self._schema_index = schema_index
        else:
            if schema_index is not None:
                raise EngineError(
                    "a prebuilt schema index requires a frozen session")
            if not isinstance(graph, Graph):
                raise EngineError(
                    "a mutable engine session requires a mutable Graph "
                    f"(got {type(graph).__name__}); use frozen=True for "
                    "read-only views")
            self._maintained = MaintainedSchemaIndex(graph, schema)
            self._graph = graph
            self._schema_index = self._maintained.schema_index
            if validate:
                self._schema_index.validate()
        self._executor = self._resolve_executor(executor)

    def _resolve_executor(self, executor: str) -> str:
        """Resolve an ``executor=`` argument to a concrete strategy."""
        from repro.core import kernels

        if executor not in self.EXECUTORS:
            raise EngineError(f"unknown executor {executor!r}; expected "
                              f"one of {self.EXECUTORS}")
        if executor == "sequential":
            return "sequential"
        capable = kernels.can_vectorize(self._schema_index)
        if executor == "vectorized":
            if not capable:
                reason = "numpy is not installed" if not kernels.HAVE_NUMPY \
                    else "the session is not frozen (vectorized kernels " \
                         "run over CSR snapshot buffers)"
                raise EngineError(
                    f"executor='vectorized' is unavailable: {reason}")
            return "vectorized"
        return "vectorized" if capable else "sequential"

    @classmethod
    def open(cls, graph: GraphView, schema, *,
             frozen: bool = True, validate: bool = False,
             cache_size: int = 128,
             plan_cache: PlanCache | None = None,
             executor: str = "auto") -> "QueryEngine":
        """Open a query-serving session over ``graph`` under ``schema``.

        .. deprecated:: 1.1
            Thin shim over :func:`repro.connect` — prefer
            ``repro.connect((graph, schema), ...)``, the one documented
            entry point for every session kind.
        """
        from repro.session import SessionConfig, connect
        return connect((graph, schema), config=SessionConfig(
            frozen=frozen, validate=validate, cache_size=cache_size,
            plan_cache=plan_cache, executor=executor))

    @classmethod
    def open_path(cls, path, *, frozen: bool = True, validate: bool = False,
                  cache_size: int = 128, allow_stale: bool = False,
                  workers: int = 0, mp_context=None,
                  strategy: str = "auto",
                  executor: str = "auto",
                  backend: str = "auto",
                  shard_addrs=(), connect_timeout: float = 5.0,
                  request_timeout: float = 30.0, retries: int = 2,
                  retry_backoff_s: float = 0.1,
                  owner_routing: bool = True) -> "QueryEngine":
        """Warm-start a session from an artifact written by :meth:`save`.

        .. deprecated:: 1.1
            Thin shim over :func:`repro.connect` — prefer
            ``repro.connect(path, ...)``, which takes the same options
            via :class:`repro.SessionConfig`.

        Skips graph load, index build, and EBChk/QPlan for every
        canonical pattern form that was prepared before the save. Raises
        :class:`~repro.errors.ArtifactCorrupt`,
        :class:`~repro.errors.ArtifactVersionMismatch`, or
        :class:`~repro.errors.ArtifactStale` rather than ever serving
        from an untrustworthy snapshot. ``frozen=False`` thaws into a
        mutable session that supports :meth:`apply` (and pays a mutable
        index rebuild; the plan cache stays warm either way).

        A *sharded* artifact (``repro compile --shards N``) opens under
        ``strategy``: ``"scatter"`` is the scatter-gather session —
        ``workers=0`` holds every shard in this process, ``workers=N``
        spawns N worker processes that each warm-start their shards from
        the per-shard sub-artifacts (close the session, or use it as a
        context manager, to shut the pool down; ``mp_context`` overrides
        the multiprocessing start method). ``"sequential"`` merges the
        shards back into one frozen graph + index and serves them as an
        ordinary single-graph session — no scatter round-trips, and the
        (vectorized) plan executors apply. ``"auto"`` (default) picks
        ``"sequential"`` when ``workers=0`` — in-process scatter over
        shards only adds coordination overhead — and ``"scatter"`` when
        worker processes are requested. ``executor`` selects the plan
        executor for unsharded/merged serving (see :class:`QueryEngine`).

        ``backend="remote"`` + ``shard_addrs`` serves the scatter waves
        from a running ``repro shard-serve`` fleet instead of local
        shards (see :class:`~repro.engine.parallel.RemoteShardBackend`
        for the timeout/retry/owner-routing knobs forwarded here).
        """
        from repro.session import SessionConfig, connect
        return connect(path, config=SessionConfig(
            frozen=frozen, validate=validate, cache_size=cache_size,
            allow_stale=allow_stale, workers=workers, mp_context=mp_context,
            strategy=strategy, executor=executor, backend=backend,
            shard_addrs=shard_addrs, connect_timeout=connect_timeout,
            request_timeout=request_timeout, retries=retries,
            retry_backoff_s=retry_backoff_s, owner_routing=owner_routing))

    @classmethod
    def from_shards(cls, backend, schema, graph_summary, *,
                    plan_cache: PlanCache | None = None,
                    cache_size: int = 128) -> "QueryEngine":
        """Assemble a frozen scatter-gather session over a shard backend
        (see :mod:`repro.engine.parallel`).

        .. deprecated:: 1.1
            Thin shim over :func:`repro.connect` — prefer
            ``repro.connect((backend, schema, graph_summary), ...)``.
        """
        from repro.session import SessionConfig, connect
        return connect((backend, schema, graph_summary),
                       config=SessionConfig(plan_cache=plan_cache,
                                            cache_size=cache_size))

    @classmethod
    def _assemble_from_shards(cls, backend, schema, graph_summary, *,
                              plan_cache: PlanCache | None = None,
                              cache_size: int = 128,
                              scatter_pipeline: bool = True) -> "QueryEngine":
        """The real sharded-session assembly behind
        :func:`repro.connect`. The session holds no graph or
        index of its own — only the plan compiler, the caches, and the
        backend handle; :attr:`graph` is the partition's
        :class:`~repro.graph.partition.GraphSummary`."""
        engine = cls.__new__(cls)
        engine._catalog = schema if isinstance(schema, SchemaCatalog) \
            else SchemaCatalog(schema)
        engine.frozen = True
        engine.stats = AccessStats()
        engine._shards = backend
        engine.artifact_path = None
        engine._cache = plan_cache if plan_cache is not None \
            else PlanCache(cache_size)
        engine._prepared = PlanCache(cache_size)
        engine._stats_lock = threading.Lock()
        engine._generation = 0
        engine._graph = graph_summary
        engine._maintained = None
        engine._schema_index = None
        engine._executor = "sequential"  # unused: plans go through shards
        engine.scatter_pipeline = scatter_pipeline
        return engine

    def save(self, path, *, shards: int | None = None,
             shard_assignment: dict | None = None) -> dict:
        """Persist the session's compiled state (snapshot, indexes, plan
        cache) as an artifact directory; returns the manifest. A save
        from a mutable session freezes its current state, repairing any
        staleness at ``path``. ``shards=N`` writes the sharded layout
        instead (partition + per-shard sub-artifacts), which is what
        ``open_path(..., workers=N)`` serves from. ``shard_assignment``
        overrides the default node→shard cover (see
        :func:`repro.graph.partition.partition_graph`) — e.g. a
        label-partitioned cover that concentrates each label on few
        shards, which is what owner routing rewards."""
        from repro.engine import persist
        if self._shards is not None:
            raise EngineError(
                "a sharded session does not hold the full graph; "
                "re-compile from the source data (repro compile --shards) "
                "instead of re-saving")
        if shard_assignment is not None and not shards:
            raise EngineError("shard_assignment requires shards=N")
        if shards:
            manifest = persist.save_sharded_engine(
                self, path, shards, assignment=shard_assignment)
        else:
            manifest = persist.save_engine(self, path)
        self.artifact_path = Path(path)
        return manifest

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Release the shard backend (terminates worker processes for
        ``workers=N`` sessions). Idempotent; a no-op for ordinary
        sessions."""
        if self._shards is not None:
            self._shards.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- session state ---------------------------------------------------------
    @property
    def schema(self) -> AccessSchema:
        """The access schema being served — the catalog's current
        generation (one object, growing in place under extension)."""
        return self._catalog.current

    @property
    def catalog(self) -> SchemaCatalog:
        """The versioned schema lifecycle this session serves under."""
        return self._catalog

    @property
    def schema_version(self) -> int:
        """The catalog generation currently published."""
        return self._catalog.version

    @property
    def graph(self) -> GraphView:
        """The graph being served (the CSR snapshot when frozen)."""
        return self._graph

    @property
    def schema_index(self):
        """The session's :class:`~repro.constraints.index.SchemaIndex`."""
        if self._shards is not None:
            raise EngineError(
                "a sharded session holds its indexes in shards (possibly "
                "in worker processes); execution goes through the "
                "scatter-gather path, not a single schema index")
        return self._schema_index

    @property
    def sharded(self) -> bool:
        """True for scatter-gather sessions opened from sharded artifacts."""
        return self._shards is not None

    @property
    def executor_strategy(self) -> str:
        """The resolved plan-execution strategy: ``"scatter"`` for
        sharded sessions, else ``"vectorized"`` or ``"sequential"``."""
        if self._shards is not None:
            return "scatter"
        return self._executor

    @property
    def exec_workers(self) -> int:
        """Worker processes executing fetches (0 = in-process shards or
        an ordinary unsharded session)."""
        return self._shards.workers if self._shards is not None else 0

    @property
    def generation(self) -> int:
        """Bumped by :meth:`apply`; cached answers are per-generation."""
        return self._generation

    @property
    def plan_cache(self) -> PlanCache:
        return self._cache

    def cache_info(self) -> dict:
        """Plan-cache counters (hits/misses/evictions/size/maxsize)."""
        return self._cache.info()

    # -- compilation ---------------------------------------------------------------
    def prepare(self, pattern, semantics: str = SUBGRAPH, *,
                warm: bool = False) -> PreparedQuery:
        """Compile ``pattern`` once: EBChk + QPlan, cached by canonical
        pattern form + semantics.

        ``warm=True`` additionally pre-runs the plan through the
        vectorized kernels (see :meth:`PreparedQuery.warm`), moving the
        one-time cache-fill cost of a query shape into preparation so
        the first served execution is already steady-state.

        Raises :class:`~repro.errors.NotEffectivelyBounded` (also served
        from cache) when the query is not effectively bounded.
        """
        if semantics not in SEMANTICS:
            raise EngineError(f"unknown semantics {semantics!r}; "
                              f"expected one of {SEMANTICS}")
        key, order = pattern_fingerprint(pattern)
        cache_key = (key, semantics)
        with child_span("plan_cache_lookup") as lookup:
            entry = self._cache.get(
                cache_key, validate=lambda e: e.usable_by(self._catalog))
            if lookup is not None:
                lookup.set(hit=entry is not None)
        if entry is not None:
            with self._stats_lock:
                self.stats.record_cache_hit()
            prepared = self._from_entry(entry, cache_key, pattern, order,
                                        semantics)
            return prepared.warm() if warm else prepared
        with self._stats_lock:
            self.stats.record_cache_miss()
        # Snapshot the generation before compiling: a concurrent
        # extension that lands mid-compile leaves the verdict keyed to
        # the generation it was actually reached under.
        schema = self.schema
        version = self._catalog.version
        try:
            with child_span("compile"):
                plan = generate_plan(pattern, schema, semantics)
        except NotEffectivelyBounded as exc:
            self._cache.put(cache_key, _CacheEntry(
                order=order, schema=schema, version=version,
                schema_size=len(schema), error=exc))
            raise
        prepared = PreparedQuery(self, pattern, semantics, plan)
        self._cache.put(cache_key, _CacheEntry(
            order=order, schema=schema, version=version,
            schema_size=len(schema), plan=plan))
        self._prepared.put((cache_key, order), (plan, prepared))
        return prepared.warm() if warm else prepared

    def _from_entry(self, entry: _CacheEntry, cache_key, pattern,
                    order: tuple[int, ...], semantics: str) -> PreparedQuery:
        """Rebind a cached compilation to (a possibly renumbered copy of)
        the pattern it was compiled for."""
        mapping = dict(zip(entry.order, order))
        if entry.error is not None:
            # Always a fresh exception: re-raising the cached instance
            # would grow its traceback and share mutable state across
            # callers.
            raise NotEffectivelyBounded(
                str(entry.error),
                uncovered_nodes=[mapping.get(u, u)
                                 for u in entry.error.uncovered_nodes],
                uncovered_edges=[(mapping.get(u, u), mapping.get(v, v))
                                 for u, v in entry.error.uncovered_edges])
        # Session-local memo, keyed by the incoming numbering too: a
        # renumbered resubmission reuses its own PreparedQuery (and its
        # answer memo) just like an identical one. The source plan is
        # stored alongside to detect staleness after a cache overwrite.
        memoized = self._prepared.get((cache_key, order))
        if memoized is not None and memoized[0] is entry.plan:
            return memoized[1]
        identity = all(old == new for old, new in mapping.items())
        plan = entry.plan if identity \
            else _remap_plan(entry.plan, mapping, pattern)
        prepared = PreparedQuery(self, pattern, semantics, plan)
        self._prepared.put((cache_key, order), (entry.plan, prepared))
        return prepared

    # -- evaluation -------------------------------------------------------------------
    def query(self, pattern, semantics: str = SUBGRAPH, *,
              stats: AccessStats | None = None,
              refresh: bool = False) -> BoundedRun:
        """Prepare + execute + match in one call."""
        return self.prepare(pattern, semantics).run(stats=stats,
                                                    refresh=refresh)

    def query_batch(self, patterns: Iterable, semantics: str = SUBGRAPH, *,
                    stats: AccessStats | None = None) -> list[BoundedRun]:
        """Serve a workload in one go, amortizing compilation *and*
        execution: each distinct (canonical pattern, semantics) in the
        batch is planned at most once and executed at most once.

        ``patterns`` items are :class:`~repro.pattern.pattern.Pattern`
        objects or ``(pattern, semantics)`` pairs overriding the default
        semantics. Results line up with the input order.

        On a sharded session the whole batch executes in shared
        scatter-gather waves: one worker round-trip carries every
        distinct query's outstanding fetches, which is where the
        worker-pool parallelism pays off.
        """
        requests: list[tuple[object, str]] = []
        for item in patterns:
            if isinstance(item, tuple):
                pattern, item_semantics = item
                requests.append((pattern, item_semantics))
            else:
                requests.append((item, semantics))
        prepared_list = [self.prepare(pattern, item_semantics)
                         for pattern, item_semantics in requests]
        if self._shards is not None:
            return self._query_batch_scatter(prepared_list, stats)
        results: list[BoundedRun] = []
        batch_runs: dict[int, BoundedRun] = {}
        for prepared in prepared_list:
            run_key = id(prepared.plan)
            run = batch_runs.get(run_key)
            if run is None:
                run = prepared.run(stats=stats)
                batch_runs[run_key] = run
            results.append(run)
        return results

    def _query_batch_scatter(self, prepared_list: list[PreparedQuery],
                             stats: AccessStats | None) -> list[BoundedRun]:
        """Batch execution on a sharded session: every distinct query
        that cannot be served from its answer memo executes in one
        shared wave-driven scatter call."""
        unique: dict[int, PreparedQuery] = {}
        for prepared in prepared_list:
            unique.setdefault(id(prepared.plan), prepared)
        runs: dict[int, BoundedRun] = {}
        to_execute: list[tuple[int, PreparedQuery]] = []
        for run_key, prepared in unique.items():
            if (stats is None and prepared._run is not None
                    and prepared._run_generation == self.generation):
                runs[run_key] = prepared._run
            else:
                to_execute.append((run_key, prepared))
        if to_execute:
            stats_list = [AccessStats() for _ in to_execute]
            with child_span("execute", strategy="scatter",
                            plans=len(to_execute)):
                executions = execute_plans_scatter(
                    [prepared.plan for _, prepared in to_execute],
                    self._shards, stats_list=stats_list,
                    pipeline=self.scatter_pipeline)
            for (run_key, prepared), execution, run_stats in zip(
                    to_execute, executions, stats_list):
                runs[run_key] = prepared._finish_run(execution)
                self._account(run_stats, stats)
        return [runs[id(prepared.plan)] for prepared in prepared_list]

    # -- updates --------------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> MaintenanceReport:
        """Apply ΔG through the incremental-maintenance path.

        Only mutable sessions support updates. Indexes are repaired
        locally (inspecting ``ΔG ∪ Nb(ΔG)`` only) and the generation
        counter is bumped, invalidating every cached *answer*. Cached
        *plans* remain valid: they depend on ``Q`` and ``A``, not on the
        graph.
        """
        if self._maintained is None:
            raise EngineError(
                "cannot apply updates to a frozen engine session; open "
                "with frozen=False for incremental maintenance")
        if self.artifact_path is not None:
            # Mark before mutating: even a half-applied delta means the
            # on-disk snapshot no longer answers for this session. A
            # later save() re-compiles the artifact and clears the mark.
            from repro.engine import persist
            persist.mark_stale(self.artifact_path,
                               f"graph delta applied at generation "
                               f"{self._generation + 1}")
        report = self._maintained.apply(delta)
        self._generation += 1
        return report

    # -- schema extension ------------------------------------------------------
    def extend_schema(self, constraints: Iterable[AccessConstraint], *,
                      provenance: dict | None = None):
        """Grow the access schema online with an M-bounded extension.

        Builds constraint indexes for the *added* constraints only —
        never a rebuild of existing ones — and publishes them with the
        hot-reload discipline: indexes go live first (per shard, over
        owned targets, on sharded sessions), then the catalog appends
        the constraints and bumps its generation, which is the moment
        cached negative EBChk verdicts stop matching. Answers of
        already-bounded queries are untouched: their plans, their
        memoized answers and their access accounting never change
        (property-tested). Returns an
        :class:`~repro.engine.extension.ExtensionReport`.

        A frozen session stays safely readable throughout — concurrent
        ``prepare``/``query`` calls observe either the old generation or
        the new one. The on-disk artifact (if any) is *not* touched: it
        remains a valid, older-generation snapshot; use ``repro extend``
        (or re-save) to persist the extension.
        """
        import time as _time

        from repro.engine.extension import ExtensionReport

        start = _time.perf_counter()
        added: list[AccessConstraint] = []
        pending: set[AccessConstraint] = set()
        for constraint in constraints:
            if not isinstance(constraint, AccessConstraint):
                raise EngineError(
                    f"extend_schema expects AccessConstraint objects, "
                    f"got {constraint!r}")
            if constraint not in self.schema and constraint not in pending:
                added.append(constraint)
                pending.add(constraint)
        if not added:
            return ExtensionReport(
                version=self._catalog.version, added=(), built=0,
                added_cells=0, build_seconds=0.0, per_shard=None)

        per_shard = None
        cells = 0
        if self._shards is not None:
            # Shard-local builds over owned targets only: the disjoint
            # union of the new per-shard entries equals the global index
            # entry, exactly as for the base constraints (see
            # repro.graph.partition).
            per_shard = self._shards.extend(added)
            cells = sum(info["cells"] for info in per_shard)
        elif self.frozen:
            for constraint in added:
                index = FrozenConstraintIndex(constraint, self._graph)
                self._schema_index.adopt_index(constraint, index)
                cells += index.size
        else:
            for constraint in added:
                index = ConstraintIndex(constraint, self._graph,
                                        track_members=True)
                self._schema_index.adopt_index(constraint, index)
                cells += index.size
        # Publish last: only now can a reader compile against the new
        # constraints — whose indexes are already live everywhere.
        generation = self._catalog.extend(added, provenance=provenance)
        return ExtensionReport(
            version=generation.version, added=tuple(added), built=len(added),
            added_cells=cells,
            build_seconds=_time.perf_counter() - start,
            per_shard=per_shard)

    # -- internals ----------------------------------------------------------------
    def _execute_plans(self, plans: list[QueryPlan],
                       stats_list: list[AccessStats],
                       edge_mode: str = MODE_PLAN) -> list[ExecutionResult]:
        """Execute compiled plans through this session's strategy:
        sequentially against the schema index, or scatter-gather over the
        shard backend. Answers and accounting are identical either way
        (see :mod:`repro.core.executor`)."""
        if self._shards is not None:
            with child_span("execute", strategy="scatter",
                            plans=len(plans)):
                return execute_plans_scatter(plans, self._shards,
                                             stats_list=stats_list,
                                             edge_mode=edge_mode,
                                             pipeline=self.scatter_pipeline)
        if self._executor == "vectorized":
            from repro.core.kernels import execute_plan_vectorized
            with child_span("execute", strategy="vectorized",
                            plans=len(plans)):
                return [execute_plan_vectorized(plan, self._schema_index,
                                                stats=stats,
                                                edge_mode=edge_mode)
                        for plan, stats in zip(plans, stats_list)]
        with child_span("execute", strategy="sequential", plans=len(plans)):
            return [execute_plan(plan, self._schema_index, stats=stats,
                                 edge_mode=edge_mode)
                    for plan, stats in zip(plans, stats_list)]

    def _account(self, run_stats: AccessStats,
                 caller_stats: AccessStats | None) -> None:
        """Fold one execution's accounting into the session totals and,
        when given, the caller's recorder. The session merge is locked:
        concurrent worker threads must not lose counts."""
        with self._stats_lock:
            self.stats.merge(run_stats)
        if caller_stats is not None and caller_stats is not self.stats:
            caller_stats.merge(run_stats)

    def __repr__(self) -> str:
        kind = "frozen" if self.frozen else "mutable"
        if self._shards is not None:
            kind = f"sharded x{self._shards.num_shards}, " \
                   f"workers={self._shards.workers}"
        return (f"QueryEngine({kind}, graph={self._graph!r}, "
                f"constraints={len(self.schema)}, cache={self._cache!r})")


def _remap_plan(plan: QueryPlan, mapping: dict[int, int],
                pattern) -> QueryPlan:
    """Translate a cached plan onto an isomorphic, renumbered pattern.

    ``mapping`` sends node ids of the plan's pattern to ids of ``pattern``
    (derived from the two canonical orders, so it is an isomorphism); plan
    validity is preserved because plans depend only on pattern structure
    and the schema.
    """
    remapped = QueryPlan(pattern=pattern, schema=plan.schema,
                         semantics=plan.semantics)
    for op in plan.ops:
        target = mapping[op.target]
        remapped.ops.append(FetchOp(
            target=target,
            source_nodes=tuple(mapping[v] for v in op.source_nodes),
            constraint=op.constraint,
            predicate=pattern.predicate_of(target),
            fetch_bound=op.fetch_bound,
            size_bound=op.size_bound))
    for check in plan.edge_checks:
        remapped.edge_checks.append(EdgeCheck(
            edge=(mapping[check.edge[0]], mapping[check.edge[1]]),
            mode=check.mode,
            fetch_target=(None if check.fetch_target is None
                          else mapping[check.fetch_target]),
            source_nodes=tuple(mapping[v] for v in check.source_nodes),
            constraint=check.constraint,
            cost_bound=check.cost_bound))
    return remapped
