"""Persistent compiled artifacts: on-disk engine snapshots.

The paper's economics are pay-once (access schema, indexes, compiled
plans), serve-many. PR 1 amortized those costs in-process; this module
makes the compiled state a durable artifact so every **process** after
the first skips graph load, index build, and EBChk/QPlan for previously
prepared canonical forms:

.. code-block:: text

    engine = QueryEngine.open(graph, schema)   # cold: build everything
    engine.prepare(q)                          # compile plans
    engine.save("artifact/")                   # persist the compiled state
    ...
    engine = QueryEngine.open_path("artifact/")  # warm: ~10-40x faster

Artifact layout (one directory)::

    manifest.json     format version, byte order, graph stats, access
                      schema, per-constraint index metadata, file
                      checksums (the root of trust)
    graph.bin         FrozenGraph CSR buffers (binary container)
    graph.meta.json   label table + sparse node-value map
    index.bin         per-constraint FrozenConstraintIndex buffers
    plans.json        plan-cache contents (compiled plans + cached
                      negative EBChk verdicts, keyed by canonical form)
    STALE             marker written by ``QueryEngine.apply`` when the
                      served graph diverges from the snapshot

A *sharded* artifact (``repro compile --shards N``; see
:func:`save_sharded_engine` and DESIGN.md "Sharded execution") nests one
such directory per shard under a top-level manifest that also checksums
every shard manifest, ``plans.json`` and ``partition.bin`` — corruption
anywhere in the tree is detected at open.

The binary container is struct/array-based — a magic header followed by
named int64 sections, 8-byte aligned so loading can hand out zero-copy
``memoryview`` slices over one bytes object. No pickle anywhere. Every
payload file is SHA-256 checksummed in the manifest; corruption raises
:class:`~repro.errors.ArtifactCorrupt`, a format bump raises
:class:`~repro.errors.ArtifactVersionMismatch`, and a stale marker
raises :class:`~repro.errors.ArtifactStale` (all loud, never a wrong
answer). ``plans.json`` uses the :mod:`json` module's infinity literals
for unbounded cost bounds, so it is JSON + ``Infinity``.

Versioning: ``FORMAT_VERSION`` covers everything an artifact's meaning
depends on, including the canonical-fingerprint algorithm of
:mod:`repro.engine.cache` — bump it whenever buffers, JSON schemas, or
fingerprinting change incompatibly.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
from array import array
from pathlib import Path
from typing import Sequence

from repro.constraints.index import (
    ConstraintIndex,
    FrozenConstraintIndex,
    SchemaIndex,
)
from repro.constraints.schema import AccessSchema
from repro.core.plan import EdgeCheck, FetchOp, QueryPlan
from repro.errors import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactStale,
    ArtifactVersionMismatch,
    EngineError,
    NotEffectivelyBounded,
)
from repro.graph.frozen import FrozenGraph
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import Atom, Predicate

#: Bump on any incompatible change to buffers, JSON layouts, or the
#: canonical pattern fingerprint. Version 2 added the sharded layout
#: (``layout: "sharded"`` manifests referencing per-shard sub-artifacts
#: plus ``partition.bin``); single-directory artifacts are bumped with it
#: so one number describes the whole artifact family. Version 3 added
#: the schema catalog (``catalog.json``: generation history + extension
#: provenance, checksummed like every payload).
FORMAT_VERSION = 3

#: Versions this library still *opens*. Version-2 artifacts predate the
#: schema catalog; they open **read-only** (frozen sessions) with a
#: synthesized generation-0 catalog — thawing (``frozen=False``) or
#: extending them on disk requires a re-compile to version 3, so the
#: catalog history is never silently invented for a mutable lineage.
SUPPORTED_READ_VERSIONS = (2, FORMAT_VERSION)

FORMAT_NAME = "repro-engine-artifact"

MANIFEST_FILE = "manifest.json"
GRAPH_FILE = "graph.bin"
GRAPH_META_FILE = "graph.meta.json"
INDEX_FILE = "index.bin"
PLANS_FILE = "plans.json"
CATALOG_FILE = "catalog.json"
STALE_FILE = "STALE"
PARTITION_FILE = "partition.bin"

#: Files whose checksums a single-layout manifest records (everything
#: but itself and the stale marker).
PAYLOAD_FILES = (GRAPH_FILE, GRAPH_META_FILE, INDEX_FILE, PLANS_FILE,
                 CATALOG_FILE)

#: Top-level payload files of a sharded-layout artifact; each shard
#: directory is additionally a complete single-layout artifact.
SHARDED_PAYLOAD_FILES = (PLANS_FILE, PARTITION_FILE, CATALOG_FILE)

#: The payload sets of version-2 artifacts (no catalog file).
_V2_PAYLOAD_FILES = (GRAPH_FILE, GRAPH_META_FILE, INDEX_FILE, PLANS_FILE)
_V2_SHARDED_PAYLOAD_FILES = (PLANS_FILE, PARTITION_FILE)


def _expected_payloads(manifest: dict) -> tuple:
    """The payload-file set a manifest's version and layout promise."""
    sharded = manifest.get("layout") == "sharded"
    if manifest.get("format_version") == FORMAT_VERSION:
        return SHARDED_PAYLOAD_FILES if sharded else PAYLOAD_FILES
    return _V2_SHARDED_PAYLOAD_FILES if sharded else _V2_PAYLOAD_FILES


def shard_dir_name(shard_id: int) -> str:
    """Directory name of one shard inside a sharded artifact."""
    return f"shard-{shard_id:04d}"

_BIN_MAGIC = b"RPROBIN1"
_ITEM = 8  # int64 buffers only


# --------------------------------------------------------------- binary container
def _buffer_bytes(buf) -> bytes:
    """Raw bytes of an int64 buffer (array('q') or memoryview)."""
    if isinstance(buf, array):
        return buf.tobytes()
    return bytes(buf)


def pack_buffers(buffers: dict) -> bytes:
    """Serialize named int64 buffers into one binary blob.

    Layout: magic, ``<I`` buffer count, then per buffer ``<H`` name
    length, UTF-8 name, ``<Q`` payload byte length, zero padding to an
    8-byte boundary, payload. Multi-byte header fields are little-endian;
    payloads are native-endian (recorded in the manifest and swapped on
    load when needed).
    """
    out = bytearray(_BIN_MAGIC)
    out += struct.pack("<I", len(buffers))
    for name, buf in buffers.items():
        raw = _buffer_bytes(buf)
        encoded = name.encode("utf-8")
        out += struct.pack("<H", len(encoded))
        out += encoded
        out += struct.pack("<Q", len(raw))
        out += b"\x00" * (-len(out) % _ITEM)
        out += raw
    return bytes(out)


def unpack_buffers(data: bytes, *, byteswap: bool = False,
                   source: str = "buffer file") -> dict:
    """Parse :func:`pack_buffers` output into named int64 sequences.

    Returns zero-copy ``memoryview`` slices cast to ``'q'`` (or
    materialized, byte-swapped ``array('q')`` objects when the artifact
    was written on a machine of the other endianness).
    """
    view = memoryview(data)
    try:
        if bytes(view[:len(_BIN_MAGIC)]) != _BIN_MAGIC:
            raise ArtifactCorrupt(f"{source}: bad magic header")
        offset = len(_BIN_MAGIC)
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        buffers = {}
        for _ in range(count):
            (name_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            name = bytes(view[offset:offset + name_len]).decode("utf-8")
            offset += name_len
            (payload_len,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            offset += -offset % _ITEM
            if payload_len % _ITEM or offset + payload_len > len(data):
                raise ArtifactCorrupt(
                    f"{source}: buffer {name!r} is truncated or misaligned")
            section = view[offset:offset + payload_len].cast("q")
            offset += payload_len
            if byteswap:
                swapped = array("q")
                swapped.frombytes(bytes(section))
                swapped.byteswap()
                buffers[name] = swapped
            else:
                buffers[name] = section
        return buffers
    except struct.error as exc:
        raise ArtifactCorrupt(f"{source}: truncated header ({exc})") from exc


# ------------------------------------------------------------------ plan encoding
def _encode_pattern(pattern: Pattern) -> dict:
    return {
        "name": pattern.name,
        "nodes": [[node, pattern.label_of(node),
                   [[atom.op, atom.constant]
                    for atom in pattern.predicate_of(node).atoms]]
                  for node in sorted(pattern.nodes())],
        "edges": [[u, v] for u, v in pattern.edges()],
    }


def _decode_pattern(doc: dict) -> Pattern:
    pattern = Pattern(name=doc.get("name", ""))
    for node, label, atoms in doc["nodes"]:
        predicate = Predicate(tuple(Atom(op, constant)
                                    for op, constant in atoms))
        pattern.add_node(label, predicate=predicate, node_id=int(node))
    for u, v in doc["edges"]:
        pattern.add_edge(int(u), int(v))
    return pattern


def _encode_plan(plan: QueryPlan, constraint_pos: dict) -> dict:
    return {
        "pattern": _encode_pattern(plan.pattern),
        "semantics": plan.semantics,
        "ops": [{"target": op.target,
                 "source_nodes": list(op.source_nodes),
                 "constraint": constraint_pos[op.constraint],
                 "fetch_bound": op.fetch_bound,
                 "size_bound": op.size_bound} for op in plan.ops],
        "edge_checks": [{"edge": list(check.edge),
                         "mode": check.mode,
                         "fetch_target": check.fetch_target,
                         "source_nodes": list(check.source_nodes),
                         "constraint": (None if check.constraint is None
                                        else constraint_pos[check.constraint]),
                         "cost_bound": check.cost_bound}
                        for check in plan.edge_checks],
    }


def _decode_plan(doc: dict, schema: AccessSchema, constraints: list) -> QueryPlan:
    pattern = _decode_pattern(doc["pattern"])
    plan = QueryPlan(pattern=pattern, schema=schema,
                     semantics=doc["semantics"])
    for op in doc["ops"]:
        target = int(op["target"])
        plan.ops.append(FetchOp(
            target=target,
            source_nodes=tuple(int(v) for v in op["source_nodes"]),
            constraint=constraints[op["constraint"]],
            predicate=pattern.predicate_of(target),
            fetch_bound=float(op["fetch_bound"]),
            size_bound=float(op["size_bound"])))
    for check in doc["edge_checks"]:
        constraint = check["constraint"]
        plan.edge_checks.append(EdgeCheck(
            edge=(int(check["edge"][0]), int(check["edge"][1])),
            mode=check["mode"],
            fetch_target=(None if check["fetch_target"] is None
                          else int(check["fetch_target"])),
            source_nodes=tuple(int(v) for v in check["source_nodes"]),
            constraint=None if constraint is None else constraints[constraint],
            cost_bound=float(check["cost_bound"])))
    return plan


def _freeze(obj):
    """Recursively turn JSON lists back into the hashable tuples the
    plan-cache keys are made of."""
    if isinstance(obj, list):
        return tuple(_freeze(item) for item in obj)
    return obj


def _encode_plan_entries(engine) -> list[dict]:
    constraint_pos = {c: i for i, c in enumerate(engine.schema)}
    entries = []
    for cache_key, entry in engine.plan_cache.items():
        if not entry.usable_by(engine.catalog):
            continue  # foreign-schema or stale-negative entry in a shared cache
        key, semantics = cache_key
        doc = {"key": key, "semantics": semantics,
               "order": list(entry.order), "version": entry.version,
               "schema_size": entry.schema_size}
        if entry.error is not None:
            doc["error"] = {
                "message": str(entry.error),
                "uncovered_nodes": list(entry.error.uncovered_nodes),
                "uncovered_edges": [list(edge)
                                    for edge in entry.error.uncovered_edges]}
        else:
            doc["plan"] = _encode_plan(entry.plan, constraint_pos)
        entries.append(doc)
    return entries


def _decode_plan_entries(payload: dict, schema: AccessSchema):
    from repro.engine.engine import _CacheEntry

    constraints = list(schema)
    for doc in payload.get("entries", ()):
        cache_key = (_freeze(doc["key"]), doc["semantics"])
        order = tuple(int(v) for v in doc["order"])
        if "error" in doc:
            error_doc = doc["error"]
            error = NotEffectivelyBounded(
                error_doc["message"],
                uncovered_nodes=[int(v)
                                 for v in error_doc["uncovered_nodes"]],
                uncovered_edges=[(int(u), int(v))
                                 for u, v in error_doc["uncovered_edges"]])
            entry = _CacheEntry(order=order, schema=schema,
                                version=int(doc.get("version", 0)),
                                schema_size=int(doc["schema_size"]),
                                error=error)
        else:
            plan = _decode_plan(doc["plan"], schema, constraints)
            entry = _CacheEntry(order=order, schema=schema,
                                version=int(doc.get("version", 0)),
                                schema_size=int(doc["schema_size"]),
                                plan=plan)
        yield cache_key, entry


# ------------------------------------------------------------------------- saving
def save_engine(engine, path) -> dict:
    """Write ``engine``'s compiled state to the artifact directory
    ``path`` (created if needed, overwritten if present) and return the
    manifest. Clears any stale marker: a fresh save *is* the repair.
    """
    from repro import __version__  # late: repro/__init__ defines it last

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    graph = engine.graph
    if not isinstance(graph, FrozenGraph):
        graph = FrozenGraph.from_graph(graph)
    graph_buffers, graph_meta = graph.to_buffers()

    index_buffers: dict = {}
    index_meta = []
    for i, constraint in enumerate(engine.schema):
        index = engine.schema_index.index_for(constraint)
        if isinstance(index, ConstraintIndex):
            index = index.freeze()
        for name, buf in index.to_buffers().items():
            index_buffers[f"c{i}.{name}"] = buf
        index_meta.append({"constraint": constraint.to_dict(),
                           "num_keys": index.num_keys,
                           "size": index.size,
                           "max_entry": index.max_entry})

    plan_entries = _encode_plan_entries(engine)

    contents = {
        GRAPH_FILE: pack_buffers(graph_buffers),
        GRAPH_META_FILE: json.dumps(graph_meta).encode("utf-8"),
        INDEX_FILE: pack_buffers(index_buffers),
        PLANS_FILE: json.dumps({"entries": plan_entries}).encode("utf-8"),
        CATALOG_FILE: json.dumps(engine.catalog.to_dict()).encode("utf-8"),
    }
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "layout": "single",
        "library_version": __version__,
        "byteorder": sys.byteorder,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges,
                  "labels": len(graph.labels())},
        "schema": engine.schema.to_dict(),
        "schema_version": engine.catalog.version,
        "index": index_meta,
        "plans": {"entries": len(plan_entries)},
        "files": {name: {"sha256": hashlib.sha256(data).hexdigest(),
                         "bytes": len(data)}
                  for name, data in contents.items()},
    }
    for name, data in contents.items():
        (path / name).write_bytes(data)
    # Manifest last: a crash mid-save leaves a manifest that does not
    # match its payloads, which load_engine reports as corruption.
    (path / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2) + "\n",
                                      encoding="utf-8")
    (path / STALE_FILE).unlink(missing_ok=True)
    return manifest


# ------------------------------------------------------------------------ loading
def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.is_file():
        raise ArtifactCorrupt(f"no artifact manifest at {manifest_path}",
                              path=str(path))
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ArtifactCorrupt(f"unreadable artifact manifest: {exc}",
                              path=str(manifest_path)) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise ArtifactCorrupt(
            f"{manifest_path} is not a {FORMAT_NAME} manifest",
            path=str(manifest_path))
    found = manifest.get("format_version")
    if found not in SUPPORTED_READ_VERSIONS:
        raise ArtifactVersionMismatch(
            f"artifact at {path} has format version {found!r}; this library "
            f"reads versions {SUPPORTED_READ_VERSIONS} — re-compile the "
            f"artifact",
            found=found, supported=FORMAT_VERSION)
    return manifest


def _read_payloads(path: Path, manifest: dict,
                   expected: tuple | None = None) -> dict:
    if expected is None:
        expected = _expected_payloads(manifest)
    files = manifest.get("files")
    if not isinstance(files, dict) or set(files) != set(expected):
        raise ArtifactCorrupt(
            f"artifact manifest at {path} lists unexpected files",
            path=str(path))
    payloads = {}
    for name, meta in files.items():
        file_path = path / name
        try:
            data = file_path.read_bytes()
        except OSError as exc:
            raise ArtifactCorrupt(f"missing artifact file {file_path}: {exc}",
                                  path=str(file_path)) from exc
        if len(data) != meta.get("bytes"):
            raise ArtifactCorrupt(
                f"{file_path}: size {len(data)} != recorded {meta.get('bytes')}",
                path=str(file_path))
        digest = hashlib.sha256(data).hexdigest()
        if digest != meta.get("sha256"):
            raise ArtifactCorrupt(
                f"{file_path}: checksum mismatch (artifact is corrupt or "
                f"was modified; re-compile it)", path=str(file_path))
        payloads[name] = data
    return payloads


def stale_info(path) -> dict | None:
    """The stale-marker contents, or None when the artifact is fresh."""
    marker = Path(path) / STALE_FILE
    if not marker.is_file():
        return None
    try:
        info = json.loads(marker.read_text(encoding="utf-8"))
        return info if isinstance(info, dict) else {"reason": str(info)}
    except (OSError, ValueError):
        return {"reason": "unreadable stale marker"}


def mark_stale(path, reason: str) -> None:
    """Mark the artifact at ``path`` stale (idempotent; no-op when the
    directory is gone). ``QueryEngine.apply`` calls this the moment the
    served graph diverges from the on-disk snapshot."""
    directory = Path(path)
    if not directory.is_dir():
        return
    (directory / STALE_FILE).write_text(
        json.dumps({"reason": reason}) + "\n", encoding="utf-8")


def _decode_catalog(path: Path, manifest: dict,
                    schema: AccessSchema, payload: bytes | None):
    """Rehydrate the schema catalog of a v3 artifact, or synthesize a
    generation-0 catalog for a v2 one (``payload=None``)."""
    from repro.constraints.catalog import SchemaCatalog
    from repro.errors import SchemaError

    if payload is None:
        return SchemaCatalog(schema, provenance={"origin": "v2-artifact"})
    try:
        return SchemaCatalog.from_dict(json.loads(payload), schema)
    except (ValueError, SchemaError) as exc:
        raise ArtifactCorrupt(
            f"malformed schema catalog in {path / CATALOG_FILE}: {exc}",
            path=str(path / CATALOG_FILE)) from exc


def _load_frozen_parts(path: Path, manifest: dict):
    """``(catalog, graph, indexes, plans_payload)`` from a single-layout
    artifact directory whose manifest has already been read."""
    payloads = _read_payloads(path, manifest)
    byteswap = manifest.get("byteorder") != sys.byteorder
    try:
        schema = AccessSchema.from_dict(manifest["schema"])
        graph_meta = json.loads(payloads[GRAPH_META_FILE])
        plans_payload = json.loads(payloads[PLANS_FILE])
    except (KeyError, ValueError) as exc:
        raise ArtifactCorrupt(f"malformed artifact JSON at {path}: {exc}",
                              path=str(path)) from exc
    catalog = _decode_catalog(path, manifest, schema,
                              payloads.get(CATALOG_FILE))

    graph_buffers = unpack_buffers(payloads[GRAPH_FILE], byteswap=byteswap,
                                   source=GRAPH_FILE)
    graph = FrozenGraph.from_buffers(graph_buffers, graph_meta)

    index_buffers = unpack_buffers(payloads[INDEX_FILE], byteswap=byteswap,
                                   source=INDEX_FILE)
    per_constraint: dict[str, dict] = {}
    for name, buf in index_buffers.items():
        prefix, _, field = name.partition(".")
        per_constraint.setdefault(prefix, {})[field] = buf
    indexes = {}
    for i, constraint in enumerate(schema):
        indexes[constraint] = FrozenConstraintIndex.from_buffers(
            constraint, per_constraint.get(f"c{i}", {}))
    return catalog, graph, indexes, plans_payload


def _decode_plan_cache(path: Path, plans_payload: dict, schema,
                       cache_size: int):
    """Rehydrate a plan cache, never letting LRU capacity silently evict
    persisted plans on load — that would quietly re-pay EBChk/QPlan on
    the "warm" path."""
    from repro.engine.cache import PlanCache

    try:
        plan_entries = list(_decode_plan_entries(plans_payload, schema))
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorrupt(
            f"malformed plan entry in {path / PLANS_FILE}: {exc}",
            path=str(path / PLANS_FILE)) from exc
    plan_cache = PlanCache(max(cache_size, len(plan_entries), 1))
    for cache_key, entry in plan_entries:
        plan_cache.put(cache_key, entry)
    return plan_cache


def artifact_layout(path) -> str:
    """``"single"`` or ``"sharded"`` for the artifact at ``path``.

    Reads (and version-checks) the manifest only — used by callers that
    must pick open parameters by layout, e.g. the server's hot reload.
    """
    return _read_manifest(Path(path)).get("layout", "single")


#: Serving strategies for sharded artifacts (see :func:`load_engine`).
STRATEGIES = ("auto", "sequential", "scatter")

#: Shard backends for scatter serving (see :func:`load_engine`).
BACKENDS = ("auto", "inline", "process", "remote")


def load_engine(path, *, frozen: bool = True, validate: bool = False,
                cache_size: int = 128, allow_stale: bool = False,
                workers: int = 0, mp_context=None, strategy: str = "auto",
                executor: str = "auto", backend: str = "auto",
                shard_addrs: Sequence[str] = (),
                connect_timeout: float = 5.0,
                request_timeout: float = 30.0,
                retries: int = 2, retry_backoff_s: float = 0.1,
                owner_routing: bool = True, wire_format: str = "auto",
                scatter_pipeline: bool = True):
    """Open a :class:`~repro.engine.engine.QueryEngine` from an artifact.

    The frozen path (default) is the warm start: CSR buffers are adopted
    zero-copy, constraint indexes decode lazily, and the plan cache is
    rehydrated so previously prepared canonical forms skip EBChk/QPlan.
    ``frozen=False`` thaws the graph into a mutable session (paying a
    mutable index rebuild) with the plan cache still warm — the only
    loaded flavour that supports ``apply``.

    A *sharded* artifact (``repro compile --shards N``) opens under
    ``strategy``:

    * ``"scatter"`` — the scatter-gather session: ``workers=0`` holds
      every shard in-process, ``workers=N`` spawns N worker processes
      that each warm-start their shards from the per-shard sub-artifacts
      (see :mod:`repro.engine.parallel`).
    * ``"sequential"`` — merge the shards back into one frozen graph +
      schema index (:func:`repro.graph.partition.merge_shard_runtimes`)
      and serve an ordinary single-graph session; the (vectorized) plan
      executors apply. Incompatible with ``workers``.
    * ``"auto"`` (default) — ``"sequential"`` when ``workers=0`` (an
      in-process scatter over shards only adds coordination overhead on
      one CPU) and ``"scatter"`` when worker processes are requested.

    ``backend`` picks *where* the shards of a scatter session live:
    ``"inline"`` (this process), ``"process"`` (the worker pool —
    implied by ``workers=N``), or ``"remote"`` — a fleet of ``repro
    shard-serve`` processes reached through ``shard_addrs`` (one
    ``host:port`` per shard, any order), with ``connect_timeout`` /
    ``request_timeout`` / ``retries`` / ``retry_backoff_s`` governing
    the connection robustness (see
    :class:`~repro.engine.parallel.RemoteShardBackend`). ``"auto"``
    (default) infers ``remote`` when ``shard_addrs`` is non-empty and
    ``process`` when ``workers`` is. ``owner_routing=False`` disables
    owner-filtered scatter (broadcast every task — the reference mode).
    ``wire_format`` picks the remote codecs offered at the handshake
    (``auto``/``json``/``binary``; see
    :class:`~repro.engine.parallel.RemoteShardBackend`).

    ``executor`` picks the plan executor for unsharded or merged serving
    (see :class:`~repro.engine.engine.QueryEngine`). ``workers`` and
    ``strategy="scatter"`` are rejected for single-layout artifacts
    rather than silently ignored.
    """
    from repro.engine.engine import QueryEngine

    if strategy not in STRATEGIES:
        raise EngineError(f"unknown strategy {strategy!r}; expected one "
                          f"of {STRATEGIES}")
    if backend not in BACKENDS:
        raise EngineError(f"unknown backend {backend!r}; expected one "
                          f"of {BACKENDS}")
    if backend == "auto":
        backend = "remote" if shard_addrs else \
            ("process" if workers else "inline")
    if backend == "remote" and not shard_addrs:
        raise EngineError("backend='remote' needs shard_addrs "
                          "(one host:port per shard)")
    if backend != "remote" and shard_addrs:
        raise EngineError(f"shard_addrs only applies to backend='remote', "
                          f"not {backend!r}")
    if backend == "remote" and workers:
        raise EngineError("backend='remote' serves from standalone shard "
                          "servers; it is incompatible with workers")
    if backend == "process" and not workers:
        raise EngineError("backend='process' needs workers >= 1")
    path = Path(path)
    manifest = _read_manifest(path)
    if manifest.get("layout") == "sharded":
        return _load_sharded_engine(path, manifest, validate=validate,
                                    cache_size=cache_size, workers=workers,
                                    mp_context=mp_context, frozen=frozen,
                                    allow_stale=allow_stale,
                                    strategy=strategy, executor=executor,
                                    backend=backend,
                                    shard_addrs=shard_addrs,
                                    connect_timeout=connect_timeout,
                                    request_timeout=request_timeout,
                                    retries=retries,
                                    retry_backoff_s=retry_backoff_s,
                                    owner_routing=owner_routing,
                                    wire_format=wire_format,
                                    scatter_pipeline=scatter_pipeline)
    if workers:
        raise EngineError(
            f"artifact at {path} is not sharded; open it without workers, "
            f"or re-compile with `repro compile --shards N`")
    if backend == "remote":
        raise EngineError(
            f"artifact at {path} is not sharded; backend='remote' needs "
            f"a sharded artifact (repro compile --shards N)")
    if strategy == "scatter":
        raise EngineError(
            f"artifact at {path} is not sharded; strategy='scatter' needs "
            f"a sharded artifact (repro compile --shards N)")
    stale = stale_info(path)
    if stale is not None and not allow_stale:
        raise ArtifactStale(
            f"artifact at {path} is stale ({stale.get('reason', 'unknown')}); "
            f"re-compile it or pass allow_stale=True",
            reason=stale.get("reason"))
    if not frozen and manifest.get("format_version") != FORMAT_VERSION:
        # The 2 -> 3 migration path: old artifacts stay servable on the
        # read path, but a mutable lineage needs a real catalog history,
        # which only a re-compile can establish.
        raise ArtifactVersionMismatch(
            f"artifact at {path} has format version "
            f"{manifest.get('format_version')} and opens read-only "
            f"(frozen); re-compile it to version {FORMAT_VERSION} for a "
            f"mutable session",
            found=manifest.get("format_version"), supported=FORMAT_VERSION)
    catalog, graph, indexes, plans_payload = _load_frozen_parts(path, manifest)
    schema = catalog.current
    plan_cache = _decode_plan_cache(path, plans_payload, schema, cache_size)

    if frozen:
        schema_index = SchemaIndex.from_prebuilt(graph, schema, indexes)
        engine = QueryEngine(graph, catalog, frozen=True, validate=validate,
                             cache_size=cache_size, plan_cache=plan_cache,
                             schema_index=schema_index, executor=executor)
    else:
        engine = QueryEngine(graph.thaw(), catalog, frozen=False,
                             validate=validate, cache_size=cache_size,
                             plan_cache=plan_cache, executor=executor)

    engine.artifact_path = path
    return engine


# ----------------------------------------------------------------- sharded layout
def save_sharded_engine(engine, path, shards: int,
                        assignment: dict | None = None) -> dict:
    """Partition ``engine``'s graph into ``shards`` halo shards and write
    a sharded artifact directory.

    Layout::

        manifest.json   layout "sharded": partition stats, schema, plan
                        count, checksums of the top payloads *and* of
                        every shard manifest (the root of trust covers
                        the whole tree)
        plans.json      the engine's plan cache (shared by all shards —
                        plans depend on Q and A only)
        partition.bin   per-shard owned-node id buffers
        shard-0000/ …   one complete single-layout artifact per shard:
                        halo graph + owned-target constraint indexes

    Workers warm-start from the shard sub-artifacts, so nothing larger
    than task/response tuples ever crosses a process boundary.
    """
    from repro import __version__
    from repro.engine.cache import PlanCache
    from repro.graph.partition import build_shard_indexes, partition_graph

    if shards < 1:
        raise EngineError(f"shards must be >= 1, got {shards}")
    graph = engine.graph
    if not isinstance(graph, FrozenGraph):
        graph = FrozenGraph.from_graph(graph)
    partition = partition_graph(graph, shards, assignment=assignment)
    shard_indexes = build_shard_indexes(partition, engine.schema)

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    shard_meta = []
    for shard, schema_index in zip(partition.shards, shard_indexes):
        shard_path = path / shard_dir_name(shard.shard_id)
        session = _ShardSession(graph=shard.graph, catalog=engine.catalog,
                                schema_index=schema_index,
                                plan_cache=PlanCache(1))
        manifest = save_engine(session, shard_path)
        manifest_bytes = (shard_path / MANIFEST_FILE).read_bytes()
        shard_meta.append({
            "dir": shard_dir_name(shard.shard_id),
            "manifest_sha256": hashlib.sha256(manifest_bytes).hexdigest(),
            "nodes": shard.graph.num_nodes,
            "edges": shard.graph.num_edges,
            "owned_nodes": len(shard.owned),
            "owned_edges": shard.owned_edges,
            "halo_nodes": shard.num_halo,
            "bytes": sum(meta["bytes"]
                         for meta in manifest["files"].values()),
        })

    partition_buffers = {
        f"s{shard.shard_id}.owned": array("q", shard.owned)
        for shard in partition.shards
    }
    plan_entries = _encode_plan_entries(engine)
    contents = {
        PLANS_FILE: json.dumps({"entries": plan_entries}).encode("utf-8"),
        PARTITION_FILE: pack_buffers(partition_buffers),
        CATALOG_FILE: json.dumps(engine.catalog.to_dict()).encode("utf-8"),
    }
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "layout": "sharded",
        "library_version": __version__,
        "byteorder": sys.byteorder,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges,
                  "labels": len(graph.labels())},
        "schema": engine.schema.to_dict(),
        "schema_version": engine.catalog.version,
        "partition": {"num_shards": partition.num_shards,
                      "cross_edges": partition.cross_edges},
        "shards": shard_meta,
        "plans": {"entries": len(plan_entries)},
        "files": {name: {"sha256": hashlib.sha256(data).hexdigest(),
                         "bytes": len(data)}
                  for name, data in contents.items()},
    }
    for name, data in contents.items():
        (path / name).write_bytes(data)
    # Manifest last: a crash mid-save reads as corruption, never as a
    # trustworthy artifact.
    (path / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2) + "\n",
                                      encoding="utf-8")
    # A fresh save is the repair for staleness, as in save_engine.
    (path / STALE_FILE).unlink(missing_ok=True)
    return manifest


class _ShardSession:
    """The slice of the ``QueryEngine`` surface :func:`save_engine`
    needs, for saving one shard as a standard artifact."""

    def __init__(self, graph, catalog, schema_index, plan_cache):
        self.graph = graph
        self.catalog = catalog
        self.schema = catalog.current
        self.schema_index = schema_index
        self.plan_cache = plan_cache


def save_extended_sharded(engine, source, path) -> dict:
    """Persist an inline sharded session — typically one grown by
    ``extend_schema`` — as a sharded artifact at ``path``, reusing the
    partition of the artifact it was opened from (``source``).

    This is the on-disk half of incremental extension: the partition is
    **not** recomputed and no index is rebuilt — each shard directory is
    re-serialized from its loaded runtime, whose indexes for the added
    constraints were built incrementally over owned targets only.
    ``path`` may equal ``source`` (in-place extension: the loaded
    payloads are plain in-memory bytes, so overwriting is safe).
    """
    from repro import __version__
    from repro.engine.cache import PlanCache
    from repro.engine.parallel import InlineShardBackend

    source = Path(source)
    path = Path(path)
    src_manifest = _read_manifest(source)
    if src_manifest.get("layout") != "sharded":
        raise EngineError(f"artifact at {source} is not sharded")
    backend = getattr(engine, "_shards", None)
    if not isinstance(backend, InlineShardBackend):
        raise EngineError(
            "saving an extended sharded artifact requires an inline "
            "sharded session (open_path(..., workers=0))")
    try:
        partition_bytes = (source / PARTITION_FILE).read_bytes()
    except OSError as exc:
        raise ArtifactCorrupt(
            f"missing artifact file {source / PARTITION_FILE}: {exc}",
            path=str(source / PARTITION_FILE)) from exc
    if src_manifest.get("byteorder") != sys.byteorder:
        # Everything else re-encodes natively below; re-encode the
        # copied partition payload too so one byteorder describes the
        # whole new artifact.
        partition_bytes = pack_buffers(unpack_buffers(
            partition_bytes, byteswap=True, source=PARTITION_FILE))
    path.mkdir(parents=True, exist_ok=True)

    shard_meta = []
    for runtime in backend.runtimes:
        shard_path = path / shard_dir_name(runtime.shard_id)
        session = _ShardSession(graph=runtime.graph, catalog=engine.catalog,
                                schema_index=runtime.schema_index,
                                plan_cache=PlanCache(1))
        manifest = save_engine(session, shard_path)
        manifest_bytes = (shard_path / MANIFEST_FILE).read_bytes()
        shard_meta.append({
            "dir": shard_dir_name(runtime.shard_id),
            "manifest_sha256": hashlib.sha256(manifest_bytes).hexdigest(),
            "nodes": runtime.graph.num_nodes,
            "edges": runtime.graph.num_edges,
            "owned_nodes": len(runtime.owned),
            "owned_edges": sum(runtime.graph.out_degree(v)
                               for v in runtime.owned),
            "halo_nodes": runtime.graph.num_nodes - len(runtime.owned),
            "bytes": sum(meta["bytes"]
                         for meta in manifest["files"].values()),
        })

    plan_entries = _encode_plan_entries(engine)
    contents = {
        PLANS_FILE: json.dumps({"entries": plan_entries}).encode("utf-8"),
        PARTITION_FILE: partition_bytes,
        CATALOG_FILE: json.dumps(engine.catalog.to_dict()).encode("utf-8"),
    }
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "layout": "sharded",
        "library_version": __version__,
        "byteorder": sys.byteorder,
        "graph": dict(src_manifest.get("graph", {})),
        "schema": engine.schema.to_dict(),
        "schema_version": engine.catalog.version,
        "partition": dict(src_manifest.get("partition", {})),
        "shards": shard_meta,
        "plans": {"entries": len(plan_entries)},
        "files": {name: {"sha256": hashlib.sha256(data).hexdigest(),
                         "bytes": len(data)}
                  for name, data in contents.items()},
    }
    for name, data in contents.items():
        (path / name).write_bytes(data)
    # Manifest last, staleness cleared by the fresh save — the same
    # crash-safety discipline as save_engine/save_sharded_engine.
    (path / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2) + "\n",
                                      encoding="utf-8")
    (path / STALE_FILE).unlink(missing_ok=True)
    engine.artifact_path = path
    return manifest


def _shard_manifests(path: Path, manifest: dict,
                     only=None) -> list[tuple[int, Path, dict]]:
    """Verify and read shard manifests against the top-level root of
    trust; raises on any mismatch. ``only`` restricts the work to a set
    of shard ids (workers verify just their assignment — the parent's
    whole-tree sweep covers the rest)."""
    shard_meta = manifest.get("shards")
    if not isinstance(shard_meta, list) or not shard_meta:
        raise ArtifactCorrupt(
            f"sharded artifact at {path} lists no shards", path=str(path))
    out = []
    for shard_id, meta in enumerate(shard_meta):
        if only is not None and shard_id not in only:
            continue
        shard_path = path / meta.get("dir", shard_dir_name(shard_id))
        manifest_path = shard_path / MANIFEST_FILE
        try:
            manifest_bytes = manifest_path.read_bytes()
        except OSError as exc:
            raise ArtifactCorrupt(
                f"missing shard manifest {manifest_path}: {exc}",
                path=str(manifest_path)) from exc
        digest = hashlib.sha256(manifest_bytes).hexdigest()
        if digest != meta.get("manifest_sha256"):
            raise ArtifactCorrupt(
                f"{manifest_path}: checksum mismatch (shard "
                f"{shard_id} is corrupt or was modified; re-compile)",
                path=str(manifest_path))
        out.append((shard_id, shard_path, _read_manifest(shard_path)))
    return out


def verify_sharded_artifact(path, manifest: dict | None = None) -> int:
    """Eagerly checksum a sharded artifact's whole tree (top payloads,
    every shard manifest, every shard payload). Returns the shard count;
    raises :class:`~repro.errors.ArtifactCorrupt` on the first mismatch —
    corrupting any single shard is detected *before* a worker ever
    serves from it."""
    path = Path(path)
    if manifest is None:
        manifest = _read_manifest(path)
    _read_payloads(path, manifest)
    shard_entries = _shard_manifests(path, manifest)
    for _, shard_path, shard_manifest in shard_entries:
        _read_payloads(shard_path, shard_manifest)
    return len(shard_entries)


def read_sharded_manifest(path) -> dict:
    """The (version-checked) manifest of a *sharded* artifact; raises
    :class:`~repro.errors.ArtifactCorrupt` for the single layout. The
    remote-backend handshake reads its expectations from this — the
    artifact format version, schema version and per-shard manifest
    checksums every ``repro shard-serve`` process must agree with at
    connect time."""
    manifest = _read_manifest(Path(path))
    if manifest.get("layout") != "sharded":
        raise ArtifactCorrupt(f"artifact at {path} is not sharded",
                              path=str(path))
    return manifest


def load_partition_owners(path, manifest: dict | None = None) -> dict:
    """``{shard_id: [owned node ids]}`` from ``partition.bin``, checksum
    verified against the manifest — the node-ownership half of the
    owner-routing metadata (see
    :class:`~repro.engine.parallel.OwnerRouter`). Reads only the
    partition payload, so a front-end that holds no graph can still
    route probes."""
    path = Path(path)
    if manifest is None:
        manifest = read_sharded_manifest(path)
    meta = (manifest.get("files") or {}).get(PARTITION_FILE)
    if not isinstance(meta, dict):
        raise ArtifactCorrupt(
            f"artifact manifest at {path} does not list {PARTITION_FILE}",
            path=str(path))
    file_path = path / PARTITION_FILE
    try:
        data = file_path.read_bytes()
    except OSError as exc:
        raise ArtifactCorrupt(f"missing artifact file {file_path}: {exc}",
                              path=str(file_path)) from exc
    if hashlib.sha256(data).hexdigest() != meta.get("sha256"):
        raise ArtifactCorrupt(
            f"{file_path}: checksum mismatch (artifact is corrupt or was "
            f"modified; re-compile it)", path=str(file_path))
    buffers = unpack_buffers(data,
                             byteswap=manifest.get("byteorder")
                             != sys.byteorder,
                             source=PARTITION_FILE)
    owners: dict[int, list[int]] = {}
    for shard_id in range(len(manifest.get("shards") or ())):
        owned = buffers.get(f"s{shard_id}.owned")
        if owned is None:
            raise ArtifactCorrupt(
                f"{file_path} is missing the owned-node buffer for "
                f"shard {shard_id}", path=str(file_path))
        owners[shard_id] = list(owned)
    return owners


def load_shard_runtimes(path, shard_ids) -> list:
    """Load the given shards of a sharded artifact into
    :class:`~repro.engine.parallel.ShardRuntime` objects (the worker
    warm-start path; also used inline for ``workers=0``)."""
    from repro.engine.parallel import ShardRuntime

    path = Path(path)
    manifest = _read_manifest(path)
    if manifest.get("layout") != "sharded":
        raise ArtifactCorrupt(f"artifact at {path} is not sharded",
                              path=str(path))
    payloads = _read_payloads(path, manifest)
    byteswap = manifest.get("byteorder") != sys.byteorder
    partition_buffers = unpack_buffers(payloads[PARTITION_FILE],
                                       byteswap=byteswap,
                                       source=PARTITION_FILE)
    shard_ids = list(shard_ids)
    shard_entries = {shard_id: (shard_path, shard_manifest)
                     for shard_id, shard_path, shard_manifest
                     in _shard_manifests(path, manifest,
                                         only=set(shard_ids))}
    runtimes = []
    for shard_id in shard_ids:
        if shard_id not in shard_entries:
            raise ArtifactCorrupt(
                f"sharded artifact at {path} has no shard {shard_id}",
                path=str(path))
        owned = partition_buffers.get(f"s{shard_id}.owned")
        if owned is None:
            raise ArtifactCorrupt(
                f"{path / PARTITION_FILE} is missing the owned-node "
                f"buffer for shard {shard_id}",
                path=str(path / PARTITION_FILE))
        shard_path, shard_manifest = shard_entries[shard_id]
        catalog, graph, indexes, _ = _load_frozen_parts(shard_path,
                                                        shard_manifest)
        schema_index = SchemaIndex.from_prebuilt(graph, catalog.current,
                                                 indexes)
        runtimes.append(ShardRuntime(shard_id, graph, schema_index,
                                     list(owned)))
    return runtimes


def _load_sharded_engine(path: Path, manifest: dict, *, validate: bool,
                         cache_size: int, workers: int, mp_context,
                         frozen: bool, allow_stale: bool = False,
                         strategy: str = "auto", executor: str = "auto",
                         backend: str = "inline",
                         shard_addrs: Sequence[str] = (),
                         connect_timeout: float = 5.0,
                         request_timeout: float = 30.0,
                         retries: int = 2, retry_backoff_s: float = 0.1,
                         owner_routing: bool = True,
                         wire_format: str = "auto",
                         scatter_pipeline: bool = True):
    from repro.engine.engine import QueryEngine
    from repro.engine.parallel import (
        InlineShardBackend,
        ProcessShardBackend,
        RemoteShardBackend,
    )
    from repro.graph.partition import GraphSummary, merge_shard_runtimes

    # Same staleness contract as the single layout: a sharded artifact
    # saved by a mutable session and then diverged via apply() must
    # never be served silently.
    stale = stale_info(path)
    if stale is not None and not allow_stale:
        raise ArtifactStale(
            f"artifact at {path} is stale ({stale.get('reason', 'unknown')}); "
            f"re-compile it or pass allow_stale=True",
            reason=stale.get("reason"))
    if not frozen:
        raise EngineError(
            "sharded artifacts open frozen only; incremental updates go "
            "through re-compile (repro compile --shards) + hot reload")
    if strategy == "auto":
        # One process means in-process scatter only adds coordination
        # overhead; merge the shards back and serve the (vectorized)
        # sequential executors. Worker processes — or a remote fleet —
        # mean real parallelism.
        strategy = "scatter" if (workers or backend == "remote") \
            else "sequential"
    if strategy == "sequential" and workers:
        raise EngineError(
            "strategy='sequential' serves the merged graph in-process; "
            "it is incompatible with workers — drop workers or use "
            "strategy='scatter'")
    if strategy == "sequential" and backend == "remote":
        raise EngineError(
            "strategy='sequential' serves the merged graph in-process; "
            "it is incompatible with backend='remote'")
    if validate and strategy == "scatter":
        raise EngineError(
            "validate=True is not supported for scatter-gather serving: "
            "cardinality bounds are a property of the merged index; "
            "open with strategy='sequential' or validate before compiling")
    shard_meta = manifest.get("shards")
    if not isinstance(shard_meta, list) or not shard_meta:
        raise ArtifactCorrupt(
            f"sharded artifact at {path} lists no shards", path=str(path))
    num_shards = len(shard_meta)
    if workers:
        # Workers checksum-verify only the shards they load, so the
        # whole-tree sweep runs in the parent: corrupting any single
        # shard is detected here, before a worker ever serves from it.
        # The inline path skips the sweep — loading every shard below
        # performs the identical verification exactly once.
        verify_sharded_artifact(path, manifest)
    try:
        schema = AccessSchema.from_dict(manifest["schema"])
        plans_payload = json.loads((path / PLANS_FILE).read_bytes())
        graph_info = manifest["graph"]
        summary = GraphSummary(num_nodes=int(graph_info["nodes"]),
                               num_edges=int(graph_info["edges"]),
                               num_labels=int(graph_info["labels"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorrupt(f"malformed sharded manifest at {path}: {exc}",
                              path=str(path)) from exc
    catalog_payload = None
    if manifest.get("format_version") == FORMAT_VERSION:
        try:
            catalog_payload = (path / CATALOG_FILE).read_bytes()
        except OSError as exc:
            raise ArtifactCorrupt(
                f"missing artifact file {path / CATALOG_FILE}: {exc}",
                path=str(path / CATALOG_FILE)) from exc
    catalog = _decode_catalog(path, manifest, schema, catalog_payload)
    plan_cache = _decode_plan_cache(path, plans_payload, schema, cache_size)

    if strategy == "sequential":
        runtimes = load_shard_runtimes(path, range(num_shards))
        merged_graph, merged_index = merge_shard_runtimes(runtimes,
                                                          catalog.current)
        engine = QueryEngine(merged_graph, catalog, frozen=True,
                             validate=validate, cache_size=cache_size,
                             plan_cache=plan_cache,
                             schema_index=merged_index, executor=executor)
        engine.artifact_path = path
        return engine

    if backend == "remote":
        shards = RemoteShardBackend(list(shard_addrs), schema,
                                    artifact_path=path, manifest=manifest,
                                    connect_timeout=connect_timeout,
                                    request_timeout=request_timeout,
                                    retries=retries,
                                    retry_backoff_s=retry_backoff_s,
                                    owner_routing=owner_routing,
                                    wire_format=wire_format)
    elif workers:
        shards = ProcessShardBackend(path, range(num_shards), schema,
                                     workers=workers,
                                     mp_context=mp_context,
                                     owner_routing=owner_routing)
    else:
        runtimes = load_shard_runtimes(path, range(num_shards))
        shards = InlineShardBackend(runtimes, schema,
                                    owner_routing=owner_routing)
    engine = QueryEngine.from_shards(shards, catalog, summary,
                                     plan_cache=plan_cache,
                                     cache_size=cache_size)
    engine.scatter_pipeline = scatter_pipeline
    engine.artifact_path = path
    return engine


# ---------------------------------------------------------------------- inspection
def inspect_artifact(path) -> dict:
    """Metadata of an artifact without loading it — format and library
    versions, graph stats, per-constraint index sizes, cached plan count,
    staleness, and per-file checksum status (for debugging CI failures).
    """
    path = Path(path)
    manifest = _read_manifest(path)
    files = {}
    for name, meta in manifest.get("files", {}).items():
        file_path = path / name
        if not file_path.is_file():
            status = "missing"
        else:
            data = file_path.read_bytes()
            if (len(data) == meta.get("bytes")
                    and hashlib.sha256(data).hexdigest() == meta.get("sha256")):
                status = "ok"
            else:
                status = "MISMATCH"
        files[name] = {"bytes": meta.get("bytes"), "status": status}
    info = {
        "path": str(path),
        "format": manifest.get("format"),
        "format_version": manifest.get("format_version"),
        "layout": manifest.get("layout", "single"),
        "library_version": manifest.get("library_version"),
        "byteorder": manifest.get("byteorder"),
        "graph": manifest.get("graph", {}),
        "constraints": len(manifest.get("index", [])),
        "index": manifest.get("index", []),
        "cached_plans": manifest.get("plans", {}).get("entries", 0),
        "schema_version": manifest.get("schema_version", 0),
        "generations": [],
        "stale": stale_info(path),
        "files": files,
    }
    catalog_path = path / CATALOG_FILE
    if catalog_path.is_file():
        try:
            catalog_doc = json.loads(catalog_path.read_text(encoding="utf-8"))
            info["generations"] = [
                {"version": gen.get("version"),
                 "added": len(gen.get("added", ())),
                 "size": gen.get("size"),
                 "provenance": gen.get("provenance", {})}
                for gen in catalog_doc.get("generations", ())]
        except (OSError, ValueError):
            info["generations"] = [{"version": None,
                                    "provenance": {"error": "unreadable"}}]
    if info["layout"] == "sharded":
        info["constraints"] = len(manifest.get("schema", {})
                                  .get("constraints", []))
        info["partition"] = manifest.get("partition", {})
        shards = []
        for shard_id, meta in enumerate(manifest.get("shards", [])):
            shard_path = path / meta.get("dir", shard_dir_name(shard_id))
            manifest_path = shard_path / MANIFEST_FILE
            if not manifest_path.is_file():
                status = "missing"
            else:
                digest = hashlib.sha256(
                    manifest_path.read_bytes()).hexdigest()
                status = "ok" if digest == meta.get("manifest_sha256") \
                    else "MISMATCH"
            shards.append({**meta, "status": status})
        info["shards"] = shards
    return info


def render_inspection(info: dict) -> str:
    """Human-readable rendering of :func:`inspect_artifact` output."""
    graph = info.get("graph", {})
    lines = [
        f"artifact: {info['path']}",
        f"  format: {info['format']} v{info['format_version']} "
        f"({info.get('layout', 'single')} layout, library "
        f"{info['library_version']}, {info['byteorder']}-endian)",
        f"  graph: {graph.get('nodes')} nodes, {graph.get('edges')} edges, "
        f"{graph.get('labels')} labels",
        f"  constraints: {info['constraints']}",
        f"  cached plans: {info['cached_plans']}",
        f"  schema version: {info.get('schema_version', 0)}",
        f"  stale: {info['stale'].get('reason') if info['stale'] else 'no'}",
    ]
    for gen in info.get("generations", ()):
        provenance = gen.get("provenance", {})
        origin = provenance.get("origin", "?")
        extras = ", ".join(f"{k}={v}" for k, v in sorted(provenance.items())
                           if k != "origin")
        lines.append(
            f"    generation {gen.get('version')}: +{gen.get('added', 0)} "
            f"constraints -> ||A|| = {gen.get('size')} "
            f"(origin {origin}{', ' + extras if extras else ''})")
    for name, meta in info.get("files", {}).items():
        lines.append(f"  file {name}: {meta['bytes']} bytes [{meta['status']}]")
    if info.get("layout") == "sharded":
        partition = info.get("partition", {})
        lines.append(f"  shards: {partition.get('num_shards')}, "
                     f"cross-shard edges: {partition.get('cross_edges')}")
        for meta in info.get("shards", ()):
            lines.append(
                f"    {meta.get('dir')}: {meta.get('owned_nodes')} owned + "
                f"{meta.get('halo_nodes')} halo nodes, "
                f"{meta.get('owned_edges')} owned edges "
                f"({meta.get('nodes')} nodes / {meta.get('edges')} edges "
                f"stored, {meta.get('bytes')} bytes) "
                f"sha256 {str(meta.get('manifest_sha256'))[:12]}… "
                f"[{meta.get('status')}]")
        return "\n".join(lines)
    total_cells = sum(entry.get("size", 0) for entry in info.get("index", ()))
    largest = sorted(info.get("index", ()),
                     key=lambda e: e.get("size", 0), reverse=True)[:5]
    lines.append(f"  index cells: {total_cells} across "
                 f"{info['constraints']} constraints; largest:")
    for entry in largest:
        constraint = entry.get("constraint", {})
        source = ",".join(constraint.get("source", ())) or "∅"
        lines.append(f"    {source} -> ({constraint.get('target')}, "
                     f"{constraint.get('bound')}): {entry.get('num_keys')} "
                     f"keys, {entry.get('size')} cells")
    return "\n".join(lines)


__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_READ_VERSIONS",
    "ArtifactError",
    "artifact_layout",
    "inspect_artifact",
    "load_engine",
    "load_shard_runtimes",
    "mark_stale",
    "pack_buffers",
    "render_inspection",
    "save_engine",
    "save_extended_sharded",
    "save_sharded_engine",
    "shard_dir_name",
    "stale_info",
    "unpack_buffers",
    "verify_sharded_artifact",
]
