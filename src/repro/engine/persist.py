"""Persistent compiled artifacts: on-disk engine snapshots.

The paper's economics are pay-once (access schema, indexes, compiled
plans), serve-many. PR 1 amortized those costs in-process; this module
makes the compiled state a durable artifact so every **process** after
the first skips graph load, index build, and EBChk/QPlan for previously
prepared canonical forms:

.. code-block:: text

    engine = QueryEngine.open(graph, schema)   # cold: build everything
    engine.prepare(q)                          # compile plans
    engine.save("artifact/")                   # persist the compiled state
    ...
    engine = QueryEngine.open_path("artifact/")  # warm: ~10-40x faster

Artifact layout (one directory)::

    manifest.json     format version, byte order, graph stats, access
                      schema, per-constraint index metadata, file
                      checksums (the root of trust)
    graph.bin         FrozenGraph CSR buffers (binary container)
    graph.meta.json   label table + sparse node-value map
    index.bin         per-constraint FrozenConstraintIndex buffers
    plans.json        plan-cache contents (compiled plans + cached
                      negative EBChk verdicts, keyed by canonical form)
    STALE             marker written by ``QueryEngine.apply`` when the
                      served graph diverges from the snapshot

The binary container is struct/array-based — a magic header followed by
named int64 sections, 8-byte aligned so loading can hand out zero-copy
``memoryview`` slices over one bytes object. No pickle anywhere. Every
payload file is SHA-256 checksummed in the manifest; corruption raises
:class:`~repro.errors.ArtifactCorrupt`, a format bump raises
:class:`~repro.errors.ArtifactVersionMismatch`, and a stale marker
raises :class:`~repro.errors.ArtifactStale` (all loud, never a wrong
answer). ``plans.json`` uses the :mod:`json` module's infinity literals
for unbounded cost bounds, so it is JSON + ``Infinity``.

Versioning: ``FORMAT_VERSION`` covers everything an artifact's meaning
depends on, including the canonical-fingerprint algorithm of
:mod:`repro.engine.cache` — bump it whenever buffers, JSON schemas, or
fingerprinting change incompatibly.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
from array import array
from pathlib import Path

from repro.constraints.index import (
    ConstraintIndex,
    FrozenConstraintIndex,
    SchemaIndex,
)
from repro.constraints.schema import AccessSchema
from repro.core.plan import EdgeCheck, FetchOp, QueryPlan
from repro.errors import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactStale,
    ArtifactVersionMismatch,
    NotEffectivelyBounded,
)
from repro.graph.frozen import FrozenGraph
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import Atom, Predicate

#: Bump on any incompatible change to buffers, JSON layouts, or the
#: canonical pattern fingerprint.
FORMAT_VERSION = 1

FORMAT_NAME = "repro-engine-artifact"

MANIFEST_FILE = "manifest.json"
GRAPH_FILE = "graph.bin"
GRAPH_META_FILE = "graph.meta.json"
INDEX_FILE = "index.bin"
PLANS_FILE = "plans.json"
STALE_FILE = "STALE"

#: Files whose checksums the manifest records (everything but itself and
#: the stale marker).
PAYLOAD_FILES = (GRAPH_FILE, GRAPH_META_FILE, INDEX_FILE, PLANS_FILE)

_BIN_MAGIC = b"RPROBIN1"
_ITEM = 8  # int64 buffers only


# --------------------------------------------------------------- binary container
def _buffer_bytes(buf) -> bytes:
    """Raw bytes of an int64 buffer (array('q') or memoryview)."""
    if isinstance(buf, array):
        return buf.tobytes()
    return bytes(buf)


def pack_buffers(buffers: dict) -> bytes:
    """Serialize named int64 buffers into one binary blob.

    Layout: magic, ``<I`` buffer count, then per buffer ``<H`` name
    length, UTF-8 name, ``<Q`` payload byte length, zero padding to an
    8-byte boundary, payload. Multi-byte header fields are little-endian;
    payloads are native-endian (recorded in the manifest and swapped on
    load when needed).
    """
    out = bytearray(_BIN_MAGIC)
    out += struct.pack("<I", len(buffers))
    for name, buf in buffers.items():
        raw = _buffer_bytes(buf)
        encoded = name.encode("utf-8")
        out += struct.pack("<H", len(encoded))
        out += encoded
        out += struct.pack("<Q", len(raw))
        out += b"\x00" * (-len(out) % _ITEM)
        out += raw
    return bytes(out)


def unpack_buffers(data: bytes, *, byteswap: bool = False,
                   source: str = "buffer file") -> dict:
    """Parse :func:`pack_buffers` output into named int64 sequences.

    Returns zero-copy ``memoryview`` slices cast to ``'q'`` (or
    materialized, byte-swapped ``array('q')`` objects when the artifact
    was written on a machine of the other endianness).
    """
    view = memoryview(data)
    try:
        if bytes(view[:len(_BIN_MAGIC)]) != _BIN_MAGIC:
            raise ArtifactCorrupt(f"{source}: bad magic header")
        offset = len(_BIN_MAGIC)
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        buffers = {}
        for _ in range(count):
            (name_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            name = bytes(view[offset:offset + name_len]).decode("utf-8")
            offset += name_len
            (payload_len,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            offset += -offset % _ITEM
            if payload_len % _ITEM or offset + payload_len > len(data):
                raise ArtifactCorrupt(
                    f"{source}: buffer {name!r} is truncated or misaligned")
            section = view[offset:offset + payload_len].cast("q")
            offset += payload_len
            if byteswap:
                swapped = array("q")
                swapped.frombytes(bytes(section))
                swapped.byteswap()
                buffers[name] = swapped
            else:
                buffers[name] = section
        return buffers
    except struct.error as exc:
        raise ArtifactCorrupt(f"{source}: truncated header ({exc})") from exc


# ------------------------------------------------------------------ plan encoding
def _encode_pattern(pattern: Pattern) -> dict:
    return {
        "name": pattern.name,
        "nodes": [[node, pattern.label_of(node),
                   [[atom.op, atom.constant]
                    for atom in pattern.predicate_of(node).atoms]]
                  for node in sorted(pattern.nodes())],
        "edges": [[u, v] for u, v in pattern.edges()],
    }


def _decode_pattern(doc: dict) -> Pattern:
    pattern = Pattern(name=doc.get("name", ""))
    for node, label, atoms in doc["nodes"]:
        predicate = Predicate(tuple(Atom(op, constant)
                                    for op, constant in atoms))
        pattern.add_node(label, predicate=predicate, node_id=int(node))
    for u, v in doc["edges"]:
        pattern.add_edge(int(u), int(v))
    return pattern


def _encode_plan(plan: QueryPlan, constraint_pos: dict) -> dict:
    return {
        "pattern": _encode_pattern(plan.pattern),
        "semantics": plan.semantics,
        "ops": [{"target": op.target,
                 "source_nodes": list(op.source_nodes),
                 "constraint": constraint_pos[op.constraint],
                 "fetch_bound": op.fetch_bound,
                 "size_bound": op.size_bound} for op in plan.ops],
        "edge_checks": [{"edge": list(check.edge),
                         "mode": check.mode,
                         "fetch_target": check.fetch_target,
                         "source_nodes": list(check.source_nodes),
                         "constraint": (None if check.constraint is None
                                        else constraint_pos[check.constraint]),
                         "cost_bound": check.cost_bound}
                        for check in plan.edge_checks],
    }


def _decode_plan(doc: dict, schema: AccessSchema, constraints: list) -> QueryPlan:
    pattern = _decode_pattern(doc["pattern"])
    plan = QueryPlan(pattern=pattern, schema=schema,
                     semantics=doc["semantics"])
    for op in doc["ops"]:
        target = int(op["target"])
        plan.ops.append(FetchOp(
            target=target,
            source_nodes=tuple(int(v) for v in op["source_nodes"]),
            constraint=constraints[op["constraint"]],
            predicate=pattern.predicate_of(target),
            fetch_bound=float(op["fetch_bound"]),
            size_bound=float(op["size_bound"])))
    for check in doc["edge_checks"]:
        constraint = check["constraint"]
        plan.edge_checks.append(EdgeCheck(
            edge=(int(check["edge"][0]), int(check["edge"][1])),
            mode=check["mode"],
            fetch_target=(None if check["fetch_target"] is None
                          else int(check["fetch_target"])),
            source_nodes=tuple(int(v) for v in check["source_nodes"]),
            constraint=None if constraint is None else constraints[constraint],
            cost_bound=float(check["cost_bound"])))
    return plan


def _freeze(obj):
    """Recursively turn JSON lists back into the hashable tuples the
    plan-cache keys are made of."""
    if isinstance(obj, list):
        return tuple(_freeze(item) for item in obj)
    return obj


def _encode_plan_entries(engine) -> list[dict]:
    constraint_pos = {c: i for i, c in enumerate(engine.schema)}
    entries = []
    for cache_key, entry in engine.plan_cache.items():
        if not entry.usable_by(engine.schema):
            continue  # foreign-schema or stale-negative entry in a shared cache
        key, semantics = cache_key
        doc = {"key": key, "semantics": semantics,
               "order": list(entry.order), "schema_size": entry.schema_size}
        if entry.error is not None:
            doc["error"] = {
                "message": str(entry.error),
                "uncovered_nodes": list(entry.error.uncovered_nodes),
                "uncovered_edges": [list(edge)
                                    for edge in entry.error.uncovered_edges]}
        else:
            doc["plan"] = _encode_plan(entry.plan, constraint_pos)
        entries.append(doc)
    return entries


def _decode_plan_entries(payload: dict, schema: AccessSchema):
    from repro.engine.engine import _CacheEntry

    constraints = list(schema)
    for doc in payload.get("entries", ()):
        cache_key = (_freeze(doc["key"]), doc["semantics"])
        order = tuple(int(v) for v in doc["order"])
        if "error" in doc:
            error_doc = doc["error"]
            error = NotEffectivelyBounded(
                error_doc["message"],
                uncovered_nodes=[int(v)
                                 for v in error_doc["uncovered_nodes"]],
                uncovered_edges=[(int(u), int(v))
                                 for u, v in error_doc["uncovered_edges"]])
            entry = _CacheEntry(order=order, schema=schema,
                                schema_size=int(doc["schema_size"]),
                                error=error)
        else:
            plan = _decode_plan(doc["plan"], schema, constraints)
            entry = _CacheEntry(order=order, schema=schema,
                                schema_size=int(doc["schema_size"]),
                                plan=plan)
        yield cache_key, entry


# ------------------------------------------------------------------------- saving
def save_engine(engine, path) -> dict:
    """Write ``engine``'s compiled state to the artifact directory
    ``path`` (created if needed, overwritten if present) and return the
    manifest. Clears any stale marker: a fresh save *is* the repair.
    """
    from repro import __version__  # late: repro/__init__ defines it last

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    graph = engine.graph
    if not isinstance(graph, FrozenGraph):
        graph = FrozenGraph.from_graph(graph)
    graph_buffers, graph_meta = graph.to_buffers()

    index_buffers: dict = {}
    index_meta = []
    for i, constraint in enumerate(engine.schema):
        index = engine.schema_index.index_for(constraint)
        if isinstance(index, ConstraintIndex):
            index = index.freeze()
        for name, buf in index.to_buffers().items():
            index_buffers[f"c{i}.{name}"] = buf
        index_meta.append({"constraint": constraint.to_dict(),
                           "num_keys": index.num_keys,
                           "size": index.size,
                           "max_entry": index.max_entry})

    plan_entries = _encode_plan_entries(engine)

    contents = {
        GRAPH_FILE: pack_buffers(graph_buffers),
        GRAPH_META_FILE: json.dumps(graph_meta).encode("utf-8"),
        INDEX_FILE: pack_buffers(index_buffers),
        PLANS_FILE: json.dumps({"entries": plan_entries}).encode("utf-8"),
    }
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "library_version": __version__,
        "byteorder": sys.byteorder,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges,
                  "labels": len(graph.labels())},
        "schema": engine.schema.to_dict(),
        "index": index_meta,
        "plans": {"entries": len(plan_entries)},
        "files": {name: {"sha256": hashlib.sha256(data).hexdigest(),
                         "bytes": len(data)}
                  for name, data in contents.items()},
    }
    for name, data in contents.items():
        (path / name).write_bytes(data)
    # Manifest last: a crash mid-save leaves a manifest that does not
    # match its payloads, which load_engine reports as corruption.
    (path / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2) + "\n",
                                      encoding="utf-8")
    (path / STALE_FILE).unlink(missing_ok=True)
    return manifest


# ------------------------------------------------------------------------ loading
def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.is_file():
        raise ArtifactCorrupt(f"no artifact manifest at {manifest_path}",
                              path=str(path))
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ArtifactCorrupt(f"unreadable artifact manifest: {exc}",
                              path=str(manifest_path)) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise ArtifactCorrupt(
            f"{manifest_path} is not a {FORMAT_NAME} manifest",
            path=str(manifest_path))
    found = manifest.get("format_version")
    if found != FORMAT_VERSION:
        raise ArtifactVersionMismatch(
            f"artifact at {path} has format version {found!r}; this library "
            f"reads version {FORMAT_VERSION} — re-compile the artifact",
            found=found, supported=FORMAT_VERSION)
    return manifest


def _read_payloads(path: Path, manifest: dict) -> dict:
    files = manifest.get("files")
    if not isinstance(files, dict) or set(files) != set(PAYLOAD_FILES):
        raise ArtifactCorrupt(
            f"artifact manifest at {path} lists unexpected files",
            path=str(path))
    payloads = {}
    for name, meta in files.items():
        file_path = path / name
        try:
            data = file_path.read_bytes()
        except OSError as exc:
            raise ArtifactCorrupt(f"missing artifact file {file_path}: {exc}",
                                  path=str(file_path)) from exc
        if len(data) != meta.get("bytes"):
            raise ArtifactCorrupt(
                f"{file_path}: size {len(data)} != recorded {meta.get('bytes')}",
                path=str(file_path))
        digest = hashlib.sha256(data).hexdigest()
        if digest != meta.get("sha256"):
            raise ArtifactCorrupt(
                f"{file_path}: checksum mismatch (artifact is corrupt or "
                f"was modified; re-compile it)", path=str(file_path))
        payloads[name] = data
    return payloads


def stale_info(path) -> dict | None:
    """The stale-marker contents, or None when the artifact is fresh."""
    marker = Path(path) / STALE_FILE
    if not marker.is_file():
        return None
    try:
        info = json.loads(marker.read_text(encoding="utf-8"))
        return info if isinstance(info, dict) else {"reason": str(info)}
    except (OSError, ValueError):
        return {"reason": "unreadable stale marker"}


def mark_stale(path, reason: str) -> None:
    """Mark the artifact at ``path`` stale (idempotent; no-op when the
    directory is gone). ``QueryEngine.apply`` calls this the moment the
    served graph diverges from the on-disk snapshot."""
    directory = Path(path)
    if not directory.is_dir():
        return
    (directory / STALE_FILE).write_text(
        json.dumps({"reason": reason}) + "\n", encoding="utf-8")


def load_engine(path, *, frozen: bool = True, validate: bool = False,
                cache_size: int = 128, allow_stale: bool = False):
    """Open a :class:`~repro.engine.engine.QueryEngine` from an artifact.

    The frozen path (default) is the warm start: CSR buffers are adopted
    zero-copy, constraint indexes decode lazily, and the plan cache is
    rehydrated so previously prepared canonical forms skip EBChk/QPlan.
    ``frozen=False`` thaws the graph into a mutable session (paying a
    mutable index rebuild) with the plan cache still warm — the only
    loaded flavour that supports ``apply``.
    """
    from repro.engine.engine import QueryEngine

    path = Path(path)
    manifest = _read_manifest(path)
    stale = stale_info(path)
    if stale is not None and not allow_stale:
        raise ArtifactStale(
            f"artifact at {path} is stale ({stale.get('reason', 'unknown')}); "
            f"re-compile it or pass allow_stale=True",
            reason=stale.get("reason"))
    payloads = _read_payloads(path, manifest)
    byteswap = manifest.get("byteorder") != sys.byteorder

    try:
        schema = AccessSchema.from_dict(manifest["schema"])
        graph_meta = json.loads(payloads[GRAPH_META_FILE])
        plans_payload = json.loads(payloads[PLANS_FILE])
    except (KeyError, ValueError) as exc:
        raise ArtifactCorrupt(f"malformed artifact JSON at {path}: {exc}",
                              path=str(path)) from exc

    graph_buffers = unpack_buffers(payloads[GRAPH_FILE], byteswap=byteswap,
                                   source=GRAPH_FILE)
    graph = FrozenGraph.from_buffers(graph_buffers, graph_meta)

    index_buffers = unpack_buffers(payloads[INDEX_FILE], byteswap=byteswap,
                                   source=INDEX_FILE)
    per_constraint: dict[str, dict] = {}
    for name, buf in index_buffers.items():
        prefix, _, field = name.partition(".")
        per_constraint.setdefault(prefix, {})[field] = buf
    indexes = {}
    for i, constraint in enumerate(schema):
        indexes[constraint] = FrozenConstraintIndex.from_buffers(
            constraint, per_constraint.get(f"c{i}", {}))

    try:
        plan_entries = list(_decode_plan_entries(plans_payload, schema))
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorrupt(
            f"malformed plan entry in {path / PLANS_FILE}: {exc}",
            path=str(path / PLANS_FILE)) from exc
    # Never let LRU capacity silently evict persisted plans on load —
    # that would quietly re-pay EBChk/QPlan on the "warm" path.
    from repro.engine.cache import PlanCache
    plan_cache = PlanCache(max(cache_size, len(plan_entries), 1))

    if frozen:
        schema_index = SchemaIndex.from_prebuilt(graph, schema, indexes)
        engine = QueryEngine(graph, schema, frozen=True, validate=validate,
                             cache_size=cache_size, plan_cache=plan_cache,
                             schema_index=schema_index)
    else:
        engine = QueryEngine(graph.thaw(), schema, frozen=False,
                             validate=validate, cache_size=cache_size,
                             plan_cache=plan_cache)

    for cache_key, entry in plan_entries:
        engine.plan_cache.put(cache_key, entry)

    engine.artifact_path = path
    return engine


# ---------------------------------------------------------------------- inspection
def inspect_artifact(path) -> dict:
    """Metadata of an artifact without loading it — format and library
    versions, graph stats, per-constraint index sizes, cached plan count,
    staleness, and per-file checksum status (for debugging CI failures).
    """
    path = Path(path)
    manifest = _read_manifest(path)
    files = {}
    for name, meta in manifest.get("files", {}).items():
        file_path = path / name
        if not file_path.is_file():
            status = "missing"
        else:
            data = file_path.read_bytes()
            if (len(data) == meta.get("bytes")
                    and hashlib.sha256(data).hexdigest() == meta.get("sha256")):
                status = "ok"
            else:
                status = "MISMATCH"
        files[name] = {"bytes": meta.get("bytes"), "status": status}
    return {
        "path": str(path),
        "format": manifest.get("format"),
        "format_version": manifest.get("format_version"),
        "library_version": manifest.get("library_version"),
        "byteorder": manifest.get("byteorder"),
        "graph": manifest.get("graph", {}),
        "constraints": len(manifest.get("index", [])),
        "index": manifest.get("index", []),
        "cached_plans": manifest.get("plans", {}).get("entries", 0),
        "stale": stale_info(path),
        "files": files,
    }


def render_inspection(info: dict) -> str:
    """Human-readable rendering of :func:`inspect_artifact` output."""
    graph = info.get("graph", {})
    lines = [
        f"artifact: {info['path']}",
        f"  format: {info['format']} v{info['format_version']} "
        f"(library {info['library_version']}, {info['byteorder']}-endian)",
        f"  graph: {graph.get('nodes')} nodes, {graph.get('edges')} edges, "
        f"{graph.get('labels')} labels",
        f"  constraints: {info['constraints']}",
        f"  cached plans: {info['cached_plans']}",
        f"  stale: {info['stale'].get('reason') if info['stale'] else 'no'}",
    ]
    for name, meta in info.get("files", {}).items():
        lines.append(f"  file {name}: {meta['bytes']} bytes [{meta['status']}]")
    total_cells = sum(entry.get("size", 0) for entry in info.get("index", ()))
    largest = sorted(info.get("index", ()),
                     key=lambda e: e.get("size", 0), reverse=True)[:5]
    lines.append(f"  index cells: {total_cells} across "
                 f"{info['constraints']} constraints; largest:")
    for entry in largest:
        constraint = entry.get("constraint", {})
        source = ",".join(constraint.get("source", ())) or "∅"
        lines.append(f"    {source} -> ({constraint.get('target')}, "
                     f"{constraint.get('bound')}): {entry.get('num_keys')} "
                     f"keys, {entry.get('size')} cells")
    return "\n".join(lines)


__all__ = [
    "FORMAT_VERSION",
    "ArtifactError",
    "inspect_artifact",
    "load_engine",
    "mark_stale",
    "pack_buffers",
    "render_inspection",
    "save_engine",
    "stale_info",
    "unpack_buffers",
]
