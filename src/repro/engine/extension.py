"""Online M-bounded extension planning for engine sessions.

:mod:`repro.core.instance` implements Section V offline, against a raw
:class:`~repro.graph.graph.GraphView`. This module runs the same
algorithms — the maximal M-bounded extension, ``find_min_m``, the greedy
minimum extension — against a *live* :class:`~repro.engine.engine.
QueryEngine` session, including sharded scatter-gather sessions whose
parent process holds no graph at all.

The bridge is an observation about what the Section V algorithms
actually read from ``G``: only two aggregates over the workload's
labels —

* ``label_count(l)`` — for candidate type (1) constraints ``∅ -> (l, N)``;
* the neighbour-label bounds ``(l, l') -> N`` of
  :func:`repro.constraints.discovery.neighbor_label_bounds` — for
  candidate type (2) constraints.

Both decompose over a halo partition exactly like index entries do:
every node is owned by one shard and sees its complete neighbourhood
there, so global label counts are the *sum* and neighbour bounds the
*max* of the per-shard aggregates over owned nodes. One scatter round
therefore yields a :class:`WorkloadStats` stand-in the offline
algorithms run on unchanged, and everything after that — EBChk over
candidate schemas, the binary search over M, the greedy cover — is
graph-free.

:func:`plan_extension` is the shared planner behind ``repro extend``,
the server's rescue pipeline, and the extension benchmarks;
``QueryEngine.extend_schema`` applies its output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constraints.schema import AccessConstraint
from repro.core.actualized import SUBGRAPH, check_semantics
from repro.core.instance import (
    find_min_m,
    greedy_minimum_extension,
    workload_labels,
)
from repro.errors import ExtensionError
from repro.pattern.pattern import Pattern


@dataclass(frozen=True)
class WorkloadStats:
    """The slice of ``G`` that extension planning reads, restricted to a
    workload's labels. Quacks like a :class:`~repro.graph.graph.
    GraphView` exactly as far as :mod:`repro.core.instance` looks
    (``labels()`` / ``label_count``); the neighbour bounds are carried
    alongside and passed explicitly."""

    label_counts: dict
    neighbor_bounds: dict

    def labels(self) -> set[str]:
        return {label for label, count in self.label_counts.items()
                if count > 0}

    def label_count(self, label: str) -> int:
        return self.label_counts.get(label, 0)


@dataclass(frozen=True)
class ExtensionPlan:
    """Output of :func:`plan_extension`: the budget ``M`` the plan holds
    under, the constraints to add (the greedy minimum extension), and
    how many candidates the maximal extension offered."""

    m: int
    added: tuple[AccessConstraint, ...]
    candidates: int
    semantics: str

    @property
    def empty(self) -> bool:
        return not self.added


@dataclass(frozen=True)
class ExtensionReport:
    """Outcome of ``QueryEngine.extend_schema``.

    ``built`` counts the constraint indexes constructed (== the added
    constraints; never the pre-existing ones), ``added_cells`` their
    total index cells (the index-size delta ``repro extend`` prints),
    and ``per_shard`` the per-shard build summaries of a sharded
    session (``None`` otherwise).
    """

    version: int
    added: tuple[AccessConstraint, ...]
    built: int
    added_cells: int
    build_seconds: float
    per_shard: list | None = None


def workload_stats(engine, labels: set[str]) -> WorkloadStats:
    """Aggregate the extension-planning statistics for ``labels``.

    Ordinary sessions read their graph snapshot directly; sharded
    sessions run one ``stats`` round over the shard backend and merge
    (sum for counts, max for bounds — exact by the halo invariants).
    """
    if getattr(engine, "sharded", False):
        counts: dict = {}
        bounds: dict = {}
        for shard_counts, shard_bounds in \
                engine._shards.extension_stats(sorted(labels)):
            for label, count in shard_counts.items():
                counts[label] = counts.get(label, 0) + count
            for key, bound in shard_bounds.items():
                key = tuple(key)
                if bound > bounds.get(key, 0):
                    bounds[key] = bound
        return WorkloadStats(label_counts=counts, neighbor_bounds=bounds)
    graph = engine.graph
    present = labels & graph.labels()
    counts = {label: graph.label_count(label) for label in present}
    # Restricted neighbour-bound scan: only nodes carrying a workload
    # label are visited, and only their workload-labeled neighbours
    # counted — the same projection :meth:`ShardRuntime.extension_stats`
    # applies, and all the Section V algorithms ever read. Equals
    # :func:`repro.constraints.discovery.neighbor_label_bounds`
    # restricted to ``present`` x ``present``.
    bounds: dict = {}
    for label in present:
        for v in graph.nodes_with_label(label):
            per_label: dict = {}
            for w in graph.neighbors(v):
                other = graph.label_of(w)
                if other in present:
                    per_label[other] = per_label.get(other, 0) + 1
            for other, count in per_label.items():
                key = (label, other)
                if count > bounds.get(key, 0):
                    bounds[key] = count
    return WorkloadStats(label_counts=counts, neighbor_bounds=bounds)


def plan_extension(engine, queries: Sequence[Pattern], *,
                   m: int | None = None, semantics: str = SUBGRAPH,
                   max_added: int | None = None) -> ExtensionPlan:
    """Plan the (greedy) minimum M-bounded extension that makes every
    query in ``queries`` instance-bounded on the engine's graph.

    ``m=None`` first finds the smallest workable ``M`` (``find_min_m``);
    an explicit ``m`` is the hard budget — the server's
    ``--extend-budget``. Raises :class:`~repro.errors.ExtensionError`
    when no extension within the budget bounds the workload, or when
    more than ``max_added`` constraints would be needed (the size cap).
    Queries already bounded contribute no constraints; a fully bounded
    workload yields an empty plan.
    """
    check_semantics(semantics)
    queries = list(queries)
    if not queries:
        raise ExtensionError("extension planning needs at least one query")
    schema = engine.schema
    stats = workload_stats(engine, workload_labels(queries))
    bounds = stats.neighbor_bounds
    if m is None:
        m, result = find_min_m(queries, schema, stats, semantics,
                               bounds=bounds)
        if m is None:
            raise ExtensionError(
                "no M-bounded extension makes this workload "
                "instance-bounded on the served graph (a query may use "
                "labels absent from G)")
    added = greedy_minimum_extension(queries, schema, stats, m, semantics,
                                     bounds=bounds)
    if added is None:
        raise ExtensionError(
            f"the workload is not instance-bounded at M={m}: even the "
            f"maximal {m}-bounded extension leaves a query unbounded "
            f"(raise the extension budget)", m=m)
    if max_added is not None and len(added) > max_added:
        raise ExtensionError(
            f"the minimum extension needs {len(added)} constraints, over "
            f"the configured cap of {max_added}", m=m, needed=len(added))
    candidates = sum(
        1 for label in stats.labels() if stats.label_count(label) <= m)
    candidates += sum(1 for bound in bounds.values() if bound <= m)
    return ExtensionPlan(m=m, added=tuple(added), candidates=candidates,
                         semantics=semantics)


__all__ = [
    "ExtensionPlan",
    "ExtensionReport",
    "WorkloadStats",
    "plan_extension",
    "workload_stats",
]
