"""Command-line interface.

Subcommands::

    repro check    --pattern q.pat --schema a.json [--semantics simulation]
    repro plan     --pattern q.pat --schema a.json [--semantics simulation]
    repro run      --graph g.tsv --pattern q.pat --schema a.json
    repro run      --artifact art/ --pattern q.pat      # warm start
    repro compile  --graph g.tsv --schema a.json --out art/ [--pattern q.pat]
    repro compile  --dataset imdb --scale 0.05 --out art/
    repro compile  --inspect art/                       # artifact metadata
    repro extend   --artifact art/ --pattern q.pat [--workload w.txt]
                   [--extend-budget M] [--max-added K] [--out art2/]
    repro generate --dataset imdb --scale 0.05 --out prefix
    repro serve    --artifact art/ [--port 8642] [--workers 4]
                   [--max-cost 50000] [--extend-budget M]
                   [--shard-addrs host:8650,host:8651]   # remote fleet
                   [--wire-format auto|json|binary]
                   [--metrics-port 9642] [--trace]
                   [--slow-query-ms 50] [--log-format json]
    repro shard-serve --artifact art/shard-0000 [--port 8650]
                   [--wire-format auto|json|binary] [--log-format json]
    repro metrics  [host:8642] [--json]                  # live snapshot
    repro bench    --experiment exp1 [--experiment ...] [--dataset imdb]
                   [--scale 0.05] [--artifact art/]

Patterns use the text DSL of :mod:`repro.pattern.dsl`; schemas are the
JSON documents of :meth:`repro.constraints.schema.AccessSchema.save`;
graphs are the TSV/JSON formats of :mod:`repro.graph.io`; artifacts are
the compiled snapshot directories of :mod:`repro.engine.persist`.
``--experiment`` may repeat: one process then serves every experiment
from one memoized dataset build (what the CI smoke run does).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import __version__, connect
from repro.constraints.schema import AccessSchema
from repro.core.actualized import SEMANTICS, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.core.qplan import generate_plan
from repro.engine import QueryEngine
from repro.errors import NotEffectivelyBounded, ReproError
from repro.graph import io as graph_io
from repro.matching.simulation import relation_pairs
from repro.pattern.dsl import parse_pattern


def _load_pattern(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_pattern(text, name=Path(path).stem)


def _load_graph(path: str):
    if path.endswith(".json"):
        return graph_io.read_json(path)
    return graph_io.read_tsv(path)


def _cmd_check(args) -> int:
    pattern = _load_pattern(args.pattern)
    schema = AccessSchema.load(args.schema)
    result = is_effectively_bounded(pattern, schema, args.semantics)
    print(result.explain())
    return 0 if result.bounded else 1


def _cmd_plan(args) -> int:
    pattern = _load_pattern(args.pattern)
    schema = AccessSchema.load(args.schema)
    try:
        plan = generate_plan(pattern, schema, args.semantics)
    except NotEffectivelyBounded as exc:
        print(f"not effectively bounded: {exc}", file=sys.stderr)
        return 1
    print(plan.describe())
    return 0


def _cmd_run(args) -> int:
    pattern = _load_pattern(args.pattern)
    if args.artifact:
        engine = connect(args.artifact, validate=args.validate)
    elif args.graph and args.schema:
        schema = AccessSchema.load(args.schema)
        graph = _load_graph(args.graph)
        engine = connect((graph, schema), validate=args.validate)
    else:
        print("run requires either --artifact or both --graph and --schema",
              file=sys.stderr)
        return 2
    graph = engine.graph
    try:
        run = engine.query(pattern, args.semantics)
    except NotEffectivelyBounded as exc:
        print(f"not effectively bounded: {exc}", file=sys.stderr)
        return 1
    if args.semantics == SUBGRAPH:
        print(f"matches: {len(run.answer)}")
        for match in run.answer[: args.limit]:
            print("  " + ", ".join(f"u{u}->{v}"
                                   for u, v in sorted(match.items())))
    else:
        pairs = relation_pairs(run.answer)
        print(f"match relation pairs: {len(pairs)}")
        for u, v in sorted(pairs)[: args.limit]:
            print(f"  u{u} -> {v}")
    stats = run.stats.as_dict()
    print(f"accessed: {stats['total_accessed']} items of |G| = {graph.size} "
          f"({stats['index_fetches']} index fetches)")
    return 0


def _cmd_compile(args) -> int:
    from repro.engine import inspect_artifact, render_inspection

    if args.inspect:
        print(render_inspection(inspect_artifact(args.inspect)))
        return 0
    if not args.out:
        print("compile requires --out (or --inspect ARTIFACT)",
              file=sys.stderr)
        return 2
    if args.graph and args.schema:
        schema = AccessSchema.load(args.schema)
        graph = _load_graph(args.graph)
    elif args.dataset:
        from repro.bench.datasets import get_dataset
        graph, schema = get_dataset(args.dataset, args.scale, seed=args.seed)
    else:
        print("compile requires either --graph and --schema, or --dataset",
              file=sys.stderr)
        return 2
    engine = QueryEngine.open(graph, schema, validate=args.validate)
    compiled = 0
    for pattern_path in args.pattern or ():
        pattern = _load_pattern(pattern_path)
        try:
            engine.prepare(pattern, args.semantics)
            compiled += 1
        except NotEffectivelyBounded as exc:
            # Cached as a negative verdict in the artifact; still useful.
            print(f"note: {pattern_path} is not effectively bounded ({exc})",
                  file=sys.stderr)
    manifest = engine.save(args.out, shards=args.shards)
    if args.shards:
        total_bytes = sum(meta["bytes"] for meta in manifest["files"].values())
        total_bytes += sum(meta["bytes"] for meta in manifest["shards"])
        partition = manifest["partition"]
        print(f"compiled sharded artifact {args.out}: "
              f"{manifest['graph']['nodes']} nodes, "
              f"{manifest['graph']['edges']} edges across "
              f"{partition['num_shards']} shards "
              f"({partition['cross_edges']} cross-shard edges), "
              f"{manifest['plans']['entries']} cached plans "
              f"({compiled} compiled now), {total_bytes} bytes")
    else:
        total_bytes = sum(meta["bytes"] for meta in manifest["files"].values())
        print(f"compiled artifact {args.out}: "
              f"{manifest['graph']['nodes']} nodes, "
              f"{manifest['graph']['edges']} edges, "
              f"{len(manifest['index'])} constraint indexes, "
              f"{manifest['plans']['entries']} cached plans "
              f"({compiled} compiled now), {total_bytes} bytes")
    return 0


def _cmd_extend(args) -> int:
    """Extend an artifact's access schema so a workload becomes bounded
    (Section V online: plan the greedy minimum M-bounded extension,
    build indexes for only the added constraints, save a new schema
    generation)."""
    from repro.engine import persist, plan_extension

    queries = [_load_pattern(path) for path in args.pattern or ()]
    if args.workload:
        for i, line in enumerate(
                Path(args.workload).read_text(encoding="utf-8").splitlines()):
            line = line.strip()
            if line and not line.startswith("#"):
                queries.append(parse_pattern(line, name=f"w{i}"))
    if not queries:
        print("extend requires at least one --pattern file or --workload",
              file=sys.stderr)
        return 2
    layout = persist.artifact_layout(args.artifact)
    found = persist.inspect_artifact(args.artifact)["format_version"]
    if found != persist.FORMAT_VERSION:
        # The v2 -> v3 migration path: old artifacts serve read-only; an
        # on-disk extension would silently invent a catalog history for
        # them, so it requires an explicit re-compile first.
        print(f"error: artifact at {args.artifact} has format version "
              f"{found} and opens read-only; re-compile it to version "
              f"{persist.FORMAT_VERSION} (repro compile) before extending",
              file=sys.stderr)
        return 1
    out = args.out or args.artifact
    # Extension rewrites per-shard indexes, so a sharded artifact must
    # open as a real shard session, not the merged sequential view.
    engine = QueryEngine.open_path(
        args.artifact,
        strategy="scatter" if layout == "sharded" else "auto")
    try:
        before_version = engine.schema_version
        before_cells = None if engine.sharded \
            else engine.schema_index.total_size
        plan = plan_extension(engine, queries, m=args.extend_budget,
                              semantics=args.semantics,
                              max_added=args.max_added)
        if plan.empty:
            print(f"workload already effectively bounded at schema "
                  f"v{before_version} (M={plan.m}); nothing to extend")
            if Path(out).resolve() != Path(args.artifact).resolve():
                # --out is a promise: the follow-up artifact must exist
                # even when no constraints were needed.
                if layout == "sharded":
                    persist.save_extended_sharded(engine, args.artifact, out)
                else:
                    engine.save(out)
                print(f"copied unchanged artifact to {out}")
            return 0
        report = engine.extend_schema(
            plan.added,
            provenance={"origin": "extend-cli", "m": plan.m,
                        "queries": len(queries),
                        "semantics": args.semantics})
        if layout == "sharded":
            persist.save_extended_sharded(engine, args.artifact, out)
        else:
            engine.save(out)
        print(f"extended {args.artifact} -> {out}: schema "
              f"v{before_version} -> v{report.version} (M={plan.m})")
        for constraint in report.added:
            print(f"  + {constraint}")
        delta = f"+{report.added_cells} cells"
        if before_cells is not None:
            delta += (f" ({before_cells} -> "
                      f"{before_cells + report.added_cells})")
        print(f"index-size delta: {delta} across {report.built} new "
              f"indexes, built in {report.build_seconds * 1000:.1f} ms")
        return 0
    finally:
        engine.close()


def _parse_shard_addrs(values) -> list[str]:
    """Flatten repeated/comma-separated ``--shard-addrs`` values."""
    addrs = []
    for value in values or ():
        addrs.extend(part.strip() for part in value.split(",")
                     if part.strip())
    return addrs


def _parse_addr(value: str) -> tuple[str, int]:
    """``host:port`` / bare port / bare host -> ``(host, port)``."""
    from repro.server import protocol

    if ":" in value:
        host, _, port = value.rpartition(":")
        return host or "127.0.0.1", int(port)
    if value.isdigit():
        return "127.0.0.1", int(value)
    return value, protocol.DEFAULT_PORT


def _cmd_metrics(args) -> int:
    """One ``metrics`` round-trip against a running ``repro serve``,
    rendered as an aligned table (or raw JSON with ``--json``)."""
    import json

    from repro.obs.report import render_metrics_table
    from repro.server.client import ServeClient

    host, port = _parse_addr(args.addr)
    with ServeClient(host, port,
                     connect_timeout=args.connect_timeout) as client:
        snapshot = client.metrics()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(f"metrics for {host}:{port}")
        print(render_metrics_table(snapshot))
    return 0


def _cmd_shard_serve(args) -> int:
    from repro.server import shardserver

    argv = ["--artifact", args.artifact, "--host", args.host,
            "--log-format", args.log_format,
            "--wire-format", args.wire_format]
    if args.delay_ms:
        argv += ["--delay-ms", str(args.delay_ms)]
    if args.delay_jitter_ms:
        argv += ["--delay-jitter-ms", str(args.delay_jitter_ms)]
    if args.task_cost_ms:
        argv += ["--task-cost-ms", str(args.task_cost_ms)]
    if args.shard_id is not None:
        argv += ["--shard-id", str(args.shard_id)]
    if args.port is not None:
        argv += ["--port", str(args.port)]
    else:
        # One conventional port per shard so N servers on one host never
        # need explicit --port flags.
        _, shard_id = shardserver.resolve_shard_artifact(args.artifact,
                                                         args.shard_id)
        from repro.server import protocol
        argv += ["--port", str(protocol.DEFAULT_SHARD_PORT + shard_id)]
    return shardserver.main(argv)


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.obs import TraceRecorder, setup_logging
    from repro.server import QueryServer, QueryService

    setup_logging(args.log_format)
    shard_addrs = _parse_shard_addrs(args.shard_addrs)
    if args.artifact:
        engine = connect(args.artifact, validate=args.validate,
                         workers=args.exec_workers,
                         backend="remote" if shard_addrs else "auto",
                         shard_addrs=shard_addrs,
                         wire_format=args.wire_format)
    elif args.exec_workers or shard_addrs:
        flag = "--exec-workers" if args.exec_workers else "--shard-addrs"
        print(f"{flag} requires --artifact pointing at a sharded "
              f"artifact (repro compile --shards N)", file=sys.stderr)
        return 2
    elif args.graph and args.schema:
        schema = AccessSchema.load(args.schema)
        engine = connect((_load_graph(args.graph), schema),
                         validate=args.validate)
    elif args.dataset:
        from repro.bench.datasets import get_dataset
        graph, schema = get_dataset(args.dataset, args.scale, seed=args.seed)
        engine = connect((graph, schema), validate=args.validate)
    else:
        print("serve requires --artifact, --graph and --schema, or "
              "--dataset", file=sys.stderr)
        return 2
    tracer = None
    if args.trace or args.slow_query_ms is not None:
        tracer = TraceRecorder(slow_ms=args.slow_query_ms)
    service = QueryService(engine, max_cost=args.max_cost,
                           workers=args.workers, max_batch=args.max_batch,
                           batch_window_ms=args.batch_window_ms,
                           max_queue=args.max_queue,
                           extend_budget=args.extend_budget,
                           extend_max_added=args.extend_max_added,
                           tracer=tracer)

    async def _serve() -> None:
        server = QueryServer(service, host=args.host, port=args.port)
        await server.start()
        metrics_http = None
        if args.metrics_port is not None:
            from repro.obs import MetricsHTTPServer
            metrics_http = MetricsHTTPServer(
                lambda: service.snapshot(queue_depth=server.queue_depth),
                host=args.host, port=args.metrics_port,
                recorder=tracer).start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except NotImplementedError:  # non-unix event loops
                pass
        budget = "unlimited" if args.max_cost is None \
            else f"{args.max_cost:g}"
        extend = "off" if args.extend_budget is None \
            else f"M={args.extend_budget}"
        scrape = "" if metrics_http is None \
            else f", metrics=http://{args.host}:{metrics_http.port}/metrics"
        print(f"serving on {server.host}:{server.port} "
              f"(workers={service.workers}, "
              f"exec-workers={engine.exec_workers}, max-cost={budget}, "
              f"extend={extend}, trace={'on' if tracer else 'off'}, "
              f"schema=v{engine.schema_version}, "
              f"graph={engine.graph.num_nodes} nodes "
              f"{engine.graph.num_edges} edges{scrape})", flush=True)
        try:
            await server.serve_until_shutdown()
        finally:
            if metrics_http is not None:
                metrics_http.stop()

    try:
        asyncio.run(_serve())
    finally:
        service.close()
    snapshot = service.metrics.snapshot()
    print(f"shutdown complete: answered={snapshot['answered']} "
          f"rejected={sum(snapshot['rejected'].values())} "
          f"rescued={snapshot['rescued']} "
          f"errors={snapshot['errors']} "
          f"bounded-fraction={snapshot['bounded_fraction']:.3f}")
    return 0


def _cmd_generate(args) -> int:
    from repro.bench.datasets import GENERATORS
    try:
        generator = GENERATORS[args.dataset]
    except KeyError:
        print(f"unknown dataset {args.dataset!r}; expected one of "
              f"{sorted(GENERATORS)}", file=sys.stderr)
        return 2
    graph, schema = generator(scale=args.scale, seed=args.seed)
    graph_path = f"{args.out}.graph.tsv"
    schema_path = f"{args.out}.schema.json"
    graph_io.write_tsv(graph, graph_path)
    schema.save(schema_path)
    print(f"wrote {graph_path} ({graph.num_nodes} nodes, "
          f"{graph.num_edges} edges)")
    print(f"wrote {schema_path} ({len(schema)} constraints)")
    return 0


def _cmd_profile(args) -> int:
    from repro.graph.stats import profile
    print(profile(_load_graph(args.graph)))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        engine_throughput,
        exp1_percentages,
        exp3_algorithm_times,
        extension_rescue,
        fig5_index_size,
        fig5_varying_a,
        fig5_varying_g,
        fig5_varying_q,
        fig6_instance_bounded,
        obs_overhead,
        remote_fleet,
        render_table,
        serve_load,
        shard_scaling,
        warm_start,
    )
    per_dataset = {
        "fig5-varying-g": fig5_varying_g,
        "fig5-varying-q": fig5_varying_q,
        "fig5-varying-a": fig5_varying_a,
        "fig5-index-size": fig5_index_size,
        "fig6-instance": fig6_instance_bounded,
        "extension-rescue": extension_rescue,
        "remote-fleet": remote_fleet,
    }
    #: Experiments that can serve from a compiled artifact (--artifact).
    artifact_aware = {
        "engine-throughput": engine_throughput,
        "warm-start": warm_start,
        "serve-load": serve_load,
        "shard-scaling": shard_scaling,
        "obs-overhead": obs_overhead,
    }
    experiments = args.experiment
    known = {"exp1", "exp3", *per_dataset, *artifact_aware}
    for name in experiments:
        if name not in known:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
    # One process, one memoized dataset build: every experiment in the
    # list shares the repro.bench.datasets caches (the CI smoke path).
    for name in experiments:
        if name == "exp1":
            rows = exp1_percentages(scale=args.scale)
        elif name == "exp3":
            rows = exp3_algorithm_times(scale=args.scale)
        elif name in artifact_aware:
            rows = artifact_aware[name](args.dataset, scale=args.scale,
                                        artifact=args.artifact)
        else:
            rows = per_dataset[name](args.dataset, scale=args.scale)
        print(render_table(rows, title=f"{name} "
                                       f"(dataset={args.dataset}, "
                                       f"scale={args.scale})"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bounded evaluation of graph pattern queries "
                    "(Cao, Fan, Huai, Huang; ICDE 2015)")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_semantics(p):
        p.add_argument("--semantics", choices=SEMANTICS, default=SUBGRAPH)

    p_check = sub.add_parser("check", help="decide effective boundedness")
    p_check.add_argument("--pattern", required=True)
    p_check.add_argument("--schema", required=True)
    add_semantics(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_plan = sub.add_parser("plan", help="generate a query plan")
    p_plan.add_argument("--pattern", required=True)
    p_plan.add_argument("--schema", required=True)
    add_semantics(p_plan)
    p_plan.set_defaults(func=_cmd_plan)

    p_run = sub.add_parser("run", help="evaluate a query with bounded access")
    p_run.add_argument("--graph")
    p_run.add_argument("--pattern", required=True)
    p_run.add_argument("--schema")
    p_run.add_argument("--artifact",
                       help="warm-start from a compiled artifact directory "
                            "instead of --graph/--schema")
    p_run.add_argument("--limit", type=int, default=10,
                       help="max matches to print")
    p_run.add_argument("--validate", action="store_true",
                       help="verify G |= A before running")
    add_semantics(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_compile = sub.add_parser(
        "compile", help="build a graph+schema into a persistent artifact")
    p_compile.add_argument("--graph", help="graph file (TSV/JSON)")
    p_compile.add_argument("--schema", help="schema JSON")
    p_compile.add_argument("--dataset",
                           help="generate this dataset stand-in instead of "
                                "reading --graph/--schema")
    p_compile.add_argument("--scale", type=float, default=0.05)
    p_compile.add_argument("--seed", type=int, default=0)
    p_compile.add_argument("--out", help="artifact output directory")
    p_compile.add_argument("--pattern", action="append",
                           help="pattern file to pre-compile into the "
                                "artifact's plan cache (repeatable)")
    p_compile.add_argument("--shards", type=int, default=0,
                           help="write a sharded artifact with this many "
                                "halo shards (serve it with "
                                "`repro serve --exec-workers N`)")
    p_compile.add_argument("--validate", action="store_true",
                           help="verify G |= A before saving")
    p_compile.add_argument("--inspect", metavar="ARTIFACT",
                           help="print metadata of an existing artifact "
                                "and exit (format version, graph stats, "
                                "index sizes, cached plans, checksums)")
    add_semantics(p_compile)
    p_compile.set_defaults(func=_cmd_compile)

    p_extend = sub.add_parser(
        "extend", help="extend an artifact's access schema so a workload "
                       "becomes bounded (M-bounded extension, Section V)")
    p_extend.add_argument("--artifact", required=True,
                          help="compiled artifact directory (single or "
                               "sharded) to extend")
    p_extend.add_argument("--pattern", action="append",
                          help="pattern file the extension must make "
                               "bounded (repeatable)")
    p_extend.add_argument("--workload",
                          help="text file with one DSL pattern per line "
                               "(blank lines and # comments skipped)")
    p_extend.add_argument("--extend-budget", type=int, default=None,
                          help="the extension bound M (default: the "
                               "smallest M that works, via find_min_m)")
    p_extend.add_argument("--max-added", type=int, default=None,
                          help="fail if the extension needs more than "
                               "this many new constraints")
    p_extend.add_argument("--out",
                          help="write the extended artifact here "
                               "(default: extend in place)")
    add_semantics(p_extend)
    p_extend.set_defaults(func=_cmd_extend)

    p_serve = sub.add_parser(
        "serve", help="serve pattern queries concurrently over TCP")
    p_serve.add_argument("--artifact",
                         help="warm-start the serving engine from a "
                              "compiled artifact directory (the intended "
                              "deployment path)")
    p_serve.add_argument("--graph", help="graph file (TSV/JSON)")
    p_serve.add_argument("--schema", help="schema JSON")
    p_serve.add_argument("--dataset",
                         help="serve a generated dataset stand-in instead")
    p_serve.add_argument("--scale", type=float, default=0.05)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 binds an ephemeral port, "
                              "printed on startup)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="worker threads executing query batches")
    p_serve.add_argument("--exec-workers", type=int, default=0,
                         help="worker *processes* executing shard fetches "
                              "(requires a sharded --artifact; 0 runs "
                              "shards, if any, in-process)")
    p_serve.add_argument("--max-cost", type=float, default=None,
                         help="admission budget: reject queries whose "
                              "worst-case access bound exceeds this "
                              "(default: admit any bounded query)")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="max requests funnelled into one "
                              "query_batch call")
    p_serve.add_argument("--batch-window-ms", type=float, default=0.0,
                         help="extra wait for stragglers once the queue "
                              "is drained (0 = adaptive batching only)")
    p_serve.add_argument("--max-queue", type=int, default=256,
                         help="queued-request bound before load shedding")
    p_serve.add_argument("--extend-budget", type=int, default=None,
                         help="rescue unbounded queries by extending the "
                              "schema online with constraints bounded by "
                              "M (default: rescue disabled)")
    p_serve.add_argument("--extend-max-added", type=int, default=None,
                         help="max constraints one rescue may add")
    p_serve.add_argument("--validate", action="store_true",
                         help="verify G |= A before serving")
    p_serve.add_argument("--shard-addrs", action="append", default=[],
                         help="host:port of a running `repro shard-serve` "
                              "per shard, in shard order (repeatable, or "
                              "one comma-separated list); serves scatter "
                              "waves from the fleet instead of local "
                              "shards (requires a sharded --artifact)")
    p_serve.add_argument("--wire-format",
                         choices=("auto", "json", "binary"),
                         default="auto",
                         help="shard-fleet codec preference: auto "
                              "negotiates packed binary frames when both "
                              "ends can, json forces JSON lines, binary "
                              "fails the handshake on a JSON-only fleet "
                              "(default: auto)")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="expose a Prometheus scrape endpoint on "
                              "this HTTP port (0 binds an ephemeral one; "
                              "GET /metrics, plus /slow with --trace)")
    p_serve.add_argument("--trace", action="store_true",
                         help="record one span tree per request "
                              "(admission -> queue -> batch -> waves -> "
                              "per-shard RPCs); answers are unaffected")
    p_serve.add_argument("--slow-query-ms", type=float, default=None,
                         help="log traced requests slower than this to "
                              "the repro.slowquery logger (implies "
                              "--trace)")
    p_serve.add_argument("--log-format", choices=("text", "json"),
                         default="text",
                         help="structured stderr logging; json emits one "
                              "object per line with trace_id stamped")
    p_serve.set_defaults(func=_cmd_serve)

    p_shard = sub.add_parser(
        "shard-serve",
        help="serve one shard of a sharded artifact over TCP")
    p_shard.add_argument("--artifact", required=True,
                         help="per-shard directory (<artifact>/shard-NNNN)")
    p_shard.add_argument("--shard-id", type=int, default=None,
                         help="shard id (inferred from --artifact when it "
                              "names a shard-NNNN directory)")
    p_shard.add_argument("--host", default="127.0.0.1")
    p_shard.add_argument("--port", type=int, default=None,
                         help="TCP port (default: 8650 + shard id)")
    p_shard.add_argument("--wire-format",
                         choices=("auto", "json", "binary"),
                         default="auto",
                         help="codecs offered at the hello handshake: "
                              "auto prefers packed binary frames, json "
                              "forces JSON lines (default: auto)")
    p_shard.add_argument("--log-format", choices=("text", "json"),
                         default="text",
                         help="structured stderr logging for the shard "
                              "server")
    p_shard.add_argument("--delay-ms", type=float, default=0.0,
                         help="inject this scatter-response latency "
                              "(fault injection for pipelining tests and "
                              "the skewed-fleet benchmark; answers are "
                              "unaffected)")
    p_shard.add_argument("--delay-jitter-ms", type=float, default=0.0,
                         help="add up to this much uniform jitter on top "
                              "of --delay-ms")
    p_shard.add_argument("--task-cost-ms", type=float, default=0.0,
                         help="inject this serial compute cost per "
                              "scatter work unit (combos for fetch/edge "
                              "tasks, 1 per probe)")
    p_shard.set_defaults(func=_cmd_shard_serve)

    p_metrics = sub.add_parser(
        "metrics",
        help="fetch and pretty-print a running server's metrics snapshot")
    p_metrics.add_argument("addr", nargs="?", default="127.0.0.1:8642",
                           help="host:port of the front-end server "
                                "(default 127.0.0.1:8642)")
    p_metrics.add_argument("--json", action="store_true",
                           help="print the raw snapshot JSON instead of "
                                "the table")
    p_metrics.add_argument("--connect-timeout", type=float, default=5.0)
    p_metrics.set_defaults(func=_cmd_metrics)

    p_gen = sub.add_parser("generate", help="emit a synthetic dataset")
    p_gen.add_argument("--dataset", required=True)
    p_gen.add_argument("--scale", type=float, default=0.05)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output path prefix")
    p_gen.set_defaults(func=_cmd_generate)

    p_profile = sub.add_parser(
        "profile", help="profile a graph (constraint-discovery statistics)")
    p_profile.add_argument("--graph", required=True)
    p_profile.set_defaults(func=_cmd_profile)

    p_bench = sub.add_parser("bench", help="run paper experiments")
    p_bench.add_argument("--experiment", required=True, action="append",
                         help="exp1 | exp3 | fig5-varying-g | fig5-varying-q"
                              " | fig5-varying-a | fig5-index-size"
                              " | fig6-instance | engine-throughput"
                              " | warm-start | serve-load | shard-scaling"
                              " | remote-fleet | extension-rescue"
                              " | obs-overhead; "
                              "repeatable — experiments in one invocation "
                              "share one dataset build")
    p_bench.add_argument("--dataset", default="imdb")
    p_bench.add_argument("--scale", type=float, default=0.05)
    p_bench.add_argument("--artifact",
                         help="compiled artifact for artifact-aware "
                              "experiments (engine-throughput, warm-start, "
                              "serve-load)")
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
