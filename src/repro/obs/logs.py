"""Structured logging for the serving stack.

Every server-side component logs under the one ``repro`` namespace
(``repro.server``, ``repro.shardserver``, ``repro.slowquery``, ...).
:func:`setup_logging` configures that namespace once per process —
``repro serve --log-format json`` and ``repro shard-serve --log-format
json`` call it — and installs a filter that stamps the active trace id
(:func:`repro.obs.trace.current_span`) on every record, so request-scoped
log lines from the event loop, worker threads, and the slow-query dump
all correlate with the span tree.
"""

from __future__ import annotations

import json
import logging
import sys
import time

from repro.obs.trace import current_span


class TraceIdFilter(logging.Filter):
    """Stamp ``record.trace_id`` from the context-active span ('-' when
    the log line is not request-scoped)."""

    def filter(self, record: logging.LogRecord) -> bool:
        span = current_span()
        record.trace_id = span.trace_id if span is not None else "-"
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, trace_id."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 6),
            "time": time.strftime("%Y-%m-%dT%H:%M:%S",
                                  time.gmtime(record.created))
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", "-")
        if trace_id != "-":
            doc["trace_id"] = trace_id
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, separators=(",", ":"))


TEXT_FORMAT = "%(asctime)s %(levelname)s %(name)s [%(trace_id)s] %(message)s"


def setup_logging(fmt: str = "text", *, level: int = logging.INFO,
                  stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree for serving.

    Idempotent per process: reconfigures (rather than stacks) the
    handler, so tests and ``serve`` + ``shard-serve`` in one process
    behave. Returns the root ``repro`` logger.
    """
    if fmt not in ("text", "json"):
        raise ValueError(f"log format must be 'text' or 'json', got {fmt!r}")
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    if fmt == "json":
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(TEXT_FORMAT,
                                               datefmt="%H:%M:%S"))
    handler.addFilter(TraceIdFilter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


__all__ = ["JsonFormatter", "TraceIdFilter", "setup_logging"]
