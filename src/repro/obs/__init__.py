"""Observability: distributed tracing, fleet telemetry, and export.

Three small pieces, one contract (see DESIGN.md § Observability):

* :mod:`repro.obs.trace` — span trees over the request path, propagated
  in-process via ``contextvars`` and across the shard wire as a
  ``trace`` field; near-zero-cost when no recorder is installed.
* :mod:`repro.obs.promexport` — Prometheus text rendering of the
  ``metrics`` snapshot plus the scrape endpoint behind
  ``repro serve --metrics-port``.
* :mod:`repro.obs.logs` — structured (text/JSON) logging under the
  ``repro.*`` namespace with trace ids stamped on request-scoped lines.
"""

from repro.obs.logs import setup_logging
from repro.obs.promexport import MetricsHTTPServer, render_prometheus
from repro.obs.report import render_metrics_table
from repro.obs.trace import (
    Span,
    Trace,
    TraceRecorder,
    activate,
    bind,
    child_span,
    current_span,
)

__all__ = [
    "MetricsHTTPServer",
    "Span",
    "Trace",
    "TraceRecorder",
    "activate",
    "bind",
    "child_span",
    "current_span",
    "render_metrics_table",
    "render_prometheus",
    "setup_logging",
]
