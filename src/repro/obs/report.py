"""Human-readable rendering of a ``metrics`` snapshot.

One renderer shared by ``repro metrics`` and the load client's
``--metrics`` flag, so every consumer prints the same table for the
same snapshot dict (the JSON from :meth:`QueryService.snapshot` /
:meth:`ServeClient.metrics`). Missing keys render as absent rows, not
errors — older servers reply with smaller snapshots.
"""

from __future__ import annotations

__all__ = ["render_metrics_table"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def _rows(section: str, pairs: list[tuple[str, object]],
          out: list[str]) -> None:
    pairs = [(key, value) for key, value in pairs if value is not None]
    if not pairs:
        return
    out.append(section)
    width = max(len(key) for key, _ in pairs)
    for key, value in pairs:
        out.append(f"  {key:<{width}}  {_fmt(value)}")


def render_metrics_table(snapshot: dict) -> str:
    """Render the snapshot as aligned ``section / key value`` text."""
    out: list[str] = []
    get = snapshot.get

    _rows("traffic", [
        ("requests", get("requests")),
        ("admitted", get("admitted")),
        ("answered", get("answered")),
        ("errors", get("errors")),
        ("deadline_expired", get("deadline_expired")),
        ("qps", get("qps")),
        ("recent_qps", get("recent_qps")),
        ("uptime_s", get("uptime_s")),
        ("window_size", get("window_size")),
    ], out)

    rejected = get("rejected") or {}
    _rows("rejected", sorted(rejected.items()), out)

    latency = get("latency_ms") or {}
    _rows("latency_ms", [(q, latency.get(q))
                         for q in ("p50", "p90", "p99", "max")], out)

    _rows("batching", [
        ("batches", get("batches")),
        ("batched_requests", get("batched_requests")),
        ("mean_batch_size", get("mean_batch_size")),
        ("queue_depth", get("queue_depth")),
        ("workers", get("workers")),
    ], out)

    bound = get("bound_utilization") or {}
    if bound.get("samples"):
        _rows("bound_utilization", [
            ("samples", bound.get("samples")),
            ("mean_utilization", bound.get("mean_utilization")),
            ("bound_sum", bound.get("bound_sum")),
            ("actual_sum", bound.get("actual_sum")),
            ("violations", bound.get("violations")),
        ], out)
        buckets = bound.get("buckets") or []
        if buckets:
            def _le(le) -> str:
                if le is None or isinstance(le, str) \
                        or le == float("inf"):
                    return "+Inf"
                return _fmt(le)
            hist = " ".join(f"le{_le(le)}:{n}" for le, n in buckets)
            out.append(f"  {'histogram':<16}  {hist}")

    _rows("rescue", [
        ("rescued", get("rescued")),
        ("rescue_failed", get("rescue_failed")),
        ("rescued_constraints", get("rescued_constraints")),
        ("extend_budget", get("extend_budget")),
    ], out)

    cache = get("plan_cache") or {}
    _rows("plan_cache", [
        ("hits", cache.get("hits")),
        ("misses", cache.get("misses")),
        ("hit_rate", cache.get("hit_rate")),
        ("size", cache.get("size")),
    ], out)

    backend = dict(get("backend") or {})
    wire = backend.pop("wire", None) or {}
    wire_by_shard = backend.pop("wire_by_shard", None) or ()
    _rows("backend", sorted(backend.items()), out)

    if wire:
        _rows("wire", [
            ("codec", wire.get("codec")),
            ("bytes_sent", wire.get("bytes_sent")),
            ("bytes_received", wire.get("bytes_received")),
            ("encode_ms", wire.get("encode_ms")),
        ], out)
    for entry in wire_by_shard:
        if not isinstance(entry, dict):
            continue
        _rows(f"wire[{entry.get('shard_id', '?')}]",
              sorted((k, v) for k, v in entry.items() if k != "shard_id"),
              out)

    for shard in get("shards") or ():
        if not isinstance(shard, dict):
            continue
        if "error" in shard:
            _rows(f"shard[{shard.get('shard_id', '?')}]",
                  [("error", shard["error"])], out)
            continue
        shard = dict(shard)
        shard_wire = shard.pop("wire", None) or {}
        shard_id = shard.get("shard_id", "?")
        _rows(f"shard[{shard_id}]",
              sorted((k, v) for k, v in shard.items() if k != "shard_id"),
              out)
        if shard_wire:
            _rows(f"shard[{shard_id}].wire", [
                ("format", shard_wire.get("format")),
                ("bytes_received", shard_wire.get("bytes_received")),
                ("bytes_sent", shard_wire.get("bytes_sent")),
                ("binary_frames_received",
                 shard_wire.get("binary_frames_received")),
                ("negotiations",
                 ",".join(f"{codec}:{count}" for codec, count in
                          sorted((shard_wire.get("negotiations")
                                  or {}).items()))),
            ], out)

    tracing = get("tracing") or {}
    _rows("tracing", sorted(tracing.items()), out)

    engine = get("engine") or {}
    _rows("engine", [
        ("nodes", engine.get("nodes")),
        ("edges", engine.get("edges")),
        ("constraints", engine.get("constraints")),
        ("schema_version", engine.get("schema_version")),
        ("sharded", engine.get("sharded")),
        ("exec_workers", engine.get("exec_workers")),
        ("artifact", engine.get("artifact")),
    ], out)

    _rows("admission", [
        ("max_cost", get("max_cost")),
        ("bounded_fraction", get("bounded_fraction")),
    ], out)

    return "\n".join(out)
