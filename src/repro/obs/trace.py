"""Lightweight distributed tracing: span trees over the request path.

A **span** is one timed step of one request (admission, queue wait, a
scatter wave, one per-shard RPC, ...); a **trace** is the tree of spans
sharing one ``trace_id``, rooted at request arrival. The model is
deliberately tiny — no clocks beyond ``perf_counter``, no export
pipeline, no sampling decisions at span-creation time — because the
contract that matters is the overhead one:

* **Near-zero cost when disabled.** Instrumented code never asks "is
  tracing on?" — it opens a :class:`child_span`, which no-ops unless a
  parent span is *active in the current context*. With no recorder
  installed nothing is ever active, so the disabled cost is one
  ``ContextVar`` read per instrumentation point (gated in CI at <5% of
  prepared qps by ``benchmarks/bench_obs.py``).
* **Byte-identical answers.** Spans observe; they never touch plans,
  answers or :class:`~repro.accounting.AccessStats` (property-tested in
  ``tests/test_obs.py``).

Propagation is context-local (:func:`activate` / :class:`child_span`
nest through ``contextvars``, so asyncio tasks are isolated for free)
plus explicit at the two places a request crosses an execution boundary:
worker threads receive the request's span through
:class:`~repro.server.service.AdmittedQuery` (or :func:`bind`), and
remote shard servers receive ``{"trace_id", "span_id"}`` as the
``trace`` wire field (see :mod:`repro.server.protocol`).
"""

from __future__ import annotations

import itertools
import logging
import os
import threading
import time
from collections import deque
from contextvars import ContextVar

#: Process-unique prefix so trace ids from different front-ends never
#: collide in merged logs (pid + monotonic start, not a secret).
_TRACE_PREFIX = f"{os.getpid():x}-{int(time.monotonic() * 1000) & 0xffffff:x}"
_trace_ids = itertools.count(1)

#: The active span of the current context (thread / asyncio task).
#: ``None`` means tracing is off for this code path — the common case.
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_span", default=None)

_slow_log = logging.getLogger("repro.slowquery")


def current_span() -> "Span | None":
    """The span active in this context, or ``None`` (tracing off)."""
    return _CURRENT.get()


class Span:
    """One timed step of one trace.

    Created started; :meth:`end` stamps the duration and records the
    span on its trace (idempotent). ``attrs`` is a plain dict — set
    values via :meth:`set`.
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "started_at",
                 "_t0", "duration_s", "attrs")

    def __init__(self, trace: "Trace", span_id: int, parent_id: int | None,
                 name: str, attrs: dict):
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.duration_s: float | None = None
        self.attrs = attrs

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    def set(self, **attrs) -> "Span":
        """Attach attributes (merged; later wins)."""
        self.attrs.update(attrs)
        return self

    def child(self, name: str, **attrs) -> "Span":
        """Start a child span (does not change the active context)."""
        return self.trace.span(name, parent=self, **attrs)

    def end(self) -> "Span":
        """Stamp the duration and record the span (idempotent)."""
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._t0
            self.trace.record(self)
        return self

    @property
    def duration_ms(self) -> float:
        elapsed = self.duration_s if self.duration_s is not None \
            else time.perf_counter() - self._t0
        return elapsed * 1000.0

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "started_at": self.started_at,
                "duration_ms": round(self.duration_ms, 3),
                "attrs": dict(self.attrs)}

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, {self.duration_ms:.2f} ms)")


class Trace:
    """One request's span tree: a ``trace_id`` plus finished spans.

    Spans may end on any thread (worker batches, shard RPC rounds);
    ``record`` appends under the GIL's list-append atomicity, so no lock
    is needed on the hot path.
    """

    __slots__ = ("trace_id", "recorder", "spans", "root", "_span_ids")

    def __init__(self, recorder: "TraceRecorder | None",
                 trace_id: str | None = None):
        self.trace_id = trace_id or f"{_TRACE_PREFIX}-{next(_trace_ids):x}"
        self.recorder = recorder
        self.spans: list[Span] = []
        self.root: Span | None = None
        self._span_ids = itertools.count(1)

    def span(self, name: str, parent: Span | None = None, **attrs) -> Span:
        span = Span(self, next(self._span_ids),
                    parent.span_id if parent is not None else None,
                    name, attrs)
        if self.root is None:
            self.root = span
        return span

    def record(self, span: Span) -> None:
        self.spans.append(span)

    def finish(self) -> "Trace":
        """End the root (if still open) and hand the trace to its
        recorder (slow-query log + retention)."""
        if self.root is not None:
            self.root.end()
        if self.recorder is not None:
            self.recorder.finish(self)
        return self

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id,
                "spans": [span.as_dict() for span in self.spans]}

    def render(self) -> str:
        """The span tree as indented text (the slow-query dump)."""
        by_parent: dict[int | None, list[Span]] = {}
        for span in self.spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        lines: list[str] = [f"trace {self.trace_id}"]

        def walk(parent_id: int | None, depth: int) -> None:
            for span in sorted(by_parent.get(parent_id, ()),
                               key=lambda s: s.span_id):
                attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
                lines.append(f"{'  ' * depth}- {span.name} "
                             f"{span.duration_ms:.2f} ms"
                             + (f" [{attrs}]" if attrs else ""))
                walk(span.span_id, depth + 1)

        walk(None, 1)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Trace({self.trace_id!r}, spans={len(self.spans)})"


class TraceRecorder:
    """Creates traces and retains the most recent finished ones.

    Parameters
    ----------
    max_traces:
        Finished traces kept in memory (a bounded deque — the debugging
        window, not an export buffer).
    slow_ms:
        Root-span duration above which a finished trace is dumped to the
        ``repro.slowquery`` logger and retained in :attr:`slow`.
        ``None`` disables the slow-query log.
    slow_sample:
        Log every Nth slow trace (1 = every one). Counter-based, not
        random: deterministic under test and in replayed workloads.
    """

    def __init__(self, *, max_traces: int = 64, slow_ms: float | None = None,
                 slow_sample: int = 1):
        if slow_sample < 1:
            raise ValueError(f"slow_sample must be >= 1, got {slow_sample}")
        self.slow_ms = slow_ms
        self.slow_sample = slow_sample
        self._lock = threading.Lock()
        self._recent: deque[Trace] = deque(maxlen=max_traces)
        self._slow: deque[Trace] = deque(maxlen=max_traces)
        self.traces_finished = 0
        self.slow_queries = 0

    def trace(self, name: str, **attrs) -> Span:
        """Start a new trace; returns its root span (already started).
        Activate it with :func:`activate` so :class:`child_span` callers
        below see it."""
        return Trace(self).span(name, **attrs)

    def finish(self, trace: Trace) -> None:
        root = trace.root
        with self._lock:
            self.traces_finished += 1
            self._recent.append(trace)
            is_slow = (self.slow_ms is not None and root is not None
                       and root.duration_ms >= self.slow_ms)
            if not is_slow:
                return
            self.slow_queries += 1
            self._slow.append(trace)
            sampled = (self.slow_queries % self.slow_sample) == 0
        if sampled:
            _slow_log.warning(
                "slow query: %s took %.1f ms (threshold %.1f ms)\n%s",
                root.name, root.duration_ms, self.slow_ms, trace.render())

    def recent(self) -> list[Trace]:
        with self._lock:
            return list(self._recent)

    def slow(self) -> list[Trace]:
        with self._lock:
            return list(self._slow)

    def snapshot(self) -> dict:
        """Recorder counters for the metrics endpoint."""
        with self._lock:
            return {"enabled": True,
                    "traces_finished": self.traces_finished,
                    "slow_queries": self.slow_queries,
                    "slow_ms": self.slow_ms,
                    "retained": len(self._recent)}

    def __repr__(self) -> str:
        return (f"TraceRecorder(finished={self.traces_finished}, "
                f"slow={self.slow_queries})")


class activate:
    """Context manager making ``span`` the active parent for nested
    :class:`child_span` calls in this context. ``activate(None)`` is a
    no-op, so callers can pass an optional span straight through."""

    __slots__ = ("span", "_token")

    def __init__(self, span: Span | None):
        self.span = span
        self._token = None

    def __enter__(self) -> Span | None:
        if self.span is not None:
            self._token = _CURRENT.set(self.span)
        return self.span

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)


class child_span:
    """Open a child of the active span for the duration of a ``with``
    block — the one instrumentation primitive hot paths use.

    With no active span (tracing disabled, or a code path outside any
    request) this yields ``None`` and does nothing: the disabled cost is
    a ``ContextVar`` read. Class-based rather than a generator for the
    same reason.
    """

    __slots__ = ("name", "attrs", "span", "_token")

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs
        self.span = None
        self._token = None

    def __enter__(self) -> Span | None:
        parent = _CURRENT.get()
        if parent is None:
            return None
        self.span = parent.trace.span(self.name, parent=parent,
                                      **self.attrs)
        self._token = _CURRENT.set(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.span is not None:
            _CURRENT.reset(self._token)
            if exc_type is not None:
                self.span.set(error=exc_type.__name__)
            self.span.end()


def bind(span: Span | None, fn):
    """Wrap ``fn`` so it runs with ``span`` active — the explicit hand-off
    for work dispatched to another thread (``run_in_executor`` does not
    propagate context). ``bind(None, fn)`` returns ``fn`` unchanged."""
    if span is None:
        return fn

    def bound(*args, **kwargs):
        with activate(span):
            return fn(*args, **kwargs)

    return bound


__all__ = [
    "Span",
    "Trace",
    "TraceRecorder",
    "activate",
    "bind",
    "child_span",
    "current_span",
]
