"""Prometheus text-format export of a service metrics snapshot.

:func:`render_prometheus` turns the JSON snapshot the ``metrics`` op
already serves (front-end counters + merged per-shard fleet snapshots +
bound-utilization histogram) into Prometheus exposition text, and
:class:`MetricsHTTPServer` serves it on ``GET /metrics`` from a
background thread — ``repro serve --metrics-port`` wires the two
together. Rendering is read-only over one snapshot dict: no state, no
client library, no new dependency.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

_log = logging.getLogger("repro.metrics")

#: Snapshot keys exported as plain ``repro_<key>`` gauges/counters when
#: present (counter-like names get a ``_total`` suffix).
_COUNTERS = ("requests", "admitted", "answered", "deadline_expired",
             "errors", "batches", "batched_requests", "reloads",
             "rescued", "rescue_failed", "rescued_constraints")
_GAUGES = ("qps", "recent_qps", "bounded_fraction", "uptime_s",
           "mean_batch_size", "queue_depth", "window_size")

#: Per-shard integer fields from the fleet ``shards`` block exported as
#: ``repro_shard_<field>{shard="..."}``.
_SHARD_FIELDS = ("requests", "scatter_rounds", "tasks_handled",
                 "extensions_applied", "reloads", "traced_requests")

#: Backend scatter counters (front-end side) from the ``backend`` block.
_BACKEND_FIELDS = ("scatter_rounds", "tasks_scattered", "scatter_messages",
                   "scatter_messages_broadcast", "reconnects",
                   "rounds_overlapped")


def _escape(value) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _num(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Writer:
    """Accumulates exposition lines, emitting HELP/TYPE once per metric."""

    def __init__(self):
        self.lines: list[str] = []
        self._seen: set[str] = set()

    def sample(self, name: str, value, labels: dict | None = None, *,
               kind: str = "gauge", help_text: str = "") -> None:
        if value is None:
            return
        if name not in self._seen:
            self._seen.add(name)
            if help_text:
                self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {kind}")
        label_s = ""
        if labels:
            inner = ",".join(f'{k}="{_escape(v)}"'
                             for k, v in sorted(labels.items()))
            label_s = "{" + inner + "}"
        self.lines.append(f"{name}{label_s} {_num(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(snapshot: dict) -> str:
    """Render one service metrics snapshot as Prometheus text.

    Tolerant of partial snapshots (a minimal :class:`ServerMetrics`
    snapshot renders fine; fleet/engine blocks are exported only when
    present), so the same renderer serves unit tests, single-process
    services, and remote-shard fleets.
    """
    w = _Writer()
    for key in _COUNTERS:
        w.sample(f"repro_{key}_total", snapshot.get(key), kind="counter")
    for key in _GAUGES:
        w.sample(f"repro_{key}", snapshot.get(key))
    for reason, count in sorted(snapshot.get("rejected", {}).items()):
        w.sample("repro_rejected_total", count, {"reason": reason},
                 kind="counter",
                 help_text="Requests rejected at admission, by reason.")
    for quantile, value in sorted(snapshot.get("latency_ms", {}).items()):
        w.sample("repro_latency_ms", value, {"quantile": str(quantile)},
                 help_text="Answer latency over the sliding window, ms.")

    # Bound telemetry: the paper's worst-case access bound vs what the
    # query actually touched, as a cumulative utilization histogram.
    bound = snapshot.get("bound_utilization")
    if bound:
        cumulative = 0
        for le, count in bound.get("buckets", ()):
            cumulative += count
            infinite = isinstance(le, str) or le == float("inf")
            w.sample("repro_bound_utilization_bucket", cumulative,
                     {"le": "+Inf" if infinite else _num(le)},
                     kind="histogram",
                     help_text=("Actual accesses / admitted worst-case "
                                "bound, per answered query."))
        w.sample("repro_bound_utilization_sum", bound.get("utilization_sum"))
        w.sample("repro_bound_utilization_count", bound.get("samples"))
        w.sample("repro_bound_violations_total", bound.get("violations"),
                 kind="counter",
                 help_text=("Answered queries whose actual accesses "
                            "exceeded the admitted bound (should stay 0)."))
        w.sample("repro_bound_admitted_accesses_total",
                 bound.get("bound_sum"), kind="counter")
        w.sample("repro_bound_actual_accesses_total",
                 bound.get("actual_sum"), kind="counter")

    backend = snapshot.get("backend")
    if backend:
        w.sample("repro_backend_num_shards", backend.get("num_shards"))
        for field in _BACKEND_FIELDS:
            w.sample(f"repro_backend_{field}_total", backend.get(field),
                     kind="counter")
        w.sample("repro_scatter_dedup_hits_total",
                 backend.get("scatter_dedup_hits"), kind="counter",
                 help_text=("Cross-execution fetch/edge cells answered "
                            "from an in-flight duplicate instead of a "
                            "second shard round trip."))
        # Front-end wire telemetry: bytes each way per shard connection
        # plus cumulative request-encode time, negotiated codec as an
        # info-style gauge.
        for entry in backend.get("wire_by_shard", ()):
            if not isinstance(entry, dict):
                continue
            shard_label = str(entry.get("shard_id", "?"))
            for direction, field in (("sent", "bytes_sent"),
                                     ("received", "bytes_received")):
                w.sample("repro_shard_wire_bytes_total", entry.get(field),
                         {"shard": shard_label, "direction": direction},
                         kind="counter",
                         help_text=("Bytes on the wire per shard "
                                    "connection, by direction "
                                    "(front-end side)."))
            w.sample("repro_shard_wire_encode_ms_total",
                     entry.get("encode_ms"), {"shard": shard_label},
                     kind="counter",
                     help_text=("Cumulative request-encode time per "
                                "shard connection, ms."))
            w.sample("repro_shard_wire_codec", 1,
                     {"shard": shard_label,
                      "codec": str(entry.get("codec", "json"))},
                     help_text=("Negotiated wire codec per shard "
                                "connection (info gauge)."))
            w.sample("repro_shard_inflight", entry.get("inflight"),
                     {"shard": shard_label},
                     help_text=("Requests currently awaiting a response "
                                "on the shard connection."))
            w.sample("repro_shard_inflight_peak", entry.get("inflight_peak"),
                     {"shard": shard_label},
                     help_text=("High-water mark of concurrently "
                                "in-flight requests per shard "
                                "connection."))

    for shard in snapshot.get("shards", ()):
        if not isinstance(shard, dict):
            continue
        labels = {"shard": str(shard.get("shard_id", "?"))}
        if "error" in shard:
            w.sample("repro_shard_unreachable", 1, labels,
                     help_text="Shard whose metrics fan-out failed.")
            continue
        for field in _SHARD_FIELDS:
            w.sample(f"repro_shard_{field}_total", shard.get(field), labels,
                     kind="counter",
                     help_text=f"Per-shard-server {field}.")
        w.sample("repro_shard_scatter_seconds_total",
                 shard.get("scatter_seconds"), labels, kind="counter")
        w.sample("repro_shard_uptime_s", shard.get("uptime_s"), labels)
        wire = shard.get("wire")
        if isinstance(wire, dict):
            # Server-side byte counters, labelled from the shard's own
            # perspective (its "sent" is the front-end's "received").
            for direction, field in (("sent", "bytes_sent"),
                                     ("received", "bytes_received")):
                w.sample("repro_shard_server_wire_bytes_total",
                         wire.get(field),
                         {"shard": labels["shard"],
                          "direction": direction}, kind="counter",
                         help_text=("Bytes on the wire per shard server, "
                                    "by direction (server side)."))
            for codec, count in sorted(
                    (wire.get("negotiations") or {}).items()):
                w.sample("repro_shard_codec_negotiations_total", count,
                         {"shard": labels["shard"], "codec": str(codec)},
                         kind="counter",
                         help_text=("Hello negotiations per shard server, "
                                    "by chosen codec."))

    plan_cache = snapshot.get("plan_cache")
    if plan_cache:
        w.sample("repro_plan_cache_hits_total", plan_cache.get("hits"),
                 kind="counter")
        w.sample("repro_plan_cache_misses_total", plan_cache.get("misses"),
                 kind="counter")
        w.sample("repro_plan_cache_size", plan_cache.get("size"))

    tracing = snapshot.get("tracing")
    if tracing:
        w.sample("repro_traces_finished_total",
                 tracing.get("traces_finished"), kind="counter")
        w.sample("repro_slow_queries_total", tracing.get("slow_queries"),
                 kind="counter")

    engine = snapshot.get("engine")
    if isinstance(engine, dict):
        w.sample("repro_schema_version", engine.get("schema_version"))
    return w.text()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics"

    def do_GET(self):  # noqa: N802 (http.server API)
        try:
            if self.path.split("?")[0] in ("/metrics", "/"):
                body = render_prometheus(self.server.snapshot()).encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif self.path.split("?")[0] == "/slow":
                traces = self.server.slow_traces()
                body = json.dumps([t.as_dict() for t in traces],
                                  indent=2).encode()
                ctype = "application/json"
            else:
                self.send_error(404, "unknown path (try /metrics or /slow)")
                return
        except Exception as exc:  # pragma: no cover - defensive
            self.send_error(500, f"{type(exc).__name__}: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):
        _log.debug("%s %s", self.address_string(), fmt % args)


class MetricsHTTPServer:
    """Prometheus scrape endpoint on a daemon thread.

    ``GET /metrics`` renders ``snapshot_fn()`` (the service's ``metrics``
    op snapshot) as exposition text; ``GET /slow`` returns the retained
    slow-query traces as JSON when a recorder is attached.
    """

    def __init__(self, snapshot_fn, *, host: str = "127.0.0.1",
                 port: int = 0, recorder=None):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.snapshot = snapshot_fn
        self._httpd.slow_traces = (
            recorder.slow if recorder is not None else lambda: [])
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.2},
            name="repro-metrics-http", daemon=True)
        self._thread.start()
        _log.info("metrics endpoint on http://%s:%d/metrics",
                  self._httpd.server_address[0], self.port)
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["MetricsHTTPServer", "render_prometheus"]
