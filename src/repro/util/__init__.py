"""Small shared utilities with no dependencies on the rest of the library."""

from repro.util.percentiles import percentile, percentiles, summarize

__all__ = ["percentile", "percentiles", "summarize"]
