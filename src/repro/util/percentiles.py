"""Percentile math shared by the graph profiler, bench reporting and the
query server's live metrics.

One definition, used everywhere a percentile is reported: the
*lower nearest-rank* variant — for ``n`` sorted samples, the ``q``-th
percentile is the sample at index ``min(floor(q * n), n - 1)``. It is
exact for the integer distributions the graph profiler summarizes (no
interpolation inventing values that never occurred) and cheap enough to
run inside a serving hot path.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def percentile(sorted_values: Sequence, q: float):
    """The ``q``-th (``0 <= q <= 1``) lower nearest-rank percentile of an
    already **sorted** sequence. Raises :class:`ValueError` when empty."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {q}")
    return sorted_values[min(int(q * len(sorted_values)),
                             len(sorted_values) - 1)]


def percentiles(values: Iterable, qs: Sequence[float] = (0.5, 0.9, 0.99),
                ) -> dict[float, object]:
    """Percentiles of an (unsorted) iterable, as ``{q: value}``; empty
    input yields an empty dict."""
    data = sorted(values)
    if not data:
        return {}
    return {q: percentile(data, q) for q in qs}


def summarize(values: Iterable, scale: float = 1.0) -> dict:
    """Count/min/max/mean/p50/p90/p99 of a sample, each numeric field
    multiplied by ``scale`` (e.g. ``1000.0`` to report seconds as ms).

    Empty input returns zeros, so callers can render a summary row
    without special-casing a workload that produced no samples.
    """
    data = sorted(values)
    if not data:
        return {"count": 0, "min": 0, "max": 0, "mean": 0.0,
                "p50": 0, "p90": 0, "p99": 0}
    return {
        "count": len(data),
        "min": data[0] * scale,
        "max": data[-1] * scale,
        "mean": sum(data) * scale / len(data),
        "p50": percentile(data, 0.50) * scale,
        "p90": percentile(data, 0.90) * scale,
        "p99": percentile(data, 0.99) * scale,
    }
