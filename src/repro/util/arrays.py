"""Zero-copy int64 views and sorted-array set primitives (numpy).

Every vectorized code path in the library funnels through this module:
it owns the *optional* numpy dependency (:data:`HAVE_NUMPY`), the
zero-copy adaptation of ``array('q')``/memoryview buffers into int64
ndarrays, and the packed-row encoding that turns fixed-arity int64 key
tuples into scalars whose memcmp order equals signed lexicographic tuple
order — which is what lets one ``np.searchsorted`` probe a multi-column
key table sorted by ``sorted(entries)``.

The library must import (and the sequential executor must run) without
numpy installed, so ``import numpy`` is guarded here and nowhere else;
callers gate on :data:`HAVE_NUMPY` or call :func:`require_numpy` for a
loud, actionable error.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

#: True when numpy is importable; the vectorized executor, the kernel
#: caches, and the CSR membership tests all gate on this.
HAVE_NUMPY = np is not None

#: XOR-ing the sign bit makes big-endian byte order agree with signed
#: int64 order, so packed rows compare correctly via memcmp.
_SIGN_BIT = np.int64(-2**63) if HAVE_NUMPY else None


def require_numpy():
    """Return the numpy module or raise a loud, actionable error."""
    if np is None:
        raise RuntimeError(
            "numpy is required for vectorized execution but is not "
            "installed; install numpy or use executor='sequential'")
    return np


def as_int64(buffer):
    """Zero-copy int64 ndarray over an ``array('q')``, a memoryview cast
    to ``'q'`` (the artifact warm-start path), or an existing ndarray.

    The returned array aliases the source storage — treat it as
    read-only, exactly like the frozen buffers it views.
    """
    if isinstance(buffer, np.ndarray):
        return buffer if buffer.dtype == np.int64 \
            else buffer.astype(np.int64)
    if len(buffer) == 0:
        return np.empty(0, dtype=np.int64)
    return np.frombuffer(buffer, dtype=np.int64)


def pack_matrix(rows):
    """Encode an ``(n, k)`` int64 matrix as ``n`` comparable scalars.

    ``k == 1`` returns the column itself; ``k > 1`` returns fixed-width
    byte strings (sign-flipped big-endian rows) whose memcmp order equals
    signed lexicographic row order. Sorting / searchsorted over the
    result therefore agrees with Python's tuple order — the order
    ``FrozenConstraintIndex.to_buffers`` writes its keys in.
    """
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    if rows.ndim != 2:
        raise ValueError(f"pack_matrix expects a 2-d matrix, got shape "
                         f"{rows.shape}")
    n, k = rows.shape
    if k == 1:
        return np.ascontiguousarray(rows[:, 0])
    flipped = np.ascontiguousarray((rows ^ _SIGN_BIT).astype(">i8"))
    return flipped.view(f"S{8 * k}").reshape(n)


#: Wire dtype codes for :func:`pack_ints` / :func:`unpack_ints`. All
#: multi-byte widths are explicit little-endian so a packed buffer means
#: the same thing on any peer, whatever its native byte order.
_PACK_DTYPES = {"u1": "u1", "u2": "<u2", "i4": "<i4", "i8": "<i8"}


def pack_ints(values):
    """Pack an int array (any shape) into ``(dtype_code, bytes)``.

    The narrowest lossless width wins — ``u1``/``u2`` for small
    non-negative values (edge-flag masks, per-combo counts, node ids in
    small partitions), ``i4`` for ids that fit 32 bits (every bundled
    dataset), ``i8`` otherwise — so the wire cost tracks the data, not
    the worst case. The bytes come straight from ``ndarray.tobytes()``;
    :func:`unpack_ints` re-adopts them with ``np.frombuffer``. No
    per-element Python loop on either side.
    """
    require_numpy()
    arr = np.asarray(values, dtype=np.int64).reshape(-1)
    code = "i8"
    if arr.size:
        lo, hi = int(arr.min()), int(arr.max())
        if 0 <= lo and hi <= 0xFF:
            code = "u1"
        elif 0 <= lo and hi <= 0xFFFF:
            code = "u2"
        elif -2**31 <= lo and hi < 2**31:
            code = "i4"
    if code != "i8":
        arr = arr.astype(_PACK_DTYPES[code])
    return code, arr.tobytes()


def unpack_ints(code, buffer):
    """Zero-copy int ndarray over a buffer packed by :func:`pack_ints`.

    Adopts the (memoryview) buffer in place — the result aliases the
    received frame and is read-only. Raises :class:`ValueError` on an
    unknown dtype code or a buffer whose size is not a multiple of the
    item width (callers map it to their typed protocol error).
    """
    require_numpy()
    dtype = _PACK_DTYPES.get(code)
    if dtype is None:
        raise ValueError(f"unknown packed dtype code {code!r}")
    return np.frombuffer(buffer, dtype=dtype)


def in_sorted(haystack, needles):
    """Boolean membership mask of ``needles`` in the *sorted* array
    ``haystack`` (any dtype searchsorted supports, including the byte
    strings :func:`pack_matrix` produces)."""
    if len(haystack) == 0:
        return np.zeros(len(needles), dtype=bool)
    positions = np.searchsorted(haystack, needles)
    np.minimum(positions, len(haystack) - 1, out=positions)
    return haystack[positions] == needles


def take_segments(data, starts, lengths):
    """Gather ragged segments ``data[starts[i] : starts[i]+lengths[i]]``
    concatenated into one array (CSR payload gather without a Python
    loop)."""
    total = int(lengths.sum())
    if total == 0:
        return data[:0]
    out_offsets = np.cumsum(lengths) - lengths
    index = (np.arange(total, dtype=np.int64)
             - np.repeat(out_offsets, lengths)
             + np.repeat(starts, lengths))
    return data[index]


__all__ = [
    "HAVE_NUMPY",
    "as_int64",
    "in_sorted",
    "pack_ints",
    "pack_matrix",
    "require_numpy",
    "unpack_ints",
    "take_segments",
]
