"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can distinguish library failures from
programming errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Raised for invalid graph operations (unknown nodes, duplicates...)."""


class PatternError(ReproError):
    """Raised for malformed pattern queries."""


class PredicateError(PatternError):
    """Raised for malformed predicates or non-comparable values."""


class DslError(PatternError):
    """Raised when parsing the textual pattern DSL fails."""


class SchemaError(ReproError):
    """Raised for malformed access constraints or schemas."""


class ConstraintViolation(SchemaError):
    """Raised when a graph violates the cardinality side of a constraint.

    Attributes
    ----------
    constraint:
        The violated :class:`repro.constraints.schema.AccessConstraint`.
    witness:
        The S-labeled node tuple whose common-neighbour count exceeds the
        declared bound ``N``.
    count:
        The actual number of common neighbours observed.
    """

    def __init__(self, constraint, witness, count):
        self.constraint = constraint
        self.witness = witness
        self.count = count
        super().__init__(
            f"constraint {constraint} violated: S-labeled set {witness} "
            f"has {count} common neighbours (bound is {constraint.bound})"
        )


class NotEffectivelyBounded(ReproError):
    """Raised when a plan is requested for a query that is not bounded.

    Attributes
    ----------
    uncovered_nodes:
        Query nodes missing from the node cover, if known.
    uncovered_edges:
        Query edges missing from the edge cover, if known.
    """

    def __init__(self, message, uncovered_nodes=(), uncovered_edges=()):
        self.uncovered_nodes = tuple(uncovered_nodes)
        self.uncovered_edges = tuple(uncovered_edges)
        super().__init__(message)


class PlanError(ReproError):
    """Raised when a query plan cannot be executed on a graph."""


class UnverifiableEdge(PlanError):
    """Raised in strict execution mode when a query edge has no covering
    constraint usable by the executor (so an adjacency probe would be the
    only option)."""


class DiscoveryError(ReproError):
    """Raised when constraint discovery is asked for something impossible."""


class EngineError(ReproError):
    """Raised for invalid :class:`repro.engine.engine.QueryEngine` usage
    (e.g. applying updates to a frozen session)."""


class ExtensionError(EngineError):
    """Raised when an M-bounded schema extension cannot be planned or
    applied: no extension within the budget ``M`` makes the workload
    instance-bounded, or the extension exceeds a configured size cap.

    Attributes
    ----------
    m:
        The extension budget the planner ran under, when known.
    needed:
        How many constraints the extension would need, when the failure
        is a size-cap violation.
    """

    def __init__(self, message, m=None, needed=None):
        self.m = m
        self.needed = needed
        super().__init__(message)


class ArtifactError(EngineError):
    """Base class for persistent-artifact failures (see
    :mod:`repro.engine.persist`). Raised when a compiled snapshot on disk
    cannot be written, read, or trusted."""


class ArtifactCorrupt(ArtifactError):
    """Raised when an artifact fails structural validation: a missing or
    truncated file, a checksum mismatch, malformed JSON or binary headers.

    Attributes
    ----------
    path:
        The artifact directory (or file within it) that failed.
    """

    def __init__(self, message, path=None):
        self.path = path
        super().__init__(message)


class ArtifactVersionMismatch(ArtifactError):
    """Raised when an artifact was written by an incompatible format
    version of the library.

    Attributes
    ----------
    found:
        The format version recorded in the artifact manifest.
    supported:
        The format version this library reads and writes.
    """

    def __init__(self, message, found=None, supported=None):
        self.found = found
        self.supported = supported
        super().__init__(message)


class ArtifactStale(ArtifactError):
    """Raised when opening an artifact that was marked stale by
    ``QueryEngine.apply`` after the on-disk snapshot diverged from the
    served graph. Re-compile (``engine.save``) to clear, or pass
    ``allow_stale=True`` to opt into the stale snapshot explicitly.

    Attributes
    ----------
    reason:
        The reason recorded in the stale marker, if any.
    """

    def __init__(self, message, reason=None):
        self.reason = reason
        super().__init__(message)


class ServerError(ReproError):
    """Base class for query-service failures (see :mod:`repro.server`).
    Also raised client-side for error responses that do not map to a more
    specific class."""


class AdmissionRejected(ServerError):
    """Raised when admission control refuses a query instead of running
    it. The canonical case: the compiled plan's worst-case access bound
    (``PreparedQuery.worst_case_total_accessed`` — the paper's bounded
    fragment size) exceeds the service's configured cost budget. The
    query is *never* silently executed unbounded.

    Attributes
    ----------
    cost:
        The rejected query's worst-case access bound, when known.
    budget:
        The service budget the cost exceeded, when known.
    """

    def __init__(self, message, cost=None, budget=None):
        self.cost = cost
        self.budget = budget
        super().__init__(message)


class ServiceOverloaded(AdmissionRejected):
    """Raised when admission control sheds load: the request queue is at
    capacity, so the query is rejected before consuming any resources
    (``cost``/``budget`` here describe queue depth, not data access)."""


class DeadlineExceeded(ServerError):
    """Raised when a request's deadline expires before its answer is
    delivered (it may have spent the deadline queued behind other work).

    Attributes
    ----------
    deadline_ms:
        The deadline the request carried, in milliseconds.
    """

    def __init__(self, message, deadline_ms=None):
        self.deadline_ms = deadline_ms
        super().__init__(message)


class ShardError(ServerError):
    """Base class for remote-shard-fleet failures (see
    :class:`repro.engine.parallel.RemoteShardBackend` and
    :mod:`repro.server.shardserver`)."""


class ShardUnavailable(ShardError):
    """Raised when a remote shard server cannot be reached — connect or
    read timeout, connection refused, or the peer dying mid-round — and
    the backend's bounded retries are exhausted. Surfaced through the
    query server as a typed error so clients can distinguish "the fleet
    is degraded" from "your query is bad".

    Attributes
    ----------
    addr:
        The ``host:port`` of the unreachable shard server, when known.
    shard_id:
        The shard the address was serving, when known.
    attempts:
        How many connection/request attempts were made before giving up.
    """

    def __init__(self, message, addr=None, shard_id=None, attempts=None):
        self.addr = addr
        self.shard_id = shard_id
        self.attempts = attempts
        super().__init__(message)


class ShardProtocolError(ShardError):
    """Raised on a wire-level protocol violation from a shard server:
    truncated or malformed frames, overlong lines, or a response that
    does not match the request. Not retried — a peer speaking garbage is
    a bug or a mismatched deployment, not a transient fault.

    Attributes
    ----------
    addr:
        The ``host:port`` of the misbehaving peer, when known.
    """

    def __init__(self, message, addr=None):
        self.addr = addr
        super().__init__(message)


class ShardHandshakeMismatch(ShardError):
    """Raised when a shard server's handshake disagrees with the
    front-end: wrong protocol or artifact format version, a manifest
    checksum that does not match the front-end's root of trust, or a
    shard id outside the partition. Never retried — the fleet is serving
    a different artifact than the front-end opened.

    Attributes
    ----------
    addr:
        The ``host:port`` of the disagreeing shard server, when known.
    found / expected:
        The mismatched values, when known.
    """

    def __init__(self, message, addr=None, found=None, expected=None):
        self.addr = addr
        self.found = found
        self.expected = expected
        super().__init__(message)


class MatchTimeout(ReproError):
    """Raised when a matcher exceeds its time budget.

    The benchmark harness catches this to censor baselines that cannot
    finish (the paper reports such runs as "could not run to completion
    within 40000s").
    """

    def __init__(self, message, elapsed=None, partial=None):
        self.elapsed = elapsed
        self.partial = partial
        super().__init__(message)


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for invalid experiment configs."""
