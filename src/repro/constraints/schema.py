"""Access constraints and access schemas (declarative side).

An access constraint has the form ``S -> (l, N)`` where ``S`` is a
(possibly empty) set of labels, ``l`` a label, and ``N`` a natural number.
A graph satisfies it when every S-labeled node set has at most ``N``
common neighbours labeled ``l`` — and an index exists to retrieve them in
O(N) (the physical side lives in :mod:`repro.constraints.index`).

Two special shapes get names throughout the paper:

* **type (1)** — ``∅ -> (l, N)``: at most N nodes labeled ``l`` overall;
* **type (2)** — ``l' -> (l, N)``: every ``l'``-node has at most N
  neighbours labeled ``l``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import SchemaError


@dataclass(frozen=True, order=True)
class AccessConstraint:
    """An access constraint ``S -> (l, N)``.

    ``source`` is stored as a sorted tuple of labels (so the object is
    hashable and canonically ordered); construct with any iterable.

    Examples
    --------
    >>> phi1 = AccessConstraint(("year", "award"), "movie", 4)
    >>> phi1.arity, phi1.is_type1, phi1.is_type2
    (2, False, False)
    >>> str(AccessConstraint((), "country", 196))
    '∅ -> (country, 196)'
    """

    source: tuple[str, ...] = field()
    target: str = field()
    bound: int = field()

    def __init__(self, source: Iterable[str], target: str, bound: int):
        source_tuple = tuple(sorted(set(source)))
        if any(not isinstance(label, str) or not label for label in source_tuple):
            raise SchemaError(f"source labels must be non-empty strings: {source!r}")
        if not isinstance(target, str) or not target:
            raise SchemaError(f"target label must be a non-empty string: {target!r}")
        if not isinstance(bound, int) or isinstance(bound, bool) or bound < 0:
            raise SchemaError(f"bound must be a natural number, got {bound!r}")
        object.__setattr__(self, "source", source_tuple)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "bound", bound)

    # -- shape ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """``|S|`` — the number of source labels."""
        return len(self.source)

    @property
    def is_type1(self) -> bool:
        """True for global-count constraints ``∅ -> (l, N)``."""
        return not self.source

    @property
    def is_type2(self) -> bool:
        """True for per-neighbour bounds ``l' -> (l, N)``."""
        return len(self.source) == 1

    @property
    def length(self) -> int:
        """``|φ|`` — the constraint's length, ``|S| + 1`` labels. The sum
        over a schema gives the paper's ``|A|``."""
        return len(self.source) + 1

    def source_set(self) -> frozenset[str]:
        return frozenset(self.source)

    def __str__(self) -> str:
        left = ",".join(self.source) if self.source else "∅"
        return f"{left} -> ({self.target}, {self.bound})"

    # -- serialization -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"source": list(self.source), "target": self.target,
                "bound": self.bound}

    @classmethod
    def from_dict(cls, payload: dict) -> "AccessConstraint":
        try:
            return cls(payload["source"], payload["target"], int(payload["bound"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed constraint document: {exc}") from exc


class AccessSchema:
    """A set ``A`` of access constraints with lookup by target label.

    The paper's two size measures are exposed as:

    * ``len(schema)`` — ``||A||``, the number of constraints;
    * :attr:`total_length` — ``|A|``, the total length of the constraints.
    """

    def __init__(self, constraints: Iterable[AccessConstraint] = ()):
        self._constraints: list[AccessConstraint] = []
        self._by_target: dict[str, list[AccessConstraint]] = {}
        self._seen: set[AccessConstraint] = set()
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: AccessConstraint) -> bool:
        """Add a constraint; returns False if it was already present."""
        if not isinstance(constraint, AccessConstraint):
            raise SchemaError(f"expected AccessConstraint, got {constraint!r}")
        if constraint in self._seen:
            return False
        self._seen.add(constraint)
        self._constraints.append(constraint)
        self._by_target.setdefault(constraint.target, []).append(constraint)
        return True

    def extend(self, constraints: Iterable[AccessConstraint]) -> int:
        """Add many constraints; returns how many were new."""
        return sum(1 for c in constraints if self.add(c))

    def union(self, other: "AccessSchema") -> "AccessSchema":
        merged = AccessSchema(self._constraints)
        merged.extend(other)
        return merged

    # -- lookup -------------------------------------------------------------------
    def by_target(self, label: str) -> list[AccessConstraint]:
        """All constraints whose target label is ``label``."""
        return list(self._by_target.get(label, ()))

    def type1_for(self, label: str) -> AccessConstraint | None:
        """The tightest type (1) constraint on ``label``, if any."""
        best = None
        for constraint in self._by_target.get(label, ()):
            if constraint.is_type1 and (best is None or constraint.bound < best.bound):
                best = constraint
        return best

    def targets(self) -> set[str]:
        return set(self._by_target.keys())

    def at(self, position: int) -> AccessConstraint:
        """Constraint at ``position`` in canonical (insertion) order.

        Artifact plan encoding and the scatter-gather task protocol both
        refer to constraints by this position, which is stable for any
        schema rebuilt from the same document.
        """
        try:
            return self._constraints[position]
        except IndexError:
            raise SchemaError(
                f"no constraint at position {position} (schema has "
                f"{len(self._constraints)})") from None

    def positions(self) -> dict[AccessConstraint, int]:
        """``constraint -> position`` for the canonical order."""
        return {c: i for i, c in enumerate(self._constraints)}

    def __contains__(self, constraint: AccessConstraint) -> bool:
        return constraint in self._seen

    def __iter__(self) -> Iterator[AccessConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        """``||A||`` — number of constraints."""
        return len(self._constraints)

    @property
    def total_length(self) -> int:
        """``|A|`` — total length of the constraints."""
        return sum(c.length for c in self._constraints)

    def restricted_to(self, count: int) -> "AccessSchema":
        """The first ``count`` constraints (used by the ‖A‖-sweep bench)."""
        return AccessSchema(self._constraints[:count])

    def __repr__(self) -> str:
        return f"AccessSchema(constraints={len(self._constraints)})"

    def __str__(self) -> str:
        return "{" + "; ".join(str(c) for c in self._constraints) + "}"

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"constraints": [c.to_dict() for c in self._constraints]}

    @classmethod
    def from_dict(cls, payload: dict) -> "AccessSchema":
        try:
            items = payload["constraints"]
        except (KeyError, TypeError) as exc:
            raise SchemaError(f"malformed schema document: {exc}") from exc
        return cls(AccessConstraint.from_dict(item) for item in items)

    def save(self, destination) -> None:
        """Write the schema as JSON to a path or file object."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=2)
        else:
            json.dump(self.to_dict(), destination, indent=2)

    @classmethod
    def load(cls, source) -> "AccessSchema":
        """Read a schema from JSON at a path or file object."""
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        return cls.from_dict(json.load(source))
