"""Access schema on graphs (Section II of the paper).

An *access constraint* ``S -> (l, N)`` combines a cardinality guarantee
(any S-labeled node set has at most N common neighbours labeled ``l``)
with an index that retrieves those neighbours in O(N). An *access schema*
``A`` is a set of such constraints.

* :class:`AccessConstraint` / :class:`AccessSchema` — the declarative side.
* :class:`SchemaCatalog` / :class:`SchemaGeneration` — the versioned
  schema lifecycle: monotonic generations of M-bounded extensions with
  provenance (see :mod:`~repro.constraints.catalog`).
* :class:`ConstraintIndex` / :class:`SchemaIndex` — the physical indexes
  over a concrete graph, with O(N) ``fetch``.
* :mod:`~repro.constraints.discovery` — mining constraints from data
  (degree bounds, global label counts, FD-style bounds, aggregates).
* :mod:`~repro.constraints.maintenance` — incremental index maintenance
  under graph deltas.
"""

from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.constraints.catalog import SchemaCatalog, SchemaGeneration
from repro.constraints.index import ConstraintIndex, SchemaIndex
from repro.constraints.discovery import (
    discover_type1,
    discover_unit,
    discover_general,
    discover_functional,
    discover_schema,
)
from repro.constraints.maintenance import MaintainedSchemaIndex, MaintenanceReport

__all__ = [
    "AccessConstraint",
    "AccessSchema",
    "ConstraintIndex",
    "SchemaCatalog",
    "SchemaGeneration",
    "SchemaIndex",
    "discover_type1",
    "discover_unit",
    "discover_general",
    "discover_functional",
    "discover_schema",
    "MaintainedSchemaIndex",
    "MaintenanceReport",
]
