"""Incremental maintenance of access-constraint indexes under ΔG.

Section II of the paper: "The indices in an access schema can be
incrementally and locally maintained in response to changes to the
underlying graph G. It suffices to inspect ``ΔG ∪ NbG(ΔG)``."

The key observation (which the implementation exploits) is that the cells
an index stores are derived *per target node* from that node's
neighbourhood: a change to edge ``(u, v)`` only alters the neighbourhoods
of ``u`` and ``v``, so refreshing the cells contributed by the dirty nodes
— plus dropping keys that mention deleted nodes — restores the index
exactly, without touching the rest of ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.index import SchemaIndex
from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.errors import GraphError
from repro.graph.delta import EdgeChange, GraphDelta, NodeChange
from repro.graph.graph import Graph


@dataclass
class MaintenanceReport:
    """Outcome of applying one delta batch.

    Attributes
    ----------
    dirty_nodes:
        Nodes whose neighbourhood changed (``ΔG ∪ NbG(ΔG)``, intersected
        with surviving nodes).
    refreshed_targets:
        (constraint, node) pairs whose index cells were recomputed.
    violations:
        Constraints whose cardinality bound no longer holds after the
        update, with a witness key and count each.
    """

    dirty_nodes: set[int] = field(default_factory=set)
    refreshed_targets: list[tuple[AccessConstraint, int]] = field(default_factory=list)
    violations: list[tuple[AccessConstraint, tuple[int, ...], int]] = field(default_factory=list)

    @property
    def still_satisfied(self) -> bool:
        return not self.violations


class MaintainedSchemaIndex:
    """A :class:`SchemaIndex` that stays consistent under graph deltas.

    The wrapped indexes are built with member tracking, enabling local
    removals. :meth:`apply` mutates the graph and the indexes together.
    """

    def __init__(self, graph: Graph, schema: AccessSchema):
        if not isinstance(graph, Graph):
            raise GraphError("maintenance requires a mutable Graph")
        self.schema_index = SchemaIndex(graph, schema, track_members=True)

    @property
    def graph(self) -> Graph:
        return self.schema_index.graph

    @property
    def schema(self) -> AccessSchema:
        return self.schema_index.schema

    def apply(self, delta: GraphDelta) -> MaintenanceReport:
        """Apply ``delta`` to the graph and repair every index locally."""
        graph = self.graph
        report = MaintenanceReport()
        deleted: set[int] = set()

        for change in delta:
            if isinstance(change, NodeChange):
                if change.insert:
                    graph.add_node(change.label, value=change.value,
                                   node_id=change.node)
                    report.dirty_nodes.add(change.node)
                else:
                    node = change.node
                    neighbours = set(graph.neighbors(node))
                    label = graph.label_of(node)
                    for constraint in self.schema:
                        index = self.schema_index.index_for(constraint)
                        if constraint.target == label:
                            index.remove_target(node)
                        if label in constraint.source:
                            index.drop_keys_with(node)
                    graph.remove_node(node)
                    deleted.add(node)
                    report.dirty_nodes |= neighbours
                    report.dirty_nodes.discard(node)
            elif isinstance(change, EdgeChange):
                if change.insert:
                    graph.add_edge(change.source, change.target)
                else:
                    graph.remove_edge(change.source, change.target)
                report.dirty_nodes.add(change.source)
                report.dirty_nodes.add(change.target)
            else:  # pragma: no cover - defensive
                raise GraphError(f"unknown change type {change!r}")

        report.dirty_nodes = {v for v in report.dirty_nodes if graph.has_node(v)}

        # Refresh the cells contributed by dirty target nodes. Key sets of
        # untouched targets are unchanged by construction (see module doc).
        for constraint in self.schema:
            index = self.schema_index.index_for(constraint)
            for node in report.dirty_nodes:
                if graph.label_of(node) == constraint.target:
                    index.remove_target(node)
                    index.add_target(node, graph)
                    report.refreshed_targets.append((constraint, node))

        for constraint in self.schema:
            index = self.schema_index.index_for(constraint)
            for key, count in index.violations():
                report.violations.append((constraint, key, count))
        return report
