"""Constraint discovery: mining access constraints from a data graph.

Section II of the paper lists four practical sources of access constraints;
each has a counterpart here:

1. **Degree bounds** — if every ``l``-node has at most N neighbours labeled
   ``l'``, then ``l -> (l', N)`` holds: :func:`discover_unit`.
2. **Type (1) constraints** — global label counts: :func:`discover_type1`.
3. **Functional dependencies** — ``X -> A`` becomes ``X -> (A, 1)``:
   :func:`discover_functional` (unit FDs) and :func:`discover_general`
   with observed bound 1 (composite FDs).
4. **Aggregate queries** — grouping by a label set ``S`` and counting
   ``l``-neighbours yields ``S -> (l, N)``: :func:`discover_general`
   computes exactly that group-by through an index build.

:func:`discover_schema` orchestrates the above into a ready-to-use
:class:`~repro.constraints.schema.AccessSchema`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.constraints.index import ConstraintIndex
from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.errors import DiscoveryError
from repro.graph.graph import GraphView


def discover_type1(graph: GraphView, labels: Iterable[str] | None = None,
                   max_bound: int | None = None) -> list[AccessConstraint]:
    """Global count constraints ``∅ -> (l, count(l))``.

    Only labels whose count is at most ``max_bound`` are returned (pass
    None for no cap). These correspond to the paper's φ4–φ6 on IMDb
    (135 years, 24 awards, 196 countries).
    """
    candidates = sorted(labels) if labels is not None else sorted(graph.labels())
    constraints = []
    for label in candidates:
        count = graph.label_count(label)
        if count == 0:
            continue
        if max_bound is None or count <= max_bound:
            constraints.append(AccessConstraint((), label, count))
    return constraints


def neighbor_label_bounds(graph: GraphView) -> dict[tuple[str, str], int]:
    """For every ordered label pair ``(l, l')`` with at least one adjacency,
    the maximum number of ``l'``-labeled neighbours of any ``l``-node.

    One pass over all adjacency lists — O(|E|).
    """
    bounds: dict[tuple[str, str], int] = {}
    for v in graph.nodes():
        label = graph.label_of(v)
        counts = Counter(graph.label_of(w) for w in graph.neighbors(v))
        for other, count in counts.items():
            key = (label, other)
            if count > bounds.get(key, 0):
                bounds[key] = count
    return bounds


def discover_unit(graph: GraphView, max_bound: int | None = None,
                  pairs: Iterable[tuple[str, str]] | None = None,
                  precomputed: dict[tuple[str, str], int] | None = None,
                  ) -> list[AccessConstraint]:
    """Degree-bound constraints ``l -> (l', N)`` (type (2)).

    ``N`` is the observed maximum; pairs whose N exceeds ``max_bound`` are
    skipped. Pass ``precomputed=neighbor_label_bounds(graph)`` to reuse the
    scan across calls.
    """
    bounds = precomputed if precomputed is not None else neighbor_label_bounds(graph)
    wanted = set(pairs) if pairs is not None else None
    constraints = []
    for (label, other), bound in sorted(bounds.items()):
        if wanted is not None and (label, other) not in wanted:
            continue
        if max_bound is None or bound <= max_bound:
            constraints.append(AccessConstraint((label,), other, bound))
    return constraints


def discover_functional(graph: GraphView,
                        precomputed: dict[tuple[str, str], int] | None = None,
                        ) -> list[AccessConstraint]:
    """FD-style constraints ``l -> (l', 1)`` — every ``l``-node has at most
    one ``l'``-neighbour (e.g. movie -> year on IMDb)."""
    return discover_unit(graph, max_bound=1, precomputed=precomputed)


def discover_general(graph: GraphView, source: Sequence[str], target: str,
                     max_bound: int | None = None) -> AccessConstraint | None:
    """Aggregate-style discovery of ``S -> (l, N)`` for a given shape.

    Builds the index (the group-by) and reads off the maximum group size.
    Returns None when no S-labeled set with an ``l``-neighbour exists or
    the observed bound exceeds ``max_bound``.
    """
    if not source:
        raise DiscoveryError("use discover_type1 for empty-source constraints")
    probe = AccessConstraint(source, target, 0)
    index = ConstraintIndex(probe, graph)
    observed = index.max_entry
    if observed == 0:
        return None
    if max_bound is not None and observed > max_bound:
        return None
    return AccessConstraint(source, target, observed)


def discover_schema(graph: GraphView,
                    type1_max: int | None = 1000,
                    unit_max: int | None = 100,
                    general_shapes: Iterable[tuple[Sequence[str], str]] = (),
                    general_max: int | None = None) -> AccessSchema:
    """Mine a full access schema from a graph.

    Parameters
    ----------
    type1_max:
        Keep ``∅ -> (l, N)`` only for labels with at most this many nodes.
    unit_max:
        Keep ``l -> (l', N)`` only when the degree bound is at most this.
    general_shapes:
        Extra ``(S, l)`` shapes to mine via :func:`discover_general`
        (the aggregate-query route, e.g. ``(("year", "award"), "movie")``).
    """
    schema = AccessSchema()
    schema.extend(discover_type1(graph, max_bound=type1_max))
    bounds = neighbor_label_bounds(graph)
    schema.extend(discover_unit(graph, max_bound=unit_max, precomputed=bounds))
    for source, target in general_shapes:
        constraint = discover_general(graph, source, target, max_bound=general_max)
        if constraint is not None:
            schema.add(constraint)
    return schema
