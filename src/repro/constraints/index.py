"""Physical indexes for access constraints.

For a constraint ``S -> (l, N)`` over a graph ``G``, the index maps every
S-labeled node set that occurs in ``G`` (canonically ordered by label) to
the tuple of its common neighbours labeled ``l``. Retrieval is a single
hash lookup — the O(N) access the paper's access-schema definition
requires. The paper realized these as MySQL tables + B-tree indices; an
in-memory hash map provides the same contract.

Construction enumerates, for each target node ``w`` labeled ``l``, the
S-labeled subsets of ``w``'s neighbourhood (a per-label product), which is
the same work the paper's "create a table in which each tuple encodes an
actualized constraint" performs.

Two storage variants share one retrieval interface
(:class:`BaseConstraintIndex`):

* :class:`ConstraintIndex` — mutable, set-valued payloads, optional
  member tracking for incremental maintenance.
* :class:`FrozenConstraintIndex` — read-only, payloads stored as sorted
  tuples (no per-set overhead, zero-copy ``fetch``); the variant a frozen
  :class:`~repro.engine.engine.QueryEngine` session selects.

Plan execution (:mod:`repro.core.executor`) and incremental evaluation
(:mod:`repro.core.incremental`) are written against the shared interface,
so they run on either variant unchanged.
"""

from __future__ import annotations

import threading
from array import array
from itertools import product
from typing import Iterable, Sequence

from repro.accounting import AccessStats
from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.errors import ConstraintViolation, SchemaError
from repro.graph.graph import GraphView


def _keys_for_target(constraint: AccessConstraint, w: int, graph: GraphView):
    """Enumerate the canonical keys of S-labeled neighbour sets of ``w``."""
    source = constraint.source
    if not source:
        yield ()
        return
    neighbours = graph.neighbors(w)
    per_label: list[list[int]] = []
    for label in source:  # already sorted canonically
        bucket = [v for v in neighbours if graph.label_of(v) == label]
        if not bucket:
            return
        per_label.append(sorted(bucket))
    yield from product(*per_label)


class BaseConstraintIndex:
    """Shared retrieval/inspection interface of the two index variants.

    Subclasses provide ``self.constraint`` and ``self._entries`` — a
    mapping from canonical S-labeled key tuples to payload collections
    (sets for the mutable variant, sorted tuples for the frozen one).
    Everything below depends only on that contract.
    """

    __slots__ = ()

    # -- retrieval -------------------------------------------------------------------
    def canonical_key(self, nodes: Iterable[int], graph: GraphView) -> tuple[int, ...]:
        """Order ``nodes`` by their labels to match the index key layout.

        Raises :class:`SchemaError` if the nodes do not form an S-labeled
        set for this constraint.
        """
        by_label = {}
        for node in nodes:
            label = graph.label_of(node)
            if label in by_label:
                raise SchemaError(
                    f"two nodes with label {label!r} in S-labeled set for {self.constraint}")
            by_label[label] = node
        if set(by_label) != set(self.constraint.source):
            raise SchemaError(
                f"nodes {sorted(by_label.values())} (labels {sorted(by_label)}) do not "
                f"form an S-labeled set for {self.constraint}")
        return tuple(by_label[label] for label in self.constraint.source)

    def fetch(self, key: Sequence[int], stats: AccessStats | None = None) -> tuple[int, ...]:
        """O(N) retrieval: common neighbours (labeled ``l``) of the
        S-labeled set given by the canonical ``key``.

        For type (1) constraints pass an empty key.
        """
        payload = self._entries.get(tuple(key), ())
        result = tuple(payload)
        if stats is not None:
            stats.record_fetch(result)
        return result

    def fetch_nodes(self, nodes: Iterable[int], graph: GraphView,
                    stats: AccessStats | None = None) -> tuple[int, ...]:
        """Like :meth:`fetch`, but accepts the node set in any order."""
        return self.fetch(self.canonical_key(nodes, graph), stats=stats)

    # -- inspection -------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        return len(self._entries)

    @property
    def max_entry(self) -> int:
        """Largest payload observed — the *actual* cardinality bound."""
        return max((len(p) for p in self._entries.values()), default=0)

    @property
    def size(self) -> int:
        """Total cells stored (key members + payload members), comparable
        to the paper's index-size measure in Fig. 5(d,h,l)."""
        return sum(len(key) + len(payload) for key, payload in self._entries.items())

    def is_satisfied(self) -> bool:
        """Does the graph satisfy the cardinality side of the constraint?"""
        return self.max_entry <= self.constraint.bound

    def violations(self) -> list[tuple[tuple[int, ...], int]]:
        """Keys whose payload exceeds the bound, with their counts."""
        bound = self.constraint.bound
        return [(key, len(payload)) for key, payload in self._entries.items()
                if len(payload) > bound]

    def keys(self):
        return self._entries.keys()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.constraint}, keys={self.num_keys}, "
                f"max_entry={self.max_entry})")


class ConstraintIndex(BaseConstraintIndex):
    """Mutable index for one access constraint over one graph.

    Parameters
    ----------
    track_members:
        When True, reverse maps (node -> keys it appears in) are kept so
        the index supports incremental maintenance; costs extra memory.
    """

    __slots__ = ("constraint", "_entries", "_track",
                 "_target_cells", "_member_keys")

    def __init__(self, constraint: AccessConstraint, graph: GraphView | None = None,
                 track_members: bool = False):
        self.constraint = constraint
        self._entries: dict[tuple[int, ...], set[int]] = {}
        self._track = track_members
        # target node -> set of keys whose payload contains it
        self._target_cells: dict[int, set[tuple[int, ...]]] = {}
        # key-member node -> set of keys containing it
        self._member_keys: dict[int, set[tuple[int, ...]]] = {}
        if graph is not None:
            self.build(graph)

    # -- construction -------------------------------------------------------------
    def build(self, graph: GraphView) -> "ConstraintIndex":
        """(Re)build the index from scratch over ``graph``."""
        self._entries = {}
        self._target_cells = {}
        self._member_keys = {}
        for w in graph.nodes_with_label(self.constraint.target):
            self.add_target(w, graph)
        if self.constraint.is_type1:
            # A type (1) index has the single key () even in an empty graph.
            self._entries.setdefault((), set())
        return self

    def add_target(self, w: int, graph: GraphView) -> None:
        """Insert the cells contributed by target node ``w``."""
        for key in self._keys_for_target(w, graph):
            payload = self._entries.setdefault(key, set())
            payload.add(w)
            if self._track:
                self._target_cells.setdefault(w, set()).add(key)
                for member in key:
                    self._member_keys.setdefault(member, set()).add(key)

    def remove_target(self, w: int) -> None:
        """Remove every cell contributed by target node ``w`` (requires
        ``track_members=True``)."""
        if not self._track:
            raise SchemaError("index was built without member tracking")
        for key in self._target_cells.pop(w, ()):
            payload = self._entries.get(key)
            if payload is None:
                continue
            payload.discard(w)
            if not payload and key != ():
                del self._entries[key]
                for member in key:
                    keys = self._member_keys.get(member)
                    if keys is not None:
                        keys.discard(key)
                        if not keys:
                            del self._member_keys[member]

    def drop_keys_with(self, node: int) -> None:
        """Remove every key containing ``node`` (after node deletion)."""
        if not self._track:
            raise SchemaError("index was built without member tracking")
        for key in list(self._member_keys.get(node, ())):
            payload = self._entries.pop(key, set())
            for w in payload:
                cells = self._target_cells.get(w)
                if cells is not None:
                    cells.discard(key)
            for member in key:
                if member == node:
                    continue
                keys = self._member_keys.get(member)
                if keys is not None:
                    keys.discard(key)
        self._member_keys.pop(node, None)

    def _keys_for_target(self, w: int, graph: GraphView):
        return _keys_for_target(self.constraint, w, graph)

    def freeze(self) -> "FrozenConstraintIndex":
        """Compact this index into a read-only :class:`FrozenConstraintIndex`."""
        return FrozenConstraintIndex.from_entries(self.constraint, self._entries)


class FrozenConstraintIndex(BaseConstraintIndex):
    """Read-optimized index: payloads stored as sorted tuples.

    Construction does the same per-target enumeration as
    :class:`ConstraintIndex.build` but the finished entries are compact
    tuples — no per-set hash-table overhead, and :meth:`fetch` returns the
    stored tuple without copying. The trade-off: no mutation, so no
    incremental maintenance (rebuild or use the mutable variant instead).

    An instance created by :meth:`from_buffers` (the artifact warm-start
    path) holds the flat int64 buffers and decodes them into the entry
    dict **lazily on first access**, so opening an artifact pays only for
    the constraints a workload actually touches. The decode is guarded by
    a per-instance lock: concurrent first-touch from several worker
    threads (the query server's executor pool) publishes exactly one
    entry dict, and no thread can observe the half-built state where the
    buffers are already dropped but the entries are not yet assigned.
    """

    __slots__ = ("constraint", "_entry_data", "_raw_buffers", "_decode_lock",
                 "_kernel")

    def __init__(self, constraint: AccessConstraint, graph: GraphView | None = None,
                 targets: Iterable[int] | None = None):
        self.constraint = constraint
        self._entry_data: dict[tuple[int, ...], tuple[int, ...]] | None = {}
        self._raw_buffers = None
        self._decode_lock = threading.Lock()
        #: Lazily-built numpy probe state (packed keys + CSR payload);
        #: see :meth:`kernel_buffers`. The index is immutable, so the
        #: cache never invalidates.
        self._kernel = None
        if graph is not None:
            self.build(graph, targets=targets)

    @property
    def _entries(self) -> dict[tuple[int, ...], tuple[int, ...]]:
        entries = self._entry_data
        if entries is None:
            with self._decode_lock:
                entries = self._entry_data
                if entries is None:
                    entries = self._decode_buffers()
                    # Publish the finished dict before releasing the raw
                    # buffers: unlocked readers only ever see None (and
                    # take the lock) or the complete mapping.
                    self._entry_data = entries
                    self._raw_buffers = None
        return entries

    def build(self, graph: GraphView,
              targets: Iterable[int] | None = None) -> "FrozenConstraintIndex":
        """Build the compact index from scratch over ``graph``.

        ``targets`` restricts the enumerated target nodes (they must all
        carry the constraint's target label) — the shard-local build path
        (:func:`repro.graph.partition.build_shard_indexes`) indexes only
        the nodes a shard *owns*, so the union of shard entries for any
        key equals the global entry.
        """
        staging: dict[tuple[int, ...], set[int]] = {}
        if targets is None:
            targets = graph.nodes_with_label(self.constraint.target)
        for w in targets:
            for key in _keys_for_target(self.constraint, w, graph):
                staging.setdefault(key, set()).add(w)
        if self.constraint.is_type1:
            staging.setdefault((), set())
        self._entry_data = {key: tuple(sorted(payload))
                            for key, payload in staging.items()}
        self._raw_buffers = None
        self._kernel = None
        return self

    @classmethod
    def from_entries(cls, constraint: AccessConstraint,
                     entries: dict[tuple[int, ...], Iterable[int]]) -> "FrozenConstraintIndex":
        """Freeze an already-computed entry mapping (used by ``freeze``)."""
        frozen = cls(constraint)
        frozen._entry_data = {key: tuple(sorted(payload))
                              for key, payload in entries.items()}
        return frozen

    # -- binary snapshot interface (repro.engine.persist) -----------------------
    def to_buffers(self) -> dict:
        """Flatten the entries into three int64 buffers.

        ``keys`` holds the canonical key tuples concatenated (arity ints
        per key, in sorted key order), ``payload_ptr`` is a CSR-style
        offset array into ``payload``, which holds the concatenated
        payload tuples. :meth:`from_buffers` is the exact inverse.
        """
        keys = array("q")
        payload_ptr = array("q", [0])
        payload = array("q")
        entries = self._entries
        for key in sorted(entries):
            keys.extend(key)
            payload.extend(entries[key])
            payload_ptr.append(len(payload))
        return {"keys": keys, "payload_ptr": payload_ptr, "payload": payload}

    @classmethod
    def from_buffers(cls, constraint: AccessConstraint,
                     buffers: dict) -> "FrozenConstraintIndex":
        """Adopt :meth:`to_buffers` output without decoding it yet.

        The buffers (``array('q')`` or memoryviews over a loaded
        artifact) are kept as-is; the entry dict is materialized on first
        retrieval/inspection. Shape problems therefore surface on first
        use, as :class:`~repro.errors.ArtifactCorrupt`.
        """
        try:
            raw = (buffers["keys"], buffers["payload_ptr"], buffers["payload"])
        except KeyError as exc:
            from repro.errors import ArtifactCorrupt
            raise ArtifactCorrupt(
                f"index buffers for {constraint} are missing section {exc}") from exc
        index = cls(constraint)
        index._entry_data = None
        index._raw_buffers = raw
        return index

    def _decode_buffers(self) -> dict[tuple[int, ...], tuple[int, ...]]:
        from repro.errors import ArtifactCorrupt
        keys_flat, payload_ptr, payload = self._raw_buffers
        arity = len(self.constraint.source)
        starts = list(payload_ptr)
        values = list(payload)
        num_keys = len(starts) - 1
        if (num_keys < 0 or len(keys_flat) != num_keys * arity
                or (starts and (starts[0] != 0 or starts[-1] != len(values)))
                or any(starts[i] > starts[i + 1] for i in range(num_keys))):
            raise ArtifactCorrupt(
                f"index buffers for {self.constraint} have inconsistent shapes")
        if arity == 0:
            return {(): tuple(values)} if num_keys else {}
        key_iter = zip(*[iter(list(keys_flat))] * arity)
        return {key: tuple(values[starts[i]:starts[i + 1]])
                for i, key in enumerate(key_iter)}

    # -- batched (vectorized) retrieval ------------------------------------------
    def kernel_buffers(self) -> tuple:
        """``(packed_keys, payload_ptr, payload, arity, num_keys)`` numpy
        probe state, built lazily and cached.

        ``packed_keys`` encodes each canonical key tuple as one
        searchsorted-comparable scalar (:func:`repro.util.arrays.
        pack_matrix`), in the same sorted order :meth:`to_buffers` writes;
        ``payload_ptr``/``payload`` are the CSR payload layout. A
        warm-started index builds this directly from its raw artifact
        buffers — zero-copy, without ever decoding the entry dict; a
        fresh index flattens its entries once.
        """
        kernel = self._kernel
        if kernel is None:
            # Benign race: concurrent first calls build twice, last
            # write wins, both are correct (same immutable inputs).
            kernel = self._build_kernel()
            self._kernel = kernel
        return kernel

    def _build_kernel(self) -> tuple:
        from repro.errors import ArtifactCorrupt
        from repro.util.arrays import as_int64, pack_matrix, require_numpy
        np = require_numpy()
        arity = len(self.constraint.source)
        # Take a local reference: the lazy dict decode nulls _raw_buffers
        # after publishing _entry_data, and either source is valid.
        raw = self._raw_buffers
        if raw is not None:
            keys_flat = as_int64(raw[0])
            payload_ptr = as_int64(raw[1])
            payload = as_int64(raw[2])
        else:
            entries = self._entries
            ordered = sorted(entries)
            keys_flat = np.fromiter(
                (member for key in ordered for member in key),
                dtype=np.int64, count=len(ordered) * arity)
            lengths = np.fromiter((len(entries[key]) for key in ordered),
                                  dtype=np.int64, count=len(ordered))
            payload_ptr = np.zeros(len(ordered) + 1, dtype=np.int64)
            np.cumsum(lengths, out=payload_ptr[1:])
            payload = np.fromiter(
                (w for key in ordered for w in entries[key]),
                dtype=np.int64, count=int(payload_ptr[-1]))
        num_keys = len(payload_ptr) - 1
        if (num_keys < 0 or (arity and len(keys_flat) != num_keys * arity)
                or (num_keys >= 0 and (len(payload_ptr) == 0
                                       or payload_ptr[0] != 0
                                       or payload_ptr[-1] != len(payload)))
                or np.any(np.diff(payload_ptr) < 0)):
            raise ArtifactCorrupt(
                f"index buffers for {self.constraint} have inconsistent "
                f"shapes")
        if arity:
            packed = pack_matrix(keys_flat.reshape(num_keys, arity))
            if num_keys > 1 and np.any(packed[:-1] > packed[1:]):
                raise ArtifactCorrupt(
                    f"index keys for {self.constraint} are not sorted")
        else:
            packed = keys_flat[:0]
        return (packed, payload_ptr, payload, arity, num_keys)

    def fetch_many(self, combos, packed=None) -> tuple:
        """Batched :meth:`fetch`: probe many canonical keys in one
        ``np.searchsorted`` call.

        ``combos`` is an ``(n, arity)`` int64 matrix of canonical keys
        (``packed`` may pass their pre-packed scalars to skip
        re-encoding). Returns ``(starts, lengths, payload)``: combo ``i``
        fetched ``payload[starts[i] : starts[i] + lengths[i]]``; missing
        keys have length 0. **No access accounting happens here** — the
        caller owns the memoized-fetch semantics (see
        :mod:`repro.core.kernels`), unlike :meth:`fetch` which records
        unconditionally when given stats.
        """
        from repro.util.arrays import pack_matrix, require_numpy
        np = require_numpy()
        packed_keys, payload_ptr, payload, arity, num_keys = \
            self.kernel_buffers()
        n = len(combos)
        if arity == 0:
            length = len(payload) if num_keys else 0
            return (np.zeros(n, dtype=np.int64),
                    np.full(n, length, dtype=np.int64), payload)
        if num_keys == 0 or n == 0:
            zeros = np.zeros(n, dtype=np.int64)
            return zeros, zeros.copy(), payload
        if packed is None:
            packed = pack_matrix(combos)
        positions = np.searchsorted(packed_keys, packed)
        clipped = np.minimum(positions, num_keys - 1)
        hits = packed_keys[clipped] == packed
        index = np.where(hits, clipped, 0)
        starts = payload_ptr[index]
        lengths = np.where(hits, payload_ptr[index + 1] - starts, 0)
        return np.where(hits, starts, 0), lengths, payload


class SchemaIndex:
    """All indexes of an access schema over one graph.

    This is the object query plans execute against: it owns one
    constraint index per constraint plus the graph reference. With
    ``frozen=True`` the read-optimized :class:`FrozenConstraintIndex`
    variant is built instead of the mutable default (incompatible with
    ``track_members``).

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph()
    >>> m = g.add_node("movie"); y = g.add_node("year", value=2012)
    >>> g.add_edge(m, y)
    True
    >>> schema = AccessSchema([AccessConstraint(("movie",), "year", 1)])
    >>> sx = SchemaIndex(g, schema)
    >>> sx.fetch(next(iter(schema)), (m,))
    (1,)
    """

    def __init__(self, graph: GraphView, schema: AccessSchema,
                 track_members: bool = False, validate: bool = False,
                 frozen: bool = False):
        if frozen and track_members:
            raise SchemaError(
                "a frozen index cannot track members (it is immutable)")
        self.graph = graph
        self.schema = schema
        self.frozen = frozen
        #: Constraint indexes constructed by (or adopted into) this
        #: object — the counter the incremental-extension acceptance
        #: criterion asserts on: growing the schema by k constraints
        #: must raise ``builds`` by exactly k, never by a full rebuild.
        self.builds = 0
        self._indexes: dict[AccessConstraint, BaseConstraintIndex] = {}
        for constraint in schema:
            self._indexes[constraint] = self._build_one(constraint, track_members)
        if validate:
            self.validate()

    def _build_one(self, constraint: AccessConstraint,
                   track_members: bool) -> BaseConstraintIndex:
        if self.frozen:
            if track_members:
                raise SchemaError(
                    "a frozen index cannot track members (it is immutable)")
            self.builds += 1
            return FrozenConstraintIndex(constraint, self.graph)
        self.builds += 1
        return ConstraintIndex(constraint, self.graph,
                               track_members=track_members)

    @classmethod
    def from_prebuilt(cls, graph: GraphView, schema: AccessSchema,
                      indexes: dict) -> "SchemaIndex":
        """Assemble a schema index from already-built per-constraint
        indexes, skipping construction entirely (the artifact warm-start
        path — see :mod:`repro.engine.persist`)."""
        missing = [c for c in schema if c not in indexes]
        if missing:
            raise SchemaError(
                f"prebuilt indexes missing for constraints: "
                f"{', '.join(str(c) for c in missing)}")
        sx = cls.__new__(cls)
        sx.graph = graph
        sx.schema = schema
        sx.frozen = all(isinstance(indexes[c], FrozenConstraintIndex)
                        for c in schema)
        sx.builds = 0
        sx._indexes = {c: indexes[c] for c in schema}
        return sx

    def constraint_at(self, position: int) -> AccessConstraint:
        """Constraint at ``position`` in the schema's canonical order
        (the scatter-gather task protocol addresses constraints this
        way; see :mod:`repro.core.executor`)."""
        return self.schema.at(position)

    def has_index(self, constraint: AccessConstraint) -> bool:
        """True when an index for ``constraint`` is live here (may
        briefly differ from schema membership mid-extension: indexes are
        adopted before the catalog publishes the constraint)."""
        return constraint in self._indexes

    def index_for(self, constraint: AccessConstraint) -> BaseConstraintIndex:
        try:
            return self._indexes[constraint]
        except KeyError:
            raise SchemaError(f"no index built for {constraint}") from None

    def add_constraint(self, constraint: AccessConstraint,
                       track_members: bool = False) -> BaseConstraintIndex:
        """Extend the schema with a constraint and build its index (used by
        M-bounded extensions in Section V)."""
        if constraint in self._indexes:
            return self._indexes[constraint]
        self.schema.add(constraint)
        index = self._build_one(constraint, track_members)
        self._indexes[constraint] = index
        return index

    def adopt_index(self, constraint: AccessConstraint,
                    index: BaseConstraintIndex,
                    built: bool = True) -> BaseConstraintIndex:
        """Register an externally built index for ``constraint`` without
        touching the schema.

        This is the serving half of incremental extension: the engine
        builds the index off the query path (possibly per shard, over
        owned targets only), adopts it here — a single atomic dict
        insertion, safe under concurrent frozen reads — and only then
        appends the constraint to the schema through the catalog, so no
        reader can plan against a constraint whose index is not yet
        live. ``built=False`` adopts without counting a build (e.g.
        re-registering a pre-existing index).
        """
        if constraint in self._indexes:
            return self._indexes[constraint]
        if built:
            self.builds += 1
        self._indexes[constraint] = index
        return index

    def fetch(self, constraint: AccessConstraint, key: Sequence[int],
              stats: AccessStats | None = None) -> tuple[int, ...]:
        """O(N) fetch through the index of ``constraint``."""
        return self.index_for(constraint).fetch(key, stats=stats)

    def validate(self) -> None:
        """Raise :class:`ConstraintViolation` if the graph violates any
        constraint's cardinality bound."""
        for constraint, index in self._indexes.items():
            for key, count in index.violations():
                raise ConstraintViolation(constraint, key, count)

    def satisfied(self) -> bool:
        """True iff ``G |= A`` (cardinality side)."""
        return all(index.is_satisfied() for index in self._indexes.values())

    @property
    def total_size(self) -> int:
        """Total index cells across all constraints (Fig. 5(d,h,l))."""
        return sum(index.size for index in self._indexes.values())

    def size_for(self, constraints: Iterable[AccessConstraint]) -> int:
        """Index size restricted to the given constraints (the paper's
        ``|index_Q|`` — only the indices a plan actually uses)."""
        return sum(self.index_for(c).size for c in set(constraints))

    def __repr__(self) -> str:
        return f"SchemaIndex(constraints={len(self._indexes)}, size={self.total_size})"
