"""The versioned access-schema catalog (schema lifecycle).

Before this module, "the schema" was a bare :class:`AccessSchema` frozen
at engine-open time: the M-bounded extension machinery of Section V
(:mod:`repro.core.instance`) ran offline only, and a production session
that rejected a query as unbounded rejected it forever. The catalog
makes the schema a *versioned, growing* object with one invariant stack:

* **Monotonic generations.** A catalog starts at generation 0 (the base
  schema) and only ever grows: :meth:`SchemaCatalog.extend` appends the
  new constraints of an M-bounded extension ``A_M`` as generation
  ``version + 1``. Constraints are never removed or reordered, so the
  canonical constraint *positions* that compiled plans and the
  scatter-gather task protocol use stay valid across every generation.
* **Append-then-publish.** ``extend`` appends the constraints to the
  underlying schema (each append is a single GIL-atomic list/dict/set
  insertion) and publishes the new generation record — and with it the
  bumped :attr:`version` — last. Concurrent readers therefore observe
  either the old generation or the new one, never a torn intermediate
  with a bumped version but missing constraints. Callers that attach
  *indexes* to the new constraints (the engine's ``extend_schema``)
  install the indexes **before** calling ``extend``, so by the time a
  reader can compile a plan using a new constraint, its index is live —
  the same load-then-swap discipline as the server's hot artifact
  reload.
* **Provenance.** Every generation records where its constraints came
  from (the extension budget ``M``, the origin — offline ``repro
  extend``, a server-side rescue, ... — and free-form context), which
  persists into artifacts and surfaces in ``repro compile --inspect``
  and the server's ``metrics`` op.

The catalog is the authority the engine's plan cache validates verdicts
against: a cached *negative* EBChk verdict ("not effectively bounded")
recorded at one generation is a miss at any later one — the extension
may have made the query bounded — while cached *plans* stay hits, since
a plan compiled under ``A`` remains correct under ``A ∪ A'``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.errors import SchemaError


@dataclass(frozen=True)
class SchemaGeneration:
    """One generation of a :class:`SchemaCatalog`.

    ``added`` lists the constraints this generation appended (empty for
    generation 0, whose constraints are the base schema itself);
    ``size`` is ``||A||`` after the generation; ``provenance`` is a
    JSON-serializable record of where the constraints came from.
    """

    version: int
    added: tuple[AccessConstraint, ...]
    size: int
    provenance: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"version": self.version,
                "added": [c.to_dict() for c in self.added],
                "size": self.size,
                "provenance": dict(self.provenance)}

    @classmethod
    def from_dict(cls, payload: dict) -> "SchemaGeneration":
        try:
            return cls(version=int(payload["version"]),
                       added=tuple(AccessConstraint.from_dict(doc)
                                   for doc in payload.get("added", ())),
                       size=int(payload["size"]),
                       provenance=dict(payload.get("provenance", {})))
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed schema generation: {exc}") from exc


class SchemaCatalog:
    """A monotonically versioned lifecycle around one :class:`AccessSchema`.

    The catalog owns the schema *object* for its whole life: extensions
    append to it in place (preserving canonical constraint positions)
    and bump the published :attr:`version`. Everything that keys on "the
    schema" — plan-cache verdicts, artifacts, shard task positions,
    server metrics — keys on ``(catalog, version)`` instead of on a
    frozen snapshot.

    Examples
    --------
    >>> base = AccessSchema([AccessConstraint((), "year", 10)])
    >>> catalog = SchemaCatalog(base)
    >>> catalog.version
    0
    >>> gen = catalog.extend([AccessConstraint(("year",), "movie", 4)],
    ...                      provenance={"origin": "doctest", "m": 4})
    >>> catalog.version, len(catalog.current), gen.provenance["m"]
    (1, 2, 4)
    >>> catalog.extend([AccessConstraint(("year",), "movie", 4)]) is None
    True
    """

    def __init__(self, schema: AccessSchema,
                 generations: Iterable[SchemaGeneration] | None = None,
                 provenance: dict | None = None):
        if not isinstance(schema, AccessSchema):
            raise SchemaError(
                f"a catalog wraps an AccessSchema, got {type(schema).__name__}")
        self._schema = schema
        self._lock = threading.Lock()
        if generations is None:
            base = SchemaGeneration(
                version=0, added=(), size=len(schema),
                provenance=provenance or {"origin": "initial"})
            self._generations: list[SchemaGeneration] = [base]
        else:
            self._generations = list(generations)
            self._check_generations()

    def _check_generations(self) -> None:
        if not self._generations:
            raise SchemaError("a catalog needs at least generation 0")
        for i, generation in enumerate(self._generations):
            if generation.version != i:
                raise SchemaError(
                    f"generation versions must be 0..N in order, got "
                    f"{generation.version} at position {i}")
        if self._generations[-1].size != len(self._schema):
            raise SchemaError(
                f"catalog generations describe {self._generations[-1].size} "
                f"constraints but the schema has {len(self._schema)}")

    # -- reading -------------------------------------------------------------
    @property
    def current(self) -> AccessSchema:
        """The schema being served (one object, growing in place)."""
        return self._schema

    @property
    def version(self) -> int:
        """The published generation number (monotonically increasing)."""
        return self._generations[-1].version

    @property
    def generations(self) -> tuple[SchemaGeneration, ...]:
        return tuple(self._generations)

    def added_since(self, version: int) -> list[AccessConstraint]:
        """Constraints appended after ``version`` (provenance queries)."""
        out: list[AccessConstraint] = []
        for generation in self._generations:
            if generation.version > version:
                out.extend(generation.added)
        return out

    # -- growing -------------------------------------------------------------
    def extend(self, constraints: Iterable[AccessConstraint],
               provenance: dict | None = None) -> SchemaGeneration | None:
        """Append ``constraints`` as a new generation.

        Constraints already present are skipped; if nothing is new, the
        version does **not** bump and ``None`` is returned (a no-op
        extension must not invalidate cached verdicts). The generation
        record — and the version — publish only after every constraint
        is in the schema.
        """
        with self._lock:
            added = tuple(c for c in constraints if self._schema.add(c))
            if not added:
                return None
            generation = SchemaGeneration(
                version=self._generations[-1].version + 1,
                added=added, size=len(self._schema),
                provenance=dict(provenance or {}))
            # Publish last: the version bump is the commit point.
            self._generations.append(generation)
            return generation

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Catalog metadata (generations + provenance). The constraint
        *set* itself is serialized by :meth:`AccessSchema.to_dict`; this
        records how it grew."""
        return {"version": self.version,
                "generations": [g.to_dict() for g in self._generations]}

    @classmethod
    def from_dict(cls, payload: dict, schema: AccessSchema) -> "SchemaCatalog":
        """Rehydrate a catalog over its (already decoded) schema."""
        try:
            generations = [SchemaGeneration.from_dict(doc)
                           for doc in payload["generations"]]
            version = int(payload["version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed catalog document: {exc}") from exc
        catalog = cls(schema, generations=generations)
        if catalog.version != version:
            raise SchemaError(
                f"catalog document claims version {version} but lists "
                f"generations up to {catalog.version}")
        return catalog

    def __len__(self) -> int:
        return len(self._generations)

    def __repr__(self) -> str:
        return (f"SchemaCatalog(version={self.version}, "
                f"constraints={len(self._schema)})")
