"""Plan execution: fetching ``G_Q`` from a graph through the indexes.

Executing a :class:`~repro.core.plan.QueryPlan` has two phases, mirroring
Section IV's "Building G_Q":

1. **Node phase** — run the fetch operations in order. A type (1)
   operation scans the label index; a general operation enumerates the
   product of the already-fetched candidate sets of its source nodes and
   fetches common neighbours through the constraint's index. Later
   operations for the same node *reduce* (intersect) its candidate set.

2. **Edge phase** — verify each query edge through its assigned
   :class:`~repro.core.plan.EdgeCheck`: re-fetch common neighbours of the
   source candidates through the covering constraint's index, intersect
   with the target's candidates, and resolve edge direction. The fetched
   entries are counted as *edge* accesses, matching the paper's Example 1
   arithmetic (17 923 nodes + 35 136 edges for Q0/A0). A ``probe`` check
   instead tests all candidate pairs against the adjacency store.

Correctness (``Q(G_Q) = Q(G)``) holds for both semantics because every
candidate set is a superset of the true matches (fetch operations follow
covered S-labeled sets) and every edge of a true match is re-discovered by
the edge phase — see DESIGN.md for the argument, and the property tests in
``tests/test_properties.py`` for empirical verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.accounting import AccessStats
from repro.constraints.index import SchemaIndex
from repro.core.plan import EDGE_VIA_INDEX, EDGE_VIA_PROBE, QueryPlan
from repro.errors import PlanError, UnverifiableEdge
from repro.graph.graph import Graph

#: Executor edge-phase modes.
MODE_PLAN = "plan"      # follow the plan's edge checks (default)
MODE_PROBE = "probe"    # ignore the plan; probe all candidate pairs


@dataclass
class ExecutionResult:
    """Outcome of executing a plan on a graph.

    Attributes
    ----------
    gq:
        The fetched subgraph ``G_Q`` with ``Q(G_Q) = Q(G)``.
    candidates:
        Final candidate set ``cmat(u)`` per pattern node.
    stats:
        Access accounting for the whole execution.
    """

    plan: QueryPlan
    gq: Graph
    candidates: dict[int, set[int]]
    stats: AccessStats

    @property
    def gq_size(self) -> int:
        return self.gq.size


def execute_plan(plan: QueryPlan, schema_index: SchemaIndex,
                 stats: AccessStats | None = None,
                 edge_mode: str = MODE_PLAN) -> ExecutionResult:
    """Execute ``plan`` against ``schema_index`` and build ``G_Q``.

    ``edge_mode=MODE_PROBE`` replaces every edge check with pairwise
    adjacency probes — used by tests to cross-validate the index-driven
    edge phase (both must produce a ``G_Q`` with identical match sets).
    """
    if edge_mode not in (MODE_PLAN, MODE_PROBE):
        raise PlanError(f"unknown edge mode {edge_mode!r}")
    graph = schema_index.graph
    pattern = plan.pattern
    stats = stats if stats is not None else AccessStats()

    # ---- node phase ------------------------------------------------------------
    candidates: dict[int, set[int]] = {}
    for op in plan.ops:
        predicate = op.predicate
        if op.is_initial:
            fetched = schema_index.fetch(op.constraint, (), stats=stats)
            found = {v for v in fetched if predicate.evaluate(graph.value_of(v))}
        else:
            missing = [q for q in op.source_nodes if q not in candidates]
            if missing:
                raise PlanError(
                    f"fetch for node {op.target} uses nodes {missing} with no "
                    f"candidates yet; plan is out of order")
            pools = [sorted(candidates[q]) for q in op.source_nodes]
            raw: set[int] = set()
            for combo in product(*pools):
                raw.update(schema_index.fetch(op.constraint, combo, stats=stats))
            found = {v for v in raw if predicate.evaluate(graph.value_of(v))}
        if op.target in candidates:
            candidates[op.target] &= found
        else:
            candidates[op.target] = found

    uncovered = [u for u in pattern.nodes() if u not in candidates]
    if uncovered:
        raise PlanError(f"plan has no fetch operation for nodes {uncovered}")

    # ---- edge phase ---------------------------------------------------------------
    edges_found: set[tuple[int, int]] = set()
    if edge_mode == MODE_PROBE:
        for edge in pattern.edges():
            _probe_edge(edge, candidates, graph, stats, edges_found)
    else:
        for check in plan.edge_checks:
            if check.mode == EDGE_VIA_PROBE:
                _probe_edge(check.edge, candidates, graph, stats, edges_found)
            elif check.mode == EDGE_VIA_INDEX:
                _index_edge(check, candidates, schema_index, stats, edges_found)
            else:  # pragma: no cover - defensive
                raise UnverifiableEdge(f"unknown edge-check mode {check.mode!r}")

    # ---- assemble G_Q ----------------------------------------------------------------
    gq = Graph()
    kept: set[int] = set()
    for pool in candidates.values():
        kept |= pool
    for v in sorted(kept):
        gq.add_node(graph.label_of(v), value=graph.value_of(v), node_id=v)
    for (v, w) in edges_found:
        gq.add_edge(v, w)
    return ExecutionResult(plan=plan, gq=gq, candidates=candidates, stats=stats)


def _probe_edge(edge: tuple[int, int], candidates: dict[int, set[int]],
                graph, stats: AccessStats,
                edges_found: set[tuple[int, int]]) -> None:
    """Pairwise adjacency probes for one query edge."""
    a, b = edge
    for va in candidates[a]:
        for vb in candidates[b]:
            stats.record_edge_checks(1)
            if graph.has_edge(va, vb):
                edges_found.add((va, vb))


def _index_edge(check, candidates: dict[int, set[int]],
                schema_index: SchemaIndex, stats: AccessStats,
                edges_found: set[tuple[int, int]]) -> None:
    """Index-driven verification for one query edge (paper's method).

    Fetches common neighbours of every source-candidate combination,
    keeps those in the target's candidate set, and resolves the query
    edge's direction against the adjacency store.
    """
    graph = schema_index.graph
    a, b = check.edge
    target = check.fetch_target
    other = a if target == b else b
    try:
        other_pos = check.source_nodes.index(other)
    except ValueError:
        raise UnverifiableEdge(
            f"edge check for {check.edge} does not include endpoint "
            f"{other} in its source nodes") from None

    target_pool = candidates[target]
    pools = [sorted(candidates[q]) for q in check.source_nodes]
    for combo in product(*pools):
        fetched = schema_index.fetch(check.constraint, combo)
        stats.record_edge_fetch(fetched)
        vo = combo[other_pos]
        for w in fetched:
            if w not in target_pool:
                continue
            # The query edge is (a, b); w matches `target`, vo matches `other`.
            if target == b:
                if graph.has_edge(vo, w):
                    edges_found.add((vo, w))
            else:
                if graph.has_edge(w, vo):
                    edges_found.add((w, vo))
