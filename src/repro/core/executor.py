"""Plan execution: fetching ``G_Q`` from a graph through the indexes.

Executing a :class:`~repro.core.plan.QueryPlan` has two phases, mirroring
Section IV's "Building G_Q":

1. **Node phase** — run the fetch operations in order. A type (1)
   operation scans the label index; a general operation enumerates the
   product of the already-fetched candidate sets of its source nodes and
   fetches common neighbours through the constraint's index. Later
   operations for the same node *reduce* (intersect) its candidate set.

2. **Edge phase** — verify each query edge through its assigned
   :class:`~repro.core.plan.EdgeCheck`: re-fetch common neighbours of the
   source candidates through the covering constraint's index, intersect
   with the target's candidates, and resolve edge direction. The fetched
   entries are counted as *edge* accesses, matching the paper's Example 1
   arithmetic (17 923 nodes + 35 136 edges for Q0/A0). A ``probe`` check
   instead tests all candidate pairs against the adjacency store.

Within one execution, identical ``(constraint, source-combo)`` fetches
are **memoized per phase**: the first fetch is recorded in the access
accounting, repeats are served from the execution-local memo for free.
Node-phase and edge-phase memos are deliberately separate — an edge-phase
fetch counts as edge examinations (the paper's Example 1 arithmetic), so
folding the two would change what the numbers mean, not just their size.

Two execution strategies share the phase logic and produce *identical*
answers, candidate sets, ``G_Q`` and access accounting:

* :func:`execute_plan` — sequential, against one
  :class:`~repro.constraints.index.SchemaIndex`;
* :func:`execute_plans_scatter` — scatter-gather over the shards of a
  :class:`~repro.graph.partition.GraphPartition` (inline or in worker
  processes, see :mod:`repro.engine.parallel`): each logical fetch is
  scattered to every shard, per-shard payloads merge into the global
  payload (disjoint by ownership), and many executions advance together
  in waves so one worker round-trip carries a whole batch's work.

Correctness (``Q(G_Q) = Q(G)``) holds for both semantics because every
candidate set is a superset of the true matches (fetch operations follow
covered S-labeled sets) and every edge of a true match is re-discovered by
the edge phase — see DESIGN.md for the argument, and the property tests in
``tests/test_properties.py`` for empirical verification.
"""

from __future__ import annotations

import queue as _queue_mod
from dataclasses import dataclass
from itertools import product

from repro.accounting import AccessStats
from repro.constraints.index import SchemaIndex
from repro.core.plan import EDGE_VIA_INDEX, EDGE_VIA_PROBE, QueryPlan
from repro.errors import PlanError, UnverifiableEdge
from repro.graph.graph import Graph
from repro.obs.trace import child_span

#: Executor edge-phase modes.
MODE_PLAN = "plan"      # follow the plan's edge checks (default)
MODE_PROBE = "probe"    # ignore the plan; probe all candidate pairs


@dataclass
class ExecutionResult:
    """Outcome of executing a plan on a graph.

    Attributes
    ----------
    gq:
        The fetched subgraph ``G_Q`` with ``Q(G_Q) = Q(G)``.
    candidates:
        Final candidate set ``cmat(u)`` per pattern node.
    stats:
        Access accounting for the whole execution.
    """

    plan: QueryPlan
    gq: Graph
    candidates: dict[int, set[int]]
    stats: AccessStats

    @property
    def gq_size(self) -> int:
        return self.gq.size


# ------------------------------------------------------------------ sequential
def execute_plan(plan: QueryPlan, schema_index: SchemaIndex,
                 stats: AccessStats | None = None,
                 edge_mode: str = MODE_PLAN) -> ExecutionResult:
    """Execute ``plan`` against ``schema_index`` and build ``G_Q``.

    ``edge_mode=MODE_PROBE`` replaces every edge check with pairwise
    adjacency probes — used by tests to cross-validate the index-driven
    edge phase (both must produce a ``G_Q`` with identical match sets).
    """
    if edge_mode not in (MODE_PLAN, MODE_PROBE):
        raise PlanError(f"unknown edge mode {edge_mode!r}")
    graph = schema_index.graph
    pattern = plan.pattern
    stats = stats if stats is not None else AccessStats()

    # ---- node phase ------------------------------------------------------------
    # Execution-local fetch memo: identical (constraint, combo) fetches
    # issued by later operations are free and unrecorded.
    node_memo: dict[tuple, tuple[int, ...]] = {}
    candidates: dict[int, set[int]] = {}
    for op in plan.ops:
        predicate = op.predicate
        if op.is_initial:
            combos = [()]
        else:
            pools = _source_pools(op, candidates)
            combos = product(*pools)
        raw: set[int] = set()
        for combo in combos:
            key = (op.constraint, combo)
            payload = node_memo.get(key)
            if payload is None:
                payload = schema_index.fetch(op.constraint, combo, stats=stats)
                node_memo[key] = payload
            raw.update(payload)
        found = {v for v in raw if predicate.evaluate(graph.value_of(v))}
        if op.target in candidates:
            candidates[op.target] &= found
        else:
            candidates[op.target] = found

    _check_coverage(plan, candidates)

    # ---- edge phase ---------------------------------------------------------------
    edges_found: set[tuple[int, int]] = set()
    edge_memo: dict[tuple, tuple[int, ...]] = {}
    probe_memo: dict[tuple, set] = {}
    if edge_mode == MODE_PROBE:
        for edge in pattern.edges():
            _probe_edge(edge, candidates, graph, stats, edges_found,
                        probe_memo)
    else:
        for check in plan.edge_checks:
            if check.mode == EDGE_VIA_PROBE:
                _probe_edge(check.edge, candidates, graph, stats,
                            edges_found, probe_memo)
            elif check.mode == EDGE_VIA_INDEX:
                _index_edge(check, candidates, schema_index, stats,
                            edges_found, edge_memo)
            else:  # pragma: no cover - defensive
                raise UnverifiableEdge(f"unknown edge-check mode {check.mode!r}")

    # ---- assemble G_Q ----------------------------------------------------------------
    gq = Graph()
    for v in _kept_nodes(candidates):
        gq.add_node(graph.label_of(v), value=graph.value_of(v), node_id=v)
    for (v, w) in edges_found:
        gq.add_edge(v, w)
    return ExecutionResult(plan=plan, gq=gq, candidates=candidates, stats=stats)


def _source_pools(op_or_check, candidates: dict[int, set[int]]):
    """Sorted candidate pools of the source nodes, in plan order."""
    missing = [q for q in op_or_check.source_nodes if q not in candidates]
    if missing:
        raise PlanError(
            f"fetch for node {getattr(op_or_check, 'target', op_or_check)} "
            f"uses nodes {missing} with no candidates yet; plan is out of "
            f"order")
    return [sorted(candidates[q]) for q in op_or_check.source_nodes]


def _check_coverage(plan: QueryPlan, candidates: dict[int, set[int]]) -> None:
    uncovered = [u for u in plan.pattern.nodes() if u not in candidates]
    if uncovered:
        raise PlanError(f"plan has no fetch operation for nodes {uncovered}")


def _kept_nodes(candidates: dict[int, set[int]]) -> list[int]:
    kept: set[int] = set()
    for pool in candidates.values():
        kept |= pool
    return sorted(kept)


def _probe_edge(edge: tuple[int, int], candidates: dict[int, set[int]],
                graph, stats: AccessStats,
                edges_found: set[tuple[int, int]],
                probe_memo: dict[tuple, set] | None = None) -> None:
    """Pairwise adjacency probes for one query edge.

    ``probe_memo`` (execution-local, keyed by the two endpoint pools)
    reuses the adjacency answers when several query edges probe the same
    candidate-pool pair. The *accounting* is unchanged — every pair
    still counts as an edge check, exactly like the unmemoized loop —
    only the repeated ``has_edge`` calls are skipped.
    """
    a, b = edge
    pool_a, pool_b = candidates[a], candidates[b]
    key = None
    if probe_memo is not None:
        key = (tuple(sorted(pool_a)), tuple(sorted(pool_b)))
        hit = probe_memo.get(key)
        if hit is not None:
            stats.record_edge_checks(len(pool_a) * len(pool_b))
            edges_found |= hit
            return
    found: set[tuple[int, int]] = set()
    for va in pool_a:
        for vb in pool_b:
            stats.record_edge_checks(1)
            if graph.has_edge(va, vb):
                found.add((va, vb))
    if key is not None:
        probe_memo[key] = found
    edges_found |= found


def _edge_check_geometry(check, candidates: dict[int, set[int]]):
    """``(target_pool, other_pos, forward)`` for one index edge check.

    ``forward`` is True when the fetched node matches the edge's head —
    the verified data edge then runs *from* the combo's ``other`` member
    *to* the fetched node.
    """
    a, b = check.edge
    target = check.fetch_target
    other = a if target == b else b
    try:
        other_pos = check.source_nodes.index(other)
    except ValueError:
        raise UnverifiableEdge(
            f"edge check for {check.edge} does not include endpoint "
            f"{other} in its source nodes") from None
    return candidates[target], other_pos, target == b


def _index_edge(check, candidates: dict[int, set[int]],
                schema_index: SchemaIndex, stats: AccessStats,
                edges_found: set[tuple[int, int]],
                edge_memo: dict[tuple, tuple[int, ...]]) -> None:
    """Index-driven verification for one query edge (paper's method).

    Fetches common neighbours of every source-candidate combination,
    keeps those in the target's candidate set, and resolves the query
    edge's direction against the adjacency store. Fetches repeated
    across combos/checks are served from ``edge_memo`` unrecorded.
    """
    graph = schema_index.graph
    target_pool, other_pos, forward = _edge_check_geometry(check, candidates)
    pools = _source_pools(check, candidates)
    for combo in product(*pools):
        key = (check.constraint, combo)
        fetched = edge_memo.get(key)
        if fetched is None:
            fetched = schema_index.fetch(check.constraint, combo)
            stats.record_edge_fetch(fetched)
            edge_memo[key] = fetched
        vo = combo[other_pos]
        for w in fetched:
            if w not in target_pool:
                continue
            # The query edge is (a, b); w matches `fetch_target`.
            if forward:
                if graph.has_edge(vo, w):
                    edges_found.add((vo, w))
            else:
                if graph.has_edge(w, vo):
                    edges_found.add((w, vo))


# -------------------------------------------------------------- scatter-gather
# Task tuples sent to every shard (see repro.engine.parallel for the
# shard-side handler):
#
#   ("fetch", cpos, [combo, ...])  -> ([payload per combo],
#                                      {id: (label, value)})
#   ("edge",  cpos, [combo, ...])  -> [[(w, ((fwd, back) per member)), ...]
#                                      per combo]
#   ("probe", a_nodes, b_nodes)    -> (pairs_checked, [(va, vb), ...])
#
# ``cpos`` indexes the constraint in the schema's canonical iteration
# order (stable across processes — the same trick persist.py uses for
# plan encoding). Per-shard "fetch"/"edge" payloads contain only targets
# the shard *owns*, so concatenating them reconstructs the global index
# entry exactly; "probe" counts only pairs whose source the shard owns,
# so the pair count sums to |A|x|B| exactly once.

TASK_FETCH = "fetch"
TASK_EDGE = "edge"
TASK_PROBE = "probe"


class _ScatterExecution:
    """State machine for one plan execution driven in shared waves."""

    __slots__ = ("plan", "stats", "edge_mode", "constraint_pos",
                 "candidates", "node_memo", "edge_memo", "node_info",
                 "edges_found", "op_idx", "phase", "pending_op",
                 "pending_edges", "done")

    def __init__(self, plan: QueryPlan, constraint_pos: dict,
                 stats: AccessStats, edge_mode: str):
        self.plan = plan
        self.stats = stats
        self.edge_mode = edge_mode
        self.constraint_pos = constraint_pos
        self.candidates: dict[int, set[int]] = {}
        self.node_memo: dict[tuple, tuple[int, ...]] = {}
        self.edge_memo: dict[tuple, list] = {}
        self.node_info: dict[int, tuple] = {}
        self.edges_found: set[tuple[int, int]] = set()
        self.op_idx = 0
        self.phase = "node"
        self.pending_op = None        # (op, combos) awaiting fetch delivery
        self.pending_edges = None     # list of edge checks / probe edges
        self.done = False

    # -- wave protocol -------------------------------------------------------
    def next_tasks(self) -> list[tuple]:
        """Advance through locally-satisfiable steps; return the scatter
        tasks this execution needs before it can advance further (empty
        when it just finished)."""
        while not self.done:
            if self.phase == "node":
                tasks = self._node_tasks()
            else:
                tasks = self._edge_tasks()
            if tasks is not None:
                return tasks
        return []

    def deliver(self, task: tuple, shard_responses: list) -> None:
        """Merge one task's per-shard responses (exactly once per task)."""
        kind = task[0]
        if kind == TASK_FETCH:
            self._deliver_fetch(task, shard_responses)
        elif kind == TASK_EDGE:
            self._deliver_edge(task, shard_responses)
        else:
            self._deliver_probe(task, shard_responses)

    # -- node phase ----------------------------------------------------------
    def _node_tasks(self):
        ops = self.plan.ops
        while self.op_idx < len(ops):
            op = ops[self.op_idx]
            combos = [()] if op.is_initial else \
                list(product(*_source_pools(op, self.candidates)))
            cpos = self.constraint_pos[op.constraint]
            missing = [c for c in combos
                       if (cpos, c) not in self.node_memo]
            if missing:
                self.pending_op = (op, combos)
                return [(TASK_FETCH, cpos, missing)]
            self._complete_op(op, combos)
        _check_coverage(self.plan, self.candidates)
        self.phase = "edge"
        return None

    def _complete_op(self, op, combos) -> None:
        cpos = self.constraint_pos[op.constraint]
        raw: set[int] = set()
        for combo in combos:
            raw.update(self.node_memo[(cpos, combo)])
        info = self.node_info
        found = {v for v in raw if op.predicate.evaluate(info[v][1])}
        if op.target in self.candidates:
            self.candidates[op.target] &= found
        else:
            self.candidates[op.target] = found
        self.op_idx += 1

    def _deliver_fetch(self, task, shard_responses) -> None:
        _, cpos, combos = task
        merged_payloads = [[] for _ in combos]
        for response in shard_responses:
            if response is None:  # shard not routed this task
                continue
            payloads, info = response
            for i, payload in enumerate(payloads):
                merged_payloads[i].extend(payload)
            self.node_info.update(info)
        for combo, payload in zip(combos, merged_payloads):
            merged = tuple(sorted(payload))
            self.node_memo[(cpos, combo)] = merged
            self.stats.record_fetch(merged)
        if self.pending_op is not None:
            op, op_combos = self.pending_op
            self.pending_op = None
            self._complete_op(op, op_combos)

    # -- edge phase ----------------------------------------------------------
    def _edge_tasks(self):
        if self.pending_edges is None:
            # All edge checks are independent given the final candidate
            # sets, so the whole phase needs at most one wave.
            if self.edge_mode == MODE_PROBE:
                checks = [(EDGE_VIA_PROBE, edge)
                          for edge in self.plan.pattern.edges()]
            else:
                checks = []
                for check in self.plan.edge_checks:
                    if check.mode == EDGE_VIA_PROBE:
                        checks.append((EDGE_VIA_PROBE, check.edge))
                    elif check.mode == EDGE_VIA_INDEX:
                        checks.append((EDGE_VIA_INDEX, check))
                    else:  # pragma: no cover - defensive
                        raise UnverifiableEdge(
                            f"unknown edge-check mode {check.mode!r}")
            self.pending_edges = checks
            tasks = []
            missing_by_cpos: dict[int, list] = {}
            seen_by_cpos: dict[int, set] = {}
            for kind, item in checks:
                if kind == EDGE_VIA_PROBE:
                    a, b = item
                    tasks.append((TASK_PROBE, sorted(self.candidates[a]),
                                  sorted(self.candidates[b])))
                else:
                    # Validate geometry before scattering any work.
                    _edge_check_geometry(item, self.candidates)
                    cpos = self.constraint_pos[item.constraint]
                    missing = missing_by_cpos.setdefault(cpos, [])
                    seen = seen_by_cpos.setdefault(cpos, set())
                    for combo in product(*_source_pools(item,
                                                        self.candidates)):
                        if (cpos, combo) not in self.edge_memo \
                                and combo not in seen:
                            seen.add(combo)
                            missing.append(combo)
            tasks.extend((TASK_EDGE, cpos, combos)
                         for cpos, combos in missing_by_cpos.items() if combos)
            if tasks:
                return tasks
        self._finalize_edges()
        return None

    def _deliver_edge(self, task, shard_responses) -> None:
        _, cpos, combos = task
        merged = [[] for _ in combos]
        for payloads in shard_responses:
            if payloads is None:  # shard not routed this task
                continue
            for i, payload in enumerate(payloads):
                merged[i].extend(payload)
        for combo, entries in zip(combos, merged):
            entries.sort()
            self.edge_memo[(cpos, combo)] = entries
            self.stats.record_edge_fetch([w for w, _ in entries])

    def _deliver_probe(self, task, shard_responses) -> None:
        checked = 0
        for response in shard_responses:
            if response is None:  # shard not routed this task
                continue
            count, found = response
            checked += count
            self.edges_found.update(found)
        self.stats.record_edge_checks(checked)

    def _finalize_edges(self) -> None:
        for kind, item in self.pending_edges:
            if kind != EDGE_VIA_INDEX:
                continue  # probe edges were folded in at delivery
            target_pool, other_pos, forward = _edge_check_geometry(
                item, self.candidates)
            cpos = self.constraint_pos[item.constraint]
            for combo in product(*_source_pools(item, self.candidates)):
                vo = combo[other_pos]
                for w, flags in self.edge_memo[(cpos, combo)]:
                    if w not in target_pool:
                        continue
                    fwd, back = flags[other_pos]
                    if forward:
                        if fwd:
                            self.edges_found.add((vo, w))
                    elif back:
                        self.edges_found.add((w, vo))
        self.pending_edges = None
        self.done = True

    # -- assembly ------------------------------------------------------------
    def result(self) -> ExecutionResult:
        gq = Graph()
        info = self.node_info
        for v in _kept_nodes(self.candidates):
            label, value = info[v]
            gq.add_node(label, value=value, node_id=v)
        for (v, w) in self.edges_found:
            gq.add_edge(v, w)
        return ExecutionResult(plan=self.plan, gq=gq,
                               candidates=self.candidates, stats=self.stats)


def _route_task(task: tuple, router, target_by_pos: dict) -> frozenset:
    """Owner routing: the shard ids that can contribute a non-empty
    response to ``task``. Sound by construction — a ``fetch``/``edge``
    response contains only *owned* targets of the constraint's target
    label, and a ``probe`` counts only pairs whose source the shard
    owns, so every shard outside the returned set would respond empty
    under broadcast and skipping it leaves the merged result (and the
    access accounting over it) byte-identical.
    """
    if task[0] == TASK_PROBE:
        return router.shards_owning_any(task[1])
    return router.shards_with_label(target_by_pos[task[1]])


def execute_plans_scatter(plans: list[QueryPlan], backend,
                          stats_list: list[AccessStats] | None = None,
                          edge_mode: str = MODE_PLAN,
                          pipeline: bool = True) -> list[ExecutionResult]:
    """Execute ``plans`` by scatter-gather over ``backend``'s shards.

    ``backend`` is a :class:`~repro.engine.parallel.ShardBackend`
    (inline shards, a worker-process pool, or a remote fleet). Two
    drivers share the per-execution state machine:

    * ``pipeline=False`` — the classic lock-step wave barrier: each
      round gathers every execution's outstanding fetches into one
      scatter and no execution advances until the whole round returns.
    * ``pipeline=True`` (default) — per-shard progress: each logical
      fetch is decomposed into ``(kind, constraint, combo)`` cells,
      identical cells from different executions travel to a shard once
      and fan back out, and an execution whose own cells were all
      answered advances immediately, even while other shards of the
      same round are still in flight (the backend's ``scatter_submit``
      completes tasks out of round order). With a synchronous backend
      the pipelined driver degenerates to the same round structure as
      the barrier, minus the duplicate tasks.

    When the backend carries an :class:`~repro.engine.parallel.
    OwnerRouter`, each task is scattered only to the shards that can
    own its results (:func:`_route_task`) instead of broadcast to all.
    Answers, candidate sets, ``G_Q`` and access accounting are identical
    to :func:`execute_plan` on the unpartitioned graph either way.
    """
    if edge_mode not in (MODE_PLAN, MODE_PROBE):
        raise PlanError(f"unknown edge mode {edge_mode!r}")
    if stats_list is None:
        stats_list = [AccessStats() for _ in plans]
    constraint_pos = backend.constraint_pos
    router = getattr(backend, "router", None)
    exes = [_ScatterExecution(plan, constraint_pos, stats, edge_mode)
            for plan, stats in zip(plans, stats_list)]
    if pipeline and hasattr(backend, "scatter_submit"):
        _run_pipelined(exes, backend, constraint_pos, router)
    else:
        _run_barrier(exes, backend, constraint_pos, router)
    return [exe.result() for exe in exes]


def _run_barrier(exes, backend, constraint_pos, router) -> None:
    """Lock-step wave driver: one global barrier per round."""
    wave_index = 0
    while True:
        wave: list[tuple[_ScatterExecution, tuple]] = []
        for exe in exes:
            wave.extend((exe, task) for task in exe.next_tasks())
        if not wave:
            break
        tasks = [task for _, task in wave]
        shard_sets = _route_tasks(tasks, constraint_pos, router)
        with child_span("wave", index=wave_index, tasks=len(tasks)):
            responses = backend.scatter(tasks, shard_sets)
            for i, (exe, task) in enumerate(wave):
                exe.deliver(task, [shard[i] for shard in responses])
        wave_index += 1


def _route_tasks(tasks, constraint_pos, router):
    if router is None:
        return None
    # Rebuilt per round: extend_schema may have grown the position
    # table since the last one.
    target_by_pos = {pos: constraint.target
                     for constraint, pos in constraint_pos.items()}
    return [_route_task(task, router, target_by_pos) for task in tasks]


class _Cell:
    """One in-flight ``(kind, constraint, combo)`` fetch shared by every
    execution that needs it. Per-shard fragments accumulate here (shard
    payloads are disjoint by ownership, so accumulation order does not
    matter — delivery normalizes by sorting exactly like the barrier
    driver's shard-order merge)."""

    __slots__ = ("key", "done", "payload", "info", "checked", "found",
                 "waiters")

    def __init__(self, key: tuple):
        self.key = key
        self.done = False
        self.payload: list = []        # fetch payload / edge entries
        self.info: dict = {}           # fetch only: {v: (label, value)}
        self.checked = 0               # probe only
        self.found: list = []          # probe only
        self.waiters: list[_ExeState] = []


class _ExeState:
    """Driver-side bookkeeping for one execution between deliveries."""

    __slots__ = ("exe", "tasks", "task_cells", "missing")

    def __init__(self, exe: _ScatterExecution):
        self.exe = exe
        self.tasks = None         # logical tasks of the current step
        self.task_cells = None    # list[list[_Cell]] aligned with tasks
        self.missing = 0          # cells not yet done across all tasks


def _cell_keys(task: tuple) -> list[tuple]:
    kind = task[0]
    if kind == TASK_PROBE:
        return [(TASK_PROBE, tuple(task[1]), tuple(task[2]))]
    return [(kind, task[1], combo) for combo in task[2]]


def _deliver_state(state: _ExeState) -> None:
    """Deliver a step's tasks (in issue order) from their completed
    cells. Each task is handed to :meth:`_ScatterExecution.deliver` as
    a single pre-merged pseudo-shard response, which the existing
    delivery path normalizes (sort / sum / union) exactly as it does
    the barrier driver's shard-order merge."""
    for task, cells in zip(state.tasks, state.task_cells):
        kind = task[0]
        if kind == TASK_FETCH:
            info: dict = {}
            payloads = []
            for cell in cells:
                payloads.append(cell.payload)
                info.update(cell.info)
            state.exe.deliver(task, [(payloads, info)])
        elif kind == TASK_EDGE:
            state.exe.deliver(task, [[cell.payload for cell in cells]])
        else:
            cell = cells[0]
            state.exe.deliver(task, [(cell.checked, cell.found)])
    state.tasks = None
    state.task_cells = None


def _advance_state(state: _ExeState, cells: dict, fresh: list) -> int:
    """Pull the execution's next tasks and bind them to cells, creating
    cells (appended to ``fresh``) for fetches nobody has issued yet.
    Steps whose cells are all already complete are delivered inline and
    the execution keeps advancing. Returns the number of dedup hits
    (references to cells created by another execution)."""
    exe = state.exe
    hits = 0
    while not exe.done:
        tasks = exe.next_tasks()
        if not tasks:
            break
        missing = 0
        groups = []
        for task in tasks:
            group = []
            for key in _cell_keys(task):
                cell = cells.get(key)
                if cell is None:
                    cell = _Cell(key)
                    cells[key] = cell
                    fresh.append(cell)
                else:
                    hits += 1
                group.append(cell)
                if not cell.done:
                    missing += 1
                    cell.waiters.append(state)
            groups.append(group)
        state.tasks = tasks
        state.task_cells = groups
        state.missing = missing
        if missing:
            return hits
        _deliver_state(state)
    return hits


def _group_cells(fresh: list) -> tuple[list, list]:
    """Coalesce fresh cells into wire tasks: fetch/edge cells group by
    ``(kind, cpos)`` in first-seen order (all combos of one constraint
    share a routing set), probes stay single-cell tasks."""
    wire_tasks: list = []
    wire_groups: list[list[_Cell]] = []
    index: dict = {}
    for cell in fresh:
        kind = cell.key[0]
        if kind == TASK_PROBE:
            wire_tasks.append((TASK_PROBE, list(cell.key[1]),
                               list(cell.key[2])))
            wire_groups.append([cell])
            continue
        gkey = (kind, cell.key[1])
        at = index.get(gkey)
        if at is None:
            index[gkey] = len(wire_tasks)
            wire_tasks.append((kind, cell.key[1], [cell.key[2]]))
            wire_groups.append([cell])
        else:
            wire_tasks[at][2].append(cell.key[2])
            wire_groups[at].append(cell)
    return wire_tasks, wire_groups


def _absorb_response(task: tuple, cells: list, responses: list,
                     ready: list) -> None:
    """Split one wire task's per-shard responses into its cells, mark
    them done, and collect executions whose last missing cell this was."""
    kind = task[0]
    if kind == TASK_FETCH:
        for response in responses:
            if response is None:
                continue
            payloads, info = response
            for cell, payload in zip(cells, payloads):
                cell.payload.extend(payload)
                for v in payload:
                    cell.info[v] = info[v]
    elif kind == TASK_EDGE:
        for payloads in responses:
            if payloads is None:
                continue
            for cell, payload in zip(cells, payloads):
                cell.payload.extend(payload)
    else:
        cell = cells[0]
        for response in responses:
            if response is None:
                continue
            count, found = response
            cell.checked += count
            cell.found.extend(found)
    for cell in cells:
        cell.done = True
        for state in cell.waiters:
            state.missing -= 1
            if not state.missing:
                ready.append(state)
        cell.waiters = []


def _run_pipelined(exes, backend, constraint_pos, router) -> None:
    """Per-shard-progress driver over ``backend.scatter_submit``.

    Completions arrive per wire task on a queue (possibly from backend
    reader threads); an execution is re-advanced the moment its own
    cells are complete. Identity with the sequential executor holds
    because (a) each execution still observes its tasks in issue order,
    delivered only when fully merged, (b) cell fragments merge
    order-independently (sorted payloads, summed probe counts), and
    (c) every execution records its own ``AccessStats`` at delivery —
    dedup shares wire traffic, never accounting.
    """
    states = [_ExeState(exe) for exe in exes]
    cells: dict[tuple, _Cell] = {}
    completions: _queue_mod.Queue = _queue_mod.Queue()
    outstanding = 0
    dedup_hits = 0
    wave_index = 0
    ready = list(states)
    while True:
        fresh: list[_Cell] = []
        for state in ready:
            if state.tasks is not None:
                _deliver_state(state)
            dedup_hits += _advance_state(state, cells, fresh)
        ready = []
        if fresh:
            wire_tasks, wire_groups = _group_cells(fresh)
            shard_sets = _route_tasks(wire_tasks, constraint_pos, router)

            def _on_task(i, responses, _tasks=wire_tasks,
                         _groups=wire_groups):
                completions.put((_tasks[i], _groups[i], responses))

            with child_span("wave", index=wave_index,
                            tasks=len(wire_tasks)):
                backend.scatter_submit(wire_tasks, shard_sets, _on_task)
            outstanding += len(wire_tasks)
            wave_index += 1
        if not outstanding:
            break
        task, group, responses = completions.get()
        outstanding -= 1
        while True:
            if isinstance(responses, Exception):
                raise responses
            _absorb_response(task, group, responses, ready)
            try:
                task, group, responses = completions.get_nowait()
            except _queue_mod.Empty:
                break
            outstanding -= 1
    if dedup_hits:
        backend.scatter_dedup_hits = getattr(
            backend, "scatter_dedup_hits", 0) + dedup_hits


def run_shard_task(graph, schema_index, owned: frozenset, task: tuple):
    """Execute one scatter task against one shard (the worker-side half
    of the protocol above). Lives here so the sequential and sharded
    fetch semantics stay in one module; :mod:`repro.engine.parallel`
    calls it both inline and from worker processes."""
    kind = task[0]
    if kind == TASK_FETCH:
        _, cpos, combos = task
        constraint = schema_index.constraint_at(cpos)
        payloads = []
        info = {}
        for combo in combos:
            payload = schema_index.fetch(constraint, combo)
            payloads.append(payload)
            for v in payload:
                if v not in info:
                    info[v] = (graph.label_of(v), graph.value_of(v))
        return payloads, info
    if kind == TASK_EDGE:
        _, cpos, combos = task
        constraint = schema_index.constraint_at(cpos)
        results = []
        for combo in combos:
            entries = []
            for w in schema_index.fetch(constraint, combo):
                # w is owned by this shard, so *all* of w's adjacency is
                # present in the shard graph — both directions resolve
                # locally.
                flags = tuple((graph.has_edge(m, w), graph.has_edge(w, m))
                              for m in combo)
                entries.append((w, flags))
            results.append(entries)
        return results
    if kind == TASK_PROBE:
        _, a_nodes, b_nodes = task
        checked = 0
        found = []
        for va in a_nodes:
            if va not in owned:
                continue
            for vb in b_nodes:
                checked += 1
                if graph.has_edge(va, vb):
                    found.append((va, vb))
        return checked, found
    raise PlanError(f"unknown shard task {kind!r}")  # pragma: no cover
