"""Node and edge covers — the characterization of effective boundedness.

Section III-A defines, for a subgraph query ``Q`` and access schema ``A``:

* ``VCov(Q, A)`` — nodes deducible as having boundedly many candidates:
  type (1) constraints seed it, and ``S -> (l, N)`` extends it to common
  neighbours (labeled ``l``) of covered S-labeled sets;
* ``ECov(Q, A)`` — edges ``(u1, u2)`` verifiable through some constraint:
  one endpoint sits inside a covered S-labeled set and the other is the
  constraint's target label.

Theorem 1: ``Q`` is effectively bounded iff ``VCov = V_Q`` and
``ECov = E_Q``. Section VI-A strengthens the node cover for simulation
queries (``sVCov``) by deducing only through *children*, which is realized
here simply by actualizing Γ under the simulation semantics.

The fixpoint runs the worklist of algorithm EBChk (Fig. 3) with the
uncovered-label sets ``ct[φ]``; when every actualized constraint touches
each label at most once, the cheaper counter variant ``n[φ]`` of
Theorem 2(2) is used automatically (force either via ``use_counters``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.schema import AccessSchema
from repro.core.actualized import (
    SUBGRAPH,
    ActualizedConstraint,
    actualize,
    check_semantics,
    inverted_index,
)
from repro.pattern.pattern import Pattern


@dataclass
class CoverResult:
    """Output of the cover fixpoint.

    ``covered_by`` records, for every covered node, the actualized
    constraint that first deduced it (None when seeded by a type (1)
    constraint) — QPlan and the executor both reuse this provenance.
    """

    pattern: Pattern
    semantics: str
    node_cover: set[int]
    edge_cover: set[tuple[int, int]]
    gamma: list[ActualizedConstraint]
    covered_by: dict[int, ActualizedConstraint | None] = field(default_factory=dict)
    usable: set[ActualizedConstraint] = field(default_factory=set)

    @property
    def uncovered_nodes(self) -> list[int]:
        return sorted(set(self.pattern.nodes()) - self.node_cover)

    @property
    def uncovered_edges(self) -> list[tuple[int, int]]:
        return sorted(set(self.pattern.edges()) - self.edge_cover)

    @property
    def nodes_complete(self) -> bool:
        """``VCov(Q, A) = V_Q``."""
        return not self.uncovered_nodes

    @property
    def edges_complete(self) -> bool:
        """``ECov(Q, A) = E_Q``."""
        return not self.uncovered_edges

    @property
    def complete(self) -> bool:
        """Theorem 1 / Theorem 7 condition."""
        return self.nodes_complete and self.edges_complete


def counters_are_safe(gamma: list[ActualizedConstraint], pattern: Pattern) -> bool:
    """True when the counter optimization of Theorem 2(2) is sound: every
    actualized constraint's neighbour set has pairwise-distinct labels, so
    each counter decrement retires a distinct label.

    This holds in both of the paper's special cases (distinct parent
    labels; only type (1)/(2) constraints) and is checked directly here.
    """
    for phi in gamma:
        labels = [pattern.label_of(v) for v in phi.neighbours]
        if len(labels) != len(set(labels)):
            return False
    return True


def compute_covers(pattern: Pattern, schema: AccessSchema,
                   semantics: str = SUBGRAPH,
                   use_counters: bool | None = None) -> CoverResult:
    """Compute ``VCov/ECov`` (or ``sVCov/sECov``) via the EBChk worklist.

    Parameters
    ----------
    use_counters:
        None (default) auto-selects the counter variant when it is sound;
        True forces it (caller asserts soundness); False forces the
        general ``ct[φ]`` label-set variant.
    """
    check_semantics(semantics)
    gamma = actualize(pattern, schema, semantics)
    if use_counters is None:
        use_counters = counters_are_safe(gamma, pattern)

    # Seed: nodes whose label has a type (1) constraint (line 3 of Fig. 3).
    covered: set[int] = set()
    covered_by: dict[int, ActualizedConstraint | None] = {}
    worklist: list[int] = []
    for node in pattern.nodes():
        if schema.type1_for(pattern.label_of(node)) is not None:
            covered.add(node)
            covered_by[node] = None
            worklist.append(node)

    by_member = inverted_index(gamma)
    if use_counters:
        remaining: dict[ActualizedConstraint, int] = {
            phi: len(phi.constraint.source) for phi in gamma}

        def consume(phi: ActualizedConstraint, node: int) -> bool:
            remaining[phi] -= 1
            return remaining[phi] == 0
    else:
        pending: dict[ActualizedConstraint, set[str]] = {
            phi: set(phi.constraint.source) for phi in gamma}

        def consume(phi: ActualizedConstraint, node: int) -> bool:
            pending[phi].discard(pattern.label_of(node))
            return not pending[phi]

    satisfied: set[ActualizedConstraint] = set()
    while worklist:
        node = worklist.pop()
        for phi in by_member.get(node, ()):
            if phi in satisfied:
                continue
            if consume(phi, node):
                satisfied.add(phi)
                target = phi.target
                if target not in covered:
                    covered.add(target)
                    covered_by[target] = phi
                    worklist.append(target)

    # Edge cover: (u1, u2) is covered iff some satisfied φ targets one
    # endpoint while the other endpoint is a covered member of V̄_S^u
    # (then an S-labeled set containing it and only covered nodes exists).
    edge_cover: set[tuple[int, int]] = set()
    for edge in pattern.edges():
        if _edge_covered(edge, gamma, satisfied, covered):
            edge_cover.add(edge)

    return CoverResult(pattern=pattern, semantics=semantics,
                       node_cover=covered, edge_cover=edge_cover,
                       gamma=gamma, covered_by=covered_by, usable=satisfied)


def _edge_covered(edge: tuple[int, int], gamma: list[ActualizedConstraint],
                  satisfied: set[ActualizedConstraint],
                  covered: set[int]) -> bool:
    u1, u2 = edge
    for phi in gamma:
        if phi not in satisfied:
            continue
        if phi.target == u2 and u1 in phi.neighbours and u1 in covered:
            return True
        if phi.target == u1 and u2 in phi.neighbours and u2 in covered:
            return True
    return False


def edge_cover_witnesses(edge: tuple[int, int],
                         covers: CoverResult) -> list[ActualizedConstraint]:
    """All satisfied actualized constraints that cover ``edge`` — QPlan
    picks the cheapest among these for edge verification."""
    u1, u2 = edge
    witnesses = []
    for phi in covers.gamma:
        if phi not in covers.usable:
            continue
        if phi.target == u2 and u1 in phi.neighbours and u1 in covers.node_cover:
            witnesses.append(phi)
        elif phi.target == u1 and u2 in phi.neighbours and u2 in covers.node_cover:
            witnesses.append(phi)
    return witnesses
