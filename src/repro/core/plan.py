"""Query-plan objects: fetch operations, edge checks, and cost bounds.

A query plan ``P`` (Section IV) is a sequence of node-fetching operations
``ft(u, V_S, φ, g_Q(u))``. Executing ``ft`` retrieves candidate matches
``cmat(u)`` through the index of ``φ``; later operations for the same node
*reduce* its candidate set. From the fetched candidates a subgraph ``G_Q``
is assembled by verifying every query edge through a covering constraint.

This module holds the declarative plan (:class:`QueryPlan`) and its
worst-case cost arithmetic; generation lives in :mod:`repro.core.qplan`
and execution in :mod:`repro.core.executor`.

The cost model reproduces the paper's Example 1/6 numbers exactly: for Q0
under A0 the plan reports 17 923 nodes and 35 136 edges accessed in the
worst case, and a ``G_Q`` of at most 17 791 nodes.

A caveat the paper shares: size bounds refined by predicate *range hints*
(e.g. "3 years in 2011-2013") assume one data node per distinct value.
That holds for the label domains the hints target (years), but is an
estimate in general — plans generated with ``use_range_hints=False`` give
unconditionally sound bounds. Execution correctness never depends on
either (candidate sets are always fetched in full).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import Predicate

#: Edge-verification strategies, in order of faithfulness to the paper.
EDGE_VIA_INDEX = "index"    # product fetch through a covering constraint
EDGE_VIA_PROBE = "probe"    # pairwise adjacency probes (fallback)


@dataclass(frozen=True)
class FetchOp:
    """One fetching operation ``ft(u, V_S, φ, g_Q(u))``.

    Attributes
    ----------
    target:
        The pattern node ``u`` whose candidates are fetched.
    source_nodes:
        The pattern nodes forming the S-labeled set ``V_S`` (empty for
        type (1) constraints), ordered to match the constraint's canonical
        label order.
    constraint:
        The access constraint ``φ`` whose index serves the fetch.
    predicate:
        ``g_Q(u)`` — applied to fetched candidates.
    fetch_bound:
        Worst-case number of node entries this operation fetches:
        ``N`` for type (1), otherwise ``N · Π size[v]`` over ``V_S`` at
        planning time.
    size_bound:
        Worst-case ``|cmat(u)|`` after this operation (range hints and
        reductions applied).
    """

    target: int
    source_nodes: tuple[int, ...]
    constraint: AccessConstraint
    predicate: Predicate
    fetch_bound: float
    size_bound: float

    @property
    def is_initial(self) -> bool:
        """True for type (1) fetches (no source nodes)."""
        return not self.source_nodes

    def describe(self, pattern: Pattern) -> str:
        label = pattern.label_of(self.target)
        sources = ",".join(f"u{v}" for v in self.source_nodes) or "nil"
        return (f"ft(u{self.target}:{label}, {{{sources}}}, {self.constraint}, "
                f"{self.predicate})")


@dataclass(frozen=True)
class EdgeCheck:
    """Verification step for one query edge.

    ``mode`` is :data:`EDGE_VIA_INDEX` (fetch common neighbours of the
    candidates of ``source_nodes`` through ``constraint`` and intersect
    with the candidates of ``fetch_target``) or :data:`EDGE_VIA_PROBE`
    (pairwise adjacency probes between the endpoint candidate sets).

    ``cost_bound`` is the worst-case number of edge examinations.
    """

    edge: tuple[int, int]
    mode: str
    fetch_target: int | None = None
    source_nodes: tuple[int, ...] = ()
    constraint: AccessConstraint | None = None
    cost_bound: float = math.inf

    def describe(self) -> str:
        u1, u2 = self.edge
        if self.mode == EDGE_VIA_PROBE:
            return f"probe(u{u1} -> u{u2})"
        sources = ",".join(f"u{v}" for v in self.source_nodes)
        return (f"check(u{u1} -> u{u2} via {self.constraint} on "
                f"u{self.fetch_target} from {{{sources}}})")


@dataclass
class QueryPlan:
    """An effectively bounded query plan for a pattern under a schema.

    The plan is *worst-case optimal* when produced by QPlan/sQPlan
    (Theorems 4 and 9): among all effectively bounded plans, the largest
    ``G_Q`` it fetches over all ``G |= A`` is minimum.
    """

    pattern: Pattern
    schema: AccessSchema
    semantics: str
    ops: list[FetchOp] = field(default_factory=list)
    edge_checks: list[EdgeCheck] = field(default_factory=list)

    # -- structure ---------------------------------------------------------------
    def final_op_for(self, node: int) -> FetchOp:
        """The last (most-reducing) fetch operation for a pattern node."""
        result = None
        for op in self.ops:
            if op.target == node:
                result = op
        if result is None:
            raise KeyError(f"no fetch operation for pattern node {node}")
        return result

    def ops_for(self, node: int) -> list[FetchOp]:
        return [op for op in self.ops if op.target == node]

    def constraints_used(self) -> set[AccessConstraint]:
        """Constraints whose indices the plan touches (for the paper's
        ``|index_Q|`` accounting)."""
        used = {op.constraint for op in self.ops}
        used |= {check.constraint for check in self.edge_checks
                 if check.constraint is not None}
        return used

    # -- worst-case bounds (Example 1/6 arithmetic) ---------------------------------
    def size_bound(self, node: int) -> float:
        """Worst-case ``|cmat(node)|`` after the full plan."""
        return self.final_op_for(node).size_bound

    @property
    def worst_case_nodes_fetched(self) -> float:
        """Worst-case node entries fetched by all operations — Example 1's
        "visits at most 17923 nodes" number for Q0/A0."""
        return sum(op.fetch_bound for op in self.ops)

    @property
    def worst_case_edges_checked(self) -> float:
        """Worst-case edge examinations — Example 1's 35 136 for Q0/A0."""
        return sum(check.cost_bound for check in self.edge_checks)

    @property
    def worst_case_gq_nodes(self) -> float:
        """Worst-case ``|V(G_Q)|`` — Example 6's 17 791 for Q0/A0."""
        return sum(self.size_bound(node) for node in self.pattern.nodes())

    @property
    def worst_case_total_accessed(self) -> float:
        """Nodes fetched + edges checked; comparable to ``|G|``."""
        return self.worst_case_nodes_fetched + self.worst_case_edges_checked

    # -- presentation ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable rendering of the plan."""
        lines = [f"QueryPlan[{self.semantics}] for "
                 f"{self.pattern.name or 'pattern'}:"]
        for i, op in enumerate(self.ops, start=1):
            lines.append(f"  {i}. {op.describe(self.pattern)}"
                         f"  [fetch<= {_fmt(op.fetch_bound)},"
                         f" |cmat|<= {_fmt(op.size_bound)}]")
        for check in self.edge_checks:
            lines.append(f"  -  {check.describe()}  [checks<= {_fmt(check.cost_bound)}]")
        lines.append(f"  worst case: {_fmt(self.worst_case_nodes_fetched)} nodes"
                     f" fetched, {_fmt(self.worst_case_edges_checked)} edges"
                     f" checked, |GQ| <= {_fmt(self.worst_case_gq_nodes)} nodes")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"QueryPlan(semantics={self.semantics!r}, ops={len(self.ops)}, "
                f"edge_checks={len(self.edge_checks)})")


def _fmt(value: float) -> str:
    if value == math.inf:
        return "inf"
    return str(int(value)) if float(value).is_integer() else f"{value:.1f}"
