"""Actualized constraints ``Γ`` of an access schema on a pattern.

Section III-B: for each constraint ``S -> (l, N)`` in ``A`` with ``S ≠ ∅``
and each pattern node ``u`` with ``f_Q(u) = l``, the *actualized
constraint* is ``V̄_S^u ↦ (u, N)`` where ``V̄_S^u`` is the maximum set of
neighbours of ``u`` in ``Q`` such that (a) some S-labeled subset of it
exists and (b) every node in it carries a label from ``S``.

Section VI-B's simulation variant additionally requires each node of
``V̄_S^u`` to be a *child* of ``u`` (i.e. ``(u, u') ∈ E_Q``) — this is the
only difference between EBChk and sEBChk, and between QPlan and sQPlan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.errors import PatternError
from repro.pattern.pattern import Pattern

#: The two pattern-matching semantics of the paper.
SUBGRAPH = "subgraph"
SIMULATION = "simulation"
SEMANTICS = (SUBGRAPH, SIMULATION)


@dataclass(frozen=True)
class ActualizedConstraint:
    """``V̄_S^u ↦ (u, N)``: ``constraint`` applied at pattern node
    ``target``, through the neighbour set ``neighbours``."""

    constraint: AccessConstraint
    target: int
    neighbours: frozenset[int]

    @property
    def bound(self) -> int:
        return self.constraint.bound

    def __str__(self) -> str:
        members = ",".join(map(str, sorted(self.neighbours)))
        return f"{{{members}}} ↦ ({self.target}, {self.bound})"


def check_semantics(semantics: str) -> None:
    if semantics not in SEMANTICS:
        raise PatternError(f"unknown semantics {semantics!r}; expected one of {SEMANTICS}")


def neighbour_pool(pattern: Pattern, node: int, semantics: str) -> set[int]:
    """The neighbours eligible for ``V̄_S^u``: all neighbours for subgraph
    queries, children only for simulation queries."""
    if semantics == SUBGRAPH:
        return pattern.neighbors(node)
    return pattern.children(node)


def actualize(pattern: Pattern, schema: AccessSchema,
              semantics: str = SUBGRAPH) -> list[ActualizedConstraint]:
    """Compute ``Γ``, the actualized constraints of ``schema`` on
    ``pattern`` (non-empty-source constraints only; type (1) constraints
    act directly on labels and need no actualization).

    Complexity: O(|A| · |E_Q|) — for each constraint, each node's
    neighbourhood is scanned once.
    """
    check_semantics(semantics)
    gamma: list[ActualizedConstraint] = []
    for node in sorted(pattern.nodes()):
        label = pattern.label_of(node)
        pool = None
        for constraint in schema.by_target(label):
            if constraint.is_type1:
                continue
            if pool is None:
                pool = neighbour_pool(pattern, node, semantics)
            members = {v for v in pool
                       if pattern.label_of(v) in constraint.source_set()}
            present_labels = {pattern.label_of(v) for v in members}
            if present_labels != constraint.source_set():
                continue  # no S-labeled subset exists among the neighbours
            gamma.append(ActualizedConstraint(constraint, node,
                                              frozenset(members)))
    return gamma


def actualized_by_target(gamma: list[ActualizedConstraint]
                         ) -> dict[int, list[ActualizedConstraint]]:
    """Group Γ by target pattern node."""
    by_target: dict[int, list[ActualizedConstraint]] = {}
    for phi in gamma:
        by_target.setdefault(phi.target, []).append(phi)
    return by_target


def inverted_index(gamma: list[ActualizedConstraint]
                   ) -> dict[int, list[ActualizedConstraint]]:
    """The paper's ``L[v]``: for each pattern node, the actualized
    constraints whose ``V̄_S^u`` contains it."""
    index: dict[int, list[ActualizedConstraint]] = {}
    for phi in gamma:
        for member in phi.neighbours:
            index.setdefault(member, []).append(phi)
    return index
