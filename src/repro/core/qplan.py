"""QPlan and sQPlan — generating worst-case-optimal query plans.

Algorithm QPlan (Fig. 4): build the actualized graph ``Q_Γ``, seed
``cmat`` bounds from type (1) constraints, then repeatedly pick a node
``u`` and an actualized constraint whose fetch would *reduce* the
worst-case ``|cmat(u)|`` (``check``/``ocheck``), appending a fetch
operation each time, until no further reduction exists. The resulting
plan is effectively bounded and worst-case optimal (Theorem 4); the
simulation variant sQPlan differs only in using the children-restricted
actualized constraints (Theorem 9).

Two practical refinements, both noted in DESIGN.md:

* **Range hints** — a predicate that pins an integer value into a closed
  range caps ``size[u]`` at the range width (this is how the paper's
  Example 1 counts three years in 2011–2013). Disable with
  ``use_range_hints=False``.
* **Edge checks** — after node fetches are fixed, each query edge is
  assigned its cheapest covering constraint for verification (the paper's
  "Building G_Q" step); the cost arithmetic matches Example 6.
"""

from __future__ import annotations

import math

from repro.constraints.schema import AccessSchema
from repro.core.actualized import (
    SIMULATION,
    SUBGRAPH,
    ActualizedConstraint,
    actualized_by_target,
)
from repro.core.covers import compute_covers
from repro.core.plan import (
    EDGE_VIA_INDEX,
    EDGE_VIA_PROBE,
    EdgeCheck,
    FetchOp,
    QueryPlan,
)
from repro.errors import NotEffectivelyBounded
from repro.pattern.pattern import Pattern


def generate_plan(pattern: Pattern, schema: AccessSchema,
                  semantics: str = SUBGRAPH,
                  use_range_hints: bool = True,
                  allow_probe_edges: bool = False) -> QueryPlan:
    """Generate an effectively bounded, worst-case-optimal query plan.

    Raises
    ------
    NotEffectivelyBounded
        If the query is not effectively bounded under ``schema`` for the
        requested semantics (run EBChk/sEBChk first to check cheaply).
        With ``allow_probe_edges=True``, a plan is still produced when
        only *edges* are uncovered, verifying them by adjacency probes.
    """
    covers = compute_covers(pattern, schema, semantics)
    if not covers.nodes_complete:
        raise NotEffectivelyBounded(
            f"nodes {covers.uncovered_nodes} are not covered by the schema",
            uncovered_nodes=covers.uncovered_nodes,
            uncovered_edges=covers.uncovered_edges)
    if not covers.edges_complete and not allow_probe_edges:
        raise NotEffectivelyBounded(
            f"edges {covers.uncovered_edges} are not covered by the schema",
            uncovered_edges=covers.uncovered_edges)

    plan = QueryPlan(pattern=pattern, schema=schema, semantics=semantics)
    by_target = actualized_by_target(covers.gamma)

    size: dict[int, float] = {u: math.inf for u in pattern.nodes()}
    fetched: dict[int, bool] = {u: False for u in pattern.nodes()}

    def hint(node: int) -> float:
        if not use_range_hints:
            return math.inf
        return pattern.predicate_of(node).max_distinct_values()

    # Lines 2-6 of Fig. 4: seed from type (1) constraints.
    for node in sorted(pattern.nodes()):
        constraint = schema.type1_for(pattern.label_of(node))
        if constraint is None:
            continue
        bound = float(constraint.bound)
        size[node] = min(bound, hint(node))
        fetched[node] = True
        plan.ops.append(FetchOp(
            target=node, source_nodes=(), constraint=constraint,
            predicate=pattern.predicate_of(node),
            fetch_bound=bound, size_bound=size[node]))

    # Lines 7-9: reduce until fixpoint (check/ocheck).
    max_rounds = 4 * pattern.num_nodes * pattern.num_nodes + 4
    for _ in range(max_rounds):
        improved = False
        for node in sorted(pattern.nodes()):
            choice = _best_fetch(node, by_target.get(node, ()), pattern,
                                 size, fetched)
            if choice is None:
                continue
            phi, sources, cost = choice
            new_size = min(cost, hint(node), size[node])
            if new_size >= size[node]:
                continue
            size[node] = new_size
            fetched[node] = True
            plan.ops.append(FetchOp(
                target=node, source_nodes=sources, constraint=phi.constraint,
                predicate=pattern.predicate_of(node),
                fetch_bound=cost, size_bound=new_size))
            improved = True
        if not improved:
            break

    missing = [u for u in pattern.nodes() if not fetched[u]]
    if missing:  # pragma: no cover - guarded by the cover check above
        raise NotEffectivelyBounded(
            f"no fetch operation derivable for nodes {missing}",
            uncovered_nodes=missing)

    plan.edge_checks = [
        _edge_check(edge, by_target, pattern, size, fetched,
                    allow_probe_edges)
        for edge in pattern.edges()
    ]
    return plan


def qplan(pattern: Pattern, schema: AccessSchema, **kwargs) -> QueryPlan:
    """The paper's **QPlan** — plans for *subgraph* queries."""
    return generate_plan(pattern, schema, SUBGRAPH, **kwargs)


def sqplan(pattern: Pattern, schema: AccessSchema, **kwargs) -> QueryPlan:
    """The paper's **sQPlan** — plans for *simulation* queries."""
    return generate_plan(pattern, schema, SIMULATION, **kwargs)


# -- internals -------------------------------------------------------------------
def _best_fetch(node: int, candidates, pattern: Pattern,
                size: dict[int, float], fetched: dict[int, bool]):
    """The paper's ``check(u)``: cheapest usable actualized constraint for
    ``node``, returning ``(φ, canonical source tuple, cost)`` or None.

    For each source label the minimum-size fetched neighbour is selected —
    the choice minimizing ``N · Π size[v]`` (worst-case optimality)."""
    best = None
    for phi in candidates:
        sources = _select_sources(phi, pattern, size, fetched)
        if sources is None:
            continue
        cost = float(phi.bound)
        for v in sources:
            cost *= size[v]
        if best is None or cost < best[2]:
            best = (phi, sources, cost)
    return best


def _select_sources(phi: ActualizedConstraint, pattern: Pattern,
                    size: dict[int, float], fetched: dict[int, bool],
                    required: int | None = None) -> tuple[int, ...] | None:
    """Pick one fetched neighbour per source label of ``phi`` (minimum
    ``size`` each), optionally forcing ``required`` to be included.
    Returns the tuple in the constraint's canonical label order, or None
    if some label has no fetched representative."""
    chosen: list[int] = []
    placed_required = required is None
    for label in phi.constraint.source:
        if required is not None and pattern.label_of(required) == label:
            if required not in phi.neighbours or not fetched[required]:
                return None
            chosen.append(required)
            placed_required = True
            continue
        best_node = None
        for v in phi.neighbours:
            if pattern.label_of(v) != label or not fetched[v]:
                continue
            if best_node is None or size[v] < size[best_node]:
                best_node = v
        if best_node is None:
            return None
        chosen.append(best_node)
    if not placed_required:
        return None
    return tuple(chosen)


def _edge_check(edge: tuple[int, int], by_target, pattern: Pattern,
                size: dict[int, float], fetched: dict[int, bool],
                allow_probe: bool) -> EdgeCheck:
    """Assign the cheapest covering constraint to verify ``edge``
    (the paper's "Building G_Q": find φ_u' and an S-labeled set containing
    the already-fetched endpoint, fetch common neighbours, intersect)."""
    u1, u2 = edge
    best: EdgeCheck | None = None
    for target, other in ((u2, u1), (u1, u2)):
        for phi in by_target.get(target, ()):
            sources = _select_sources(phi, pattern, size, fetched,
                                      required=other)
            if sources is None:
                continue
            cost = float(phi.bound)
            for v in sources:
                cost *= size[v]
            if best is None or cost < best.cost_bound:
                best = EdgeCheck(edge=edge, mode=EDGE_VIA_INDEX,
                                 fetch_target=target, source_nodes=sources,
                                 constraint=phi.constraint, cost_bound=cost)
    if best is not None:
        return best
    if not allow_probe:
        raise NotEffectivelyBounded(
            f"edge {edge} has no covering constraint",
            uncovered_edges=[edge])
    return EdgeCheck(edge=edge, mode=EDGE_VIA_PROBE,
                     cost_bound=size[u1] * size[u2])
