"""Instance boundedness and M-bounded extensions (Section V).

When a workload ``Q`` is not effectively bounded under ``A``, the paper
extends ``A`` with additional type (1) and type (2) constraints whose
bounds are at most ``M`` — an *M-bounded extension* ``A_M`` — so that
every query becomes bounded *on the given instance* ``G``.

* :func:`maximum_extension` — Step (1) of algorithm EEChk: the maximal
  M-bounded extension (all type (1)/(2) constraints over the workload's
  labels that ``G`` satisfies with bound ≤ M).
* :func:`is_instance_bounded` / :func:`eechk` / :func:`seechk` —
  algorithm EEChk (Theorems 6 and 10): build the maximal extension, then
  run EBChk/sEBChk per query.
* :func:`find_min_m` / :func:`min_m_for_fraction` — the Fig. 6 curves:
  the smallest ``M`` making a target fraction of the workload
  instance-bounded (binary search over candidate bounds; instance
  boundedness is monotone in ``M``).
* :func:`greedy_minimum_extension` — finding a *minimum* extension is
  logAPX-hard (Section V, Remark), so this provides the natural greedy
  set-cover-style approximation.

Proposition 5 (an ``M`` always exists for finite workloads) surfaces as
:func:`make_instance_bounded`, which returns that ``M`` and its extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.constraints.discovery import neighbor_label_bounds
from repro.constraints.schema import AccessConstraint, AccessSchema
from repro.core.actualized import SIMULATION, SUBGRAPH, check_semantics
from repro.core.ebchk import is_effectively_bounded
from repro.errors import SchemaError
from repro.graph.graph import GraphView
from repro.pattern.pattern import Pattern


@dataclass
class EEPResult:
    """Verdict of EEChk/sEEChk for a workload.

    ``extension`` is the full schema ``A_M`` (original plus added
    constraints); ``added`` lists only the new constraints.
    """

    bounded: bool
    m: int
    semantics: str
    extension: AccessSchema
    added: list[AccessConstraint] = field(default_factory=list)
    per_query: dict[str, bool] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.bounded

    @property
    def bounded_fraction(self) -> float:
        if not self.per_query:
            return 1.0
        return sum(self.per_query.values()) / len(self.per_query)


def workload_labels(queries: Iterable[Pattern]) -> set[str]:
    labels: set[str] = set()
    for query in queries:
        labels |= query.labels()
    return labels


def maximum_extension(graph: GraphView, schema: AccessSchema,
                      queries: Sequence[Pattern], m: int,
                      bounds: dict[tuple[str, str], int] | None = None,
                      ) -> tuple[AccessSchema, list[AccessConstraint]]:
    """Step (1) of EEChk: the maximal M-bounded extension ``A_M``.

    Adds every type (1) constraint ``∅ -> (l, count)`` and type (2)
    constraint ``l -> (l', N)`` over labels occurring in both the workload
    and ``G``, whose observed bound is at most ``m``.

    Pass ``bounds=neighbor_label_bounds(graph)`` to amortize the O(|G|)
    scan across calls (e.g. the binary search in :func:`find_min_m`).
    """
    if m < 0:
        raise SchemaError(f"M must be a natural number, got {m}")
    labels = workload_labels(queries) & graph.labels()
    extension = AccessSchema(schema)
    added: list[AccessConstraint] = []

    for label in sorted(labels):
        count = graph.label_count(label)
        if count <= m:
            constraint = AccessConstraint((), label, count)
            if extension.add(constraint):
                added.append(constraint)

    if bounds is None:
        bounds = neighbor_label_bounds(graph)
    for (la, lb), bound in sorted(bounds.items()):
        if la in labels and lb in labels and bound <= m:
            constraint = AccessConstraint((la,), lb, bound)
            if extension.add(constraint):
                added.append(constraint)
    return extension, added


def is_instance_bounded(queries: Sequence[Pattern], schema: AccessSchema,
                        graph: GraphView, m: int,
                        semantics: str = SUBGRAPH,
                        bounds: dict[tuple[str, str], int] | None = None,
                        ) -> EEPResult:
    """Algorithm EEChk / sEEChk: decide ``EEP(Q, A, M, G)``.

    Correctness per the paper: if any extension works, the *maximal*
    M-bounded extension works, so only that one needs checking.
    """
    check_semantics(semantics)
    extension, added = maximum_extension(graph, schema, queries, m, bounds=bounds)
    per_query: dict[str, bool] = {}
    all_bounded = True
    for i, query in enumerate(queries):
        verdict = bool(is_effectively_bounded(query, extension, semantics))
        per_query[query.name or f"q{i}"] = verdict
        all_bounded = all_bounded and verdict
    return EEPResult(bounded=all_bounded, m=m, semantics=semantics,
                     extension=extension, added=added, per_query=per_query)


def eechk(queries: Sequence[Pattern], schema: AccessSchema, graph: GraphView,
          m: int, **kwargs) -> EEPResult:
    """The paper's **EEChk** (subgraph queries)."""
    return is_instance_bounded(queries, schema, graph, m, SUBGRAPH, **kwargs)


def seechk(queries: Sequence[Pattern], schema: AccessSchema, graph: GraphView,
           m: int, **kwargs) -> EEPResult:
    """The paper's **sEEChk** (simulation queries)."""
    return is_instance_bounded(queries, schema, graph, m, SIMULATION, **kwargs)


# -- minimum M (Fig. 6) ------------------------------------------------------------
def candidate_bounds(graph: GraphView, queries: Sequence[Pattern],
                     bounds: dict[tuple[str, str], int] | None = None) -> list[int]:
    """The bounds at which the maximal extension can change: label counts
    and neighbour-degree bounds over the workload's labels."""
    labels = workload_labels(queries) & graph.labels()
    if bounds is None:
        bounds = neighbor_label_bounds(graph)
    values = {graph.label_count(label) for label in labels}
    values |= {bound for (la, lb), bound in bounds.items()
               if la in labels and lb in labels}
    return sorted(values)


def min_m_for_fraction(queries: Sequence[Pattern], schema: AccessSchema,
                       graph: GraphView, fraction: float = 1.0,
                       semantics: str = SUBGRAPH,
                       bounds: dict[tuple[str, str], int] | None = None,
                       ) -> tuple[int | None, EEPResult | None]:
    """Smallest ``M`` making at least ``fraction`` of the workload
    instance-bounded (the x% sweep of Fig. 6), or ``(None, None)`` if even
    the largest candidate bound is insufficient.

    Monotonicity (larger M ⇒ superset of constraints ⇒ larger covers)
    justifies the binary search. ``bounds`` amortizes the O(|G|)
    neighbour scan — required when ``graph`` is a stats stand-in that
    cannot be scanned (see :mod:`repro.engine.extension`).
    """
    check_semantics(semantics)
    if bounds is None:
        bounds = neighbor_label_bounds(graph)
    candidates = candidate_bounds(graph, queries, bounds=bounds)
    if not candidates:
        return None, None

    def fraction_at(m: int) -> EEPResult:
        return is_instance_bounded(queries, schema, graph, m, semantics,
                                   bounds=bounds)

    top = fraction_at(candidates[-1])
    if top.bounded_fraction < fraction:
        return None, None
    lo, hi = 0, len(candidates) - 1
    best = top
    while lo < hi:
        mid = (lo + hi) // 2
        result = fraction_at(candidates[mid])
        if result.bounded_fraction >= fraction:
            best = result
            hi = mid
        else:
            lo = mid + 1
    if best.m != candidates[lo]:
        best = fraction_at(candidates[lo])
    return candidates[lo], best


def find_min_m(queries: Sequence[Pattern], schema: AccessSchema,
               graph: GraphView, semantics: str = SUBGRAPH,
               bounds: dict[tuple[str, str], int] | None = None,
               ) -> tuple[int | None, EEPResult | None]:
    """Smallest ``M`` making the *whole* workload instance-bounded."""
    return min_m_for_fraction(queries, schema, graph, 1.0, semantics,
                              bounds=bounds)


def make_instance_bounded(queries: Sequence[Pattern], schema: AccessSchema,
                          graph: GraphView, semantics: str = SUBGRAPH,
                          ) -> EEPResult | None:
    """Proposition 5: find *some* M-bounded extension making the workload
    instance-bounded, or None when even unbounded M fails (possible when a
    query uses labels absent from ``G`` — then type (1) constraints with
    bound 0 do apply, so failures are rare and signal label typos)."""
    m, result = find_min_m(queries, schema, graph, semantics)
    if m is None:
        return None
    return result


# -- greedy minimum extension (logAPX-hard exactly) -----------------------------------
def greedy_minimum_extension(queries: Sequence[Pattern], schema: AccessSchema,
                             graph: GraphView, m: int,
                             semantics: str = SUBGRAPH,
                             bounds: dict[tuple[str, str], int] | None = None,
                             ) -> list[AccessConstraint] | None:
    """Greedy approximation of the minimum M-bounded extension.

    Finding the minimum extension is logAPX-hard (Section V), which is the
    complexity signature of set cover; the greedy algorithm repeatedly adds
    the candidate constraint that newly covers the most pattern nodes and
    edges across still-unbounded queries. Returns the added constraints,
    or None when the maximal extension itself is insufficient.

    EBChk outcomes are memoized per query on the *relevant* chosen
    candidates only: a constraint ``S -> (l, N)`` can enter a query's
    covers only when ``l`` and every label of ``S`` occur among the
    query's labels, so candidates over foreign labels never trigger
    re-verification. The chosen extension is identical to the naive
    O(candidates × queries)-rechecks-per-round greedy (regression-tested
    against it); only the work changes.
    """
    check_semantics(semantics)
    full = is_instance_bounded(queries, schema, graph, m, semantics,
                               bounds=bounds)
    if not full.bounded:
        return None
    candidates = list(full.added)
    chosen: list[AccessConstraint] = []
    chosen_set: set[AccessConstraint] = set()

    # Relevance filter: the covers of query q can only ever use a
    # candidate whose target and source labels all occur in q.
    query_labels = [query.labels() for query in queries]
    relevant = [frozenset(c for c in candidates
                          if c.target in labels
                          and set(c.source) <= labels)
                for labels in query_labels]

    # (query index, relevant chosen candidates) -> (coverage, bounded).
    # Coverage depends only on that projection, so the memo is exact —
    # and it persists across rounds, so a candidate evaluated against an
    # unchanged relevant set costs a dict lookup, not an EBChk run.
    memo: dict[tuple[int, frozenset[AccessConstraint]], tuple[int, bool]] = {}

    def eval_query(qi: int,
                   extra: AccessConstraint | None = None) -> tuple[int, bool]:
        selection = frozenset(
            c for c in relevant[qi]
            if c in chosen_set or (extra is not None and c is extra))
        key = (qi, selection)
        outcome = memo.get(key)
        if outcome is None:
            trial = AccessSchema(schema)
            trial.extend(sorted(selection))
            result = is_effectively_bounded(queries[qi], trial, semantics)
            outcome = (len(result.covers.node_cover)
                       + len(result.covers.edge_cover), result.bounded)
            memo[key] = outcome
        return outcome

    while True:
        base = 0
        all_bounded = True
        for qi in range(len(queries)):
            covered, bounded = eval_query(qi)
            base += covered
            all_bounded = all_bounded and bounded
        if all_bounded:
            break
        best_gain, best_constraint = 0, None
        for constraint in candidates:
            if constraint in chosen_set:
                continue
            gain = sum(eval_query(qi, constraint)[0]
                       for qi in range(len(queries))) - base
            if gain > best_gain:
                best_gain, best_constraint = gain, constraint
        if best_constraint is None:
            # No single constraint helps; add the remaining ones at once
            # (covers need joint additions in rare cases).
            for constraint in candidates:
                if constraint not in chosen_set:
                    chosen.append(constraint)
                    chosen_set.add(constraint)
            break
        chosen.append(best_constraint)
        chosen_set.add(best_constraint)
    return chosen
