"""Vectorized plan execution: numpy batch kernels over CSR buffers.

:func:`execute_plan_vectorized` is the third execution strategy, next to
the sequential :func:`~repro.core.executor.execute_plan` and the sharded
:func:`~repro.core.executor.execute_plans_scatter`. It runs the node and
edge phases as array kernels instead of per-candidate Python loops:

* candidate sets are sorted-unique int64 frontier arrays;
* a fetch operation probes *all* of its source combos with one
  ``np.searchsorted`` into the constraint's packed key buffer
  (:meth:`~repro.constraints.index.FrozenConstraintIndex.fetch_many`);
* candidate reduction is sorted-merge set algebra (``np.unique`` /
  ``np.intersect1d``);
* edge resolution is a vectorized CSR membership test over packed
  ``(source row, destination)`` pairs — one ``searchsorted`` per batch
  instead of one bisect per candidate pair.

**Accounting is reproduced, not recomputed.** The sequential executor
memoizes ``(constraint, combo)`` fetches per phase: the first fetch is
recorded in :class:`~repro.accounting.AccessStats`, repeats are free and
unrecorded, and node/edge phases keep separate memos. The kernels keep a
per-phase, per-constraint *seen-combo* set (a sorted packed array)
instead of a payload memo — the index is immutable, so re-probing a seen
combo returns exactly what the memo held, and only unseen combos are
recorded. Answers, candidate sets, ``G_Q`` and every ``AccessStats``
counter (including the distinct-node set) are therefore byte-identical
to :func:`~repro.core.executor.execute_plan`; the property suite in
``tests/test_kernels.py`` pins this.

Everything here requires a frozen session: a
:class:`~repro.graph.frozen.FrozenGraph` snapshot (whose ``array('q')``
or memoryview buffers become zero-copy ndarray views) and
:class:`~repro.constraints.index.FrozenConstraintIndex` payload buffers.
:func:`can_vectorize` is the gate the engine's ``executor="auto"``
selection uses; without numpy the module still imports and the engine
falls back to the sequential path.
"""

from __future__ import annotations

from repro.accounting import AccessStats
from repro.constraints.index import SchemaIndex
from repro.core.executor import (
    MODE_PLAN,
    MODE_PROBE,
    TASK_EDGE,
    TASK_FETCH,
    TASK_PROBE,
    ExecutionResult,
    _check_coverage,
    _edge_check_geometry,
    run_shard_task,
)
from repro.core.plan import EDGE_VIA_INDEX, EDGE_VIA_PROBE, QueryPlan
from repro.errors import EngineError, PlanError, UnverifiableEdge
from repro.graph.frozen import FrozenGraph
from repro.graph.graph import Graph
from repro.util.arrays import (
    HAVE_NUMPY,
    in_sorted,
    pack_matrix,
    take_segments,
)

if HAVE_NUMPY:
    import numpy as np

    # numpy's first np.unique call lazily imports numpy.ma (~20ms); force
    # it at import time so no query pays it as first-execution latency.
    np.unique(np.empty(0, dtype=np.int64))

#: Range operators with an exact float64 equivalent (see GraphKernel.
#: predicate_mask). ``!=`` is excluded: ``"str" != 5`` is True in the
#: scalar semantics but a NaN comparison would say False. ``=`` runs on
#: the value-code column instead, which is exact for every hashable
#: constant (strings included).
_RANGE_OPS = frozenset(("<", "<=", ">", ">="))


def can_vectorize(schema_index) -> bool:
    """True when ``schema_index`` can serve the vectorized executor:
    numpy importable, CSR graph snapshot, all-frozen indexes."""
    return (HAVE_NUMPY and schema_index is not None
            and isinstance(schema_index.graph, FrozenGraph)
            and getattr(schema_index, "frozen", False))


def sorted_id_array(ids):
    """Sorted int64 ndarray from an id collection (shard owned sets)."""
    return np.array(sorted(ids), dtype=np.int64)


# ------------------------------------------------------------------ graph kernel
class GraphKernel:
    """Per-snapshot numpy state: CSR views, packed edge keys, and the
    float64 value columns predicate masks evaluate against.

    Cached on the :class:`FrozenGraph` (``_kernel`` slot); the snapshot
    is immutable so nothing here ever invalidates.
    """

    __slots__ = ("graph", "ids", "out_ptr", "out_dst", "num_nodes",
                 "_edge_keys", "_val_num", "_val_object", "_val_code",
                 "_code_table", "_pred_cache", "_mask_cache",
                 "_adj_cache")

    def __init__(self, graph: FrozenGraph):
        views = graph.int64_views()
        self.graph = graph
        self.ids = views["ids"]
        self.out_ptr = views["out_ptr"]
        self.out_dst = views["out_dst"]
        self.num_nodes = len(self.ids)
        self._edge_keys = None
        self._val_num = None
        self._val_object = None
        self._val_code = None
        self._code_table = None
        self._pred_cache: dict = {}
        self._mask_cache: dict = {}
        self._adj_cache: dict = {}

    # -- id resolution -------------------------------------------------------
    def positions(self, nodes):
        """CSR row positions of ``nodes`` (which must all be present —
        payloads and candidates always are)."""
        return np.searchsorted(self.ids, nodes)

    # -- adjacency -----------------------------------------------------------
    def has_edges(self, sources, targets):
        """Vectorized ``graph.has_edge``: boolean mask per pair. Sources
        absent from the graph resolve to False, like the scalar path.
        Pure lookups into the immutable CSR, so results are cached per
        pair batch — a repeated query's adjacency sweep is a dict hit."""
        n = len(sources)
        if n == 0 or self.num_nodes == 0 or len(self.out_dst) == 0:
            return np.zeros(n, dtype=bool)
        key = (sources.tobytes(), targets.tobytes())
        cached = self._adj_cache.get(key)
        if cached is not None:
            return cached
        positions = np.searchsorted(self.ids, sources)
        np.minimum(positions, self.num_nodes - 1, out=positions)
        present = self.ids[positions] == sources
        keys = pack_matrix(np.column_stack((positions, targets)))
        mask = in_sorted(self._edge_key_array(), keys) & present
        self._adj_cache[key] = mask
        return mask

    def _edge_key_array(self):
        keys = self._edge_keys
        if keys is None:
            degrees = np.diff(self.out_ptr)
            rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                             degrees)
            # Rows ascend and each row's destinations are sorted, so the
            # packed pairs are globally sorted — searchsorted-ready.
            keys = pack_matrix(np.column_stack((rows, self.out_dst)))
            self._edge_keys = keys
        return keys

    def out_edges_into(self, sources, pool):
        """All data edges from ``sources`` into the sorted-unique array
        ``pool``, as ``(src, dst)`` arrays — the vectorized form of the
        |A| x |B| pairwise adjacency probe. Cached like
        :meth:`has_edges`; callers must not mutate the result."""
        if len(sources) == 0 or len(pool) == 0:
            empty = self.ids[:0]
            return empty, empty
        key = (sources.tobytes(), pool.tobytes(), "out")
        cached = self._adj_cache.get(key)
        if cached is not None:
            return cached
        positions = self.positions(sources)
        starts = self.out_ptr[positions]
        lengths = self.out_ptr[positions + 1] - starts
        destinations = take_segments(self.out_dst, starts, lengths)
        origins = np.repeat(sources, lengths)
        mask = in_sorted(pool, destinations)
        result = origins[mask], destinations[mask]
        self._adj_cache[key] = result
        return result

    # -- predicate masks -----------------------------------------------------
    def _value_columns(self):
        if self._val_num is None:
            val_num = np.full(self.num_nodes, np.nan)
            val_object = np.zeros(self.num_nodes, dtype=bool)
            val_code = np.zeros(self.num_nodes, dtype=np.int64)
            code_table: dict = {}
            positions = self.graph._pos
            for node, value in self.graph._values.items():
                i = positions[node]
                # Value codes: dict identity of hashable values, so the
                # code comparison IS Python ``==`` (bool/int/float
                # unification and huge ints included). NaN never equals
                # anything and unhashable values can only equal constants
                # that are themselves unhashable (which force the object
                # fallback) — both keep code 0, matching no constant.
                try:
                    if value == value:
                        code = code_table.get(value)
                        if code is None:
                            code = len(code_table) + 1
                            code_table[value] = code
                        val_code[i] = code
                except TypeError:
                    pass
                if isinstance(value, bool):
                    # Python bools are exact ints: numeric comparisons
                    # agree with the scalar semantics.
                    val_num[i] = float(value)
                elif isinstance(value, (int, float)):
                    try:
                        as_float = float(value)
                    except OverflowError:
                        val_object[i] = True
                        continue
                    if as_float == value:
                        val_num[i] = as_float
                    else:  # huge int or NaN: no exact float64 form
                        val_object[i] = True
                else:  # strings and friends
                    val_object[i] = True
            self._val_num = val_num
            self._val_object = val_object
            self._val_code = val_code
            self._code_table = code_table
        return self._val_num, self._val_object, self._val_code

    def _compile_predicate(self, predicate):
        """Per-atom micro-ops when every atom vectorizes, else None
        (whole-predicate object fallback).

        Range atoms compile to ``("num", op, float constant)`` when the
        constant has an exact float64 reading. Equality compiles to
        ``("eq", code)`` against the value-code column for any hashable
        constant — exact for strings, bools and huge ints alike (the
        code of a constant the snapshot never carries is -1, matching
        nothing). ``!=``, ``None`` and unhashable constants stay scalar.
        """
        self._value_columns()
        atoms = []
        for atom in predicate.atoms:
            constant = atom.constant
            if atom.op == "=":
                if constant is None:
                    # Missing values read as None in the scalar path, so
                    # "=None" matches valueless nodes — no code reading.
                    return None
                try:
                    if constant != constant:  # NaN: == is always False
                        atoms.append(("eq", -1))
                        continue
                    code = self._code_table.get(constant, -1)
                except TypeError:  # unhashable constant
                    return None
                atoms.append(("eq", code))
                continue
            if (atom.op not in _RANGE_OPS or isinstance(constant, bool)
                    or not isinstance(constant, (int, float))):
                return None
            try:
                as_float = float(constant)
            except OverflowError:
                return None
            if as_float != constant:
                return None
            atoms.append(("num", atom.op, as_float))
        return atoms

    def predicate_mask(self, predicate, nodes):
        """Boolean keep-mask over the node array — same verdicts as
        ``predicate.evaluate(graph.value_of(v))`` per node.

        Fast path: range atoms compare float64 against the numeric value
        column, where missing / non-numeric values are NaN and therefore
        fail every atom, exactly like the scalar ``None``/``TypeError``
        rules; equality atoms compare the value-code column, exact for
        every hashable constant (strings included). Nodes whose values
        have no exact float64 form (strings, huge ints, NaN) are
        re-checked through the scalar evaluator when a range atom is
        present — equality codes need no re-check — and the whole batch
        falls back to the scalar evaluator when any atom does not
        compile (``!=``, ``None`` / unhashable constants).

        Results are cached per ``(predicate, node-array bytes)`` —
        snapshot values never change, so a repeated query re-filtering
        the same pool is a dict hit instead of a re-evaluation.
        """
        cache_key = (predicate, nodes.tobytes())
        cached = self._mask_cache.get(cache_key)
        if cached is not None:
            return cached
        if predicate not in self._pred_cache:
            self._pred_cache[predicate] = self._compile_predicate(predicate)
        atoms = self._pred_cache[predicate]
        count = len(nodes)
        values = self.graph._values
        if atoms is None:
            mask = np.fromiter(
                (predicate.evaluate(values.get(v)) for v in nodes.tolist()),
                dtype=bool, count=count)
            self._mask_cache[cache_key] = mask
            return mask
        val_num, val_object, val_code = self._value_columns()
        positions = self.positions(nodes)
        mask = np.ones(count, dtype=bool)
        column = codes = None
        recheck = False
        for item in atoms:
            if item[0] == "eq":
                if codes is None:
                    codes = val_code[positions]
                mask &= codes == item[1]
                continue
            recheck = True
            if column is None:
                column = val_num[positions]
            _, op, constant = item
            if op == "<":
                mask &= column < constant
            elif op == "<=":
                mask &= column <= constant
            elif op == ">":
                mask &= column > constant
            else:
                mask &= column >= constant
        if recheck:
            exotic = val_object[positions]
            if exotic.any():
                node_list = nodes.tolist()
                for i in np.nonzero(exotic)[0].tolist():
                    mask[i] = predicate.evaluate(values.get(node_list[i]))
        self._mask_cache[cache_key] = mask
        return mask


def graph_kernel(graph: FrozenGraph) -> GraphKernel:
    """The (lazily-built, cached) :class:`GraphKernel` of a snapshot."""
    kernel = graph._kernel
    if kernel is None:
        kernel = GraphKernel(graph)
        graph._kernel = kernel
    return kernel


# ---------------------------------------------------------------- session state
class KernelContext:
    """Per-``SchemaIndex`` vectorized-execution state.

    Holds the graph kernel plus two pure-lookup caches over the
    session-immutable index:

    * ``initial_cache`` — a type (1) fetch scans a whole label index and
      filters it by a predicate; ``(constraint, predicate) -> (payload
      length, payload list, filtered candidates)`` is computed once.
    * ``fetch_cache`` — batched combo probes keyed by ``(constraint,
      packed combo bytes)``; a repeated query re-probing the same combos
      is a dict hit.

    Access *accounting* still happens per execution — the caches skip
    the probing and filtering work, never the recording.
    """

    __slots__ = ("schema_index", "graph_kernel", "initial_cache",
                 "fetch_cache")

    def __init__(self, schema_index: SchemaIndex):
        self.schema_index = schema_index
        self.graph_kernel = graph_kernel(schema_index.graph)
        self.initial_cache: dict = {}
        self.fetch_cache: dict = {}


def kernel_context(schema_index: SchemaIndex) -> KernelContext:
    context = getattr(schema_index, "_kernel_ctx", None)
    if context is None:
        context = KernelContext(schema_index)
        schema_index._kernel_ctx = context
    return context


class _SeenCombos:
    """Per-(phase, constraint) record of combos already fetched in this
    execution, as a growing sorted packed array — the accounting-exact
    replacement for the sequential executor's payload memos."""

    __slots__ = ("packed",)

    def __init__(self):
        self.packed = None

    def new_mask(self, packed_combos):
        if self.packed is None:
            return np.ones(len(packed_combos), dtype=bool)
        return ~in_sorted(self.packed, packed_combos)

    def add(self, packed_combos):
        if self.packed is None:
            self.packed = np.unique(packed_combos)
        else:
            self.packed = np.union1d(self.packed, packed_combos)


# ------------------------------------------------------------------- node phase
def _pool_arrays(op_or_check, candidates: dict):
    """Candidate pools of the source nodes as sorted arrays, in plan
    order — array twin of the sequential ``_source_pools``."""
    missing = [q for q in op_or_check.source_nodes if q not in candidates]
    if missing:
        raise PlanError(
            f"fetch for node {getattr(op_or_check, 'target', op_or_check)} "
            f"uses nodes {missing} with no candidates yet; plan is out of "
            f"order")
    return [candidates[q] for q in op_or_check.source_nodes]


def _combo_matrix(pools):
    """``(n, k)`` matrix enumerating the cartesian product of the pools
    (row order matches ``itertools.product``: last pool cycles fastest)."""
    if len(pools) == 1:
        return pools[0].reshape(-1, 1)
    total = 1
    for pool in pools:
        total *= len(pool)
    if total == 0:
        return np.empty((0, len(pools)), dtype=np.int64)
    out = np.empty((total, len(pools)), dtype=np.int64)
    inner = total
    outer = 1
    for j, pool in enumerate(pools):
        inner //= len(pool)
        column = np.repeat(pool, inner) if inner > 1 else pool
        out[:, j] = np.tile(column, outer) if outer > 1 else column
        outer *= len(pool)
    return out


def _batched_fetch(context: "KernelContext", constraint, combos, packed,
                   stats: AccessStats, seen: _SeenCombos, *,
                   edge_phase: bool):
    """Probe every combo; record accounting for the *unseen* ones only
    (the memoized-fetch semantics).

    The probe itself is a pure lookup into an immutable index, so its
    result is cached on the session keyed by ``(constraint, packed
    combo bytes)`` — a repeated query pays a dict hit. The *recording*
    (counters and the distinct-node set) is computed fresh against this
    execution's stats. Returns the cache entry ``[starts, lengths,
    payload, gathered, gathered_list, unique_payload_or_None,
    unique_packed_or_None]``: ``payload`` is the index's whole buffer
    that ``starts``/``lengths`` index into; ``gathered`` is the
    per-combo concatenation in combo order.
    """
    key = (constraint, packed.tobytes())
    entry = context.fetch_cache.get(key)
    if entry is None:
        index = context.schema_index.index_for(constraint)
        starts, lengths, payload = index.fetch_many(combos, packed)
        gathered = take_segments(payload, starts, lengths)
        entry = [starts, lengths, payload, gathered, gathered.tolist(),
                 None, None]
        context.fetch_cache[key] = entry
    starts, lengths, payload, _, gathered_list = entry[:5]
    if seen.packed is None:  # first fetch per (phase, constraint):
        new_count = len(packed)  # everything is new, skip the mask
    else:
        new = seen.new_mask(packed)
        new_count = int(new.sum())
    if new_count:
        if new_count == len(packed):
            fetched = len(gathered_list)
            recorded = gathered_list
        else:
            fetched = int(lengths[new].sum())
            recorded = take_segments(payload, starts[new],
                                     lengths[new]).tolist()
        if edge_phase:
            stats.record_edge_fetch_batch(new_count, fetched, recorded)
        else:
            stats.record_fetch_batch(new_count, fetched, recorded)
        if seen.packed is None:
            # First add for this (phase, constraint): the sorted-unique
            # form is a pure function of the batch — serve it cached.
            unique_packed = entry[6]
            if unique_packed is None:
                unique_packed = entry[6] = np.unique(packed)
            seen.packed = unique_packed
        else:
            seen.add(packed)
    return entry


def _initial_op(context: KernelContext, op, stats: AccessStats,
                seen_initial: set):
    """A type (1) fetch: whole-payload scan + predicate filter, both
    served from the session cache; the scan is recorded once per
    execution (repeats are the memo hits of the sequential path)."""
    cache_key = (op.constraint, op.predicate)
    entry = context.initial_cache.get(cache_key)
    if entry is None:
        index = context.schema_index.index_for(op.constraint)
        _, _, payload = index.fetch_many(np.empty((1, 0), dtype=np.int64))
        if op.predicate.is_trivial:
            found = payload
        else:
            kernel = context.graph_kernel
            found = payload[kernel.predicate_mask(op.predicate, payload)]
        entry = (len(payload), payload.tolist(), found)
        context.initial_cache[cache_key] = entry
    payload_count, payload_list, found = entry
    if op.constraint not in seen_initial:
        seen_initial.add(op.constraint)
        stats.record_fetch_batch(1, payload_count, payload_list)
    return found


# ------------------------------------------------------------------- edge phase
def _probe_edge_vec(kernel: GraphKernel, edge, candidates: dict,
                    stats: AccessStats, edge_src: list, edge_dst: list):
    """Vectorized pairwise probe: every (va, vb) pair counts as one edge
    check, found edges come from one CSR membership sweep."""
    a, b = edge
    pool_a, pool_b = candidates[a], candidates[b]
    stats.record_edge_checks(len(pool_a) * len(pool_b))
    sources, targets = kernel.out_edges_into(pool_a, pool_b)
    if len(sources):
        edge_src.append(sources)
        edge_dst.append(targets)


def _index_edge_vec(check, candidates: dict, context: KernelContext,
                    stats: AccessStats, seen_edge: dict,
                    edge_src: list, edge_dst: list):
    """Vectorized index-driven edge verification (the paper's method)."""
    target_pool, other_pos, forward = _edge_check_geometry(check, candidates)
    combos = _combo_matrix(_pool_arrays(check, candidates))
    if len(combos) == 0:
        return
    packed = pack_matrix(combos)
    seen = seen_edge.setdefault(check.constraint, _SeenCombos())
    entry = _batched_fetch(context, check.constraint, combos, packed,
                           stats, seen, edge_phase=True)
    lengths, fetched = entry[1], entry[3]
    others = np.repeat(combos[:, other_pos], lengths)
    keep = in_sorted(target_pool, fetched)
    fetched = fetched[keep]
    others = others[keep]
    kernel = context.graph_kernel
    if forward:
        mask = kernel.has_edges(others, fetched)
        edge_src.append(others[mask])
        edge_dst.append(fetched[mask])
    else:
        mask = kernel.has_edges(fetched, others)
        edge_src.append(fetched[mask])
        edge_dst.append(others[mask])


# -------------------------------------------------------------------- execution
def execute_plan_vectorized(plan: QueryPlan, schema_index: SchemaIndex,
                            stats: AccessStats | None = None,
                            edge_mode: str = MODE_PLAN) -> ExecutionResult:
    """Array-kernel twin of :func:`~repro.core.executor.execute_plan`.

    Requires :func:`can_vectorize` conditions; answers, candidates,
    ``G_Q`` and ``AccessStats`` are byte-identical to the sequential
    executor (property-tested).
    """
    if edge_mode not in (MODE_PLAN, MODE_PROBE):
        raise PlanError(f"unknown edge mode {edge_mode!r}")
    if not can_vectorize(schema_index):
        raise EngineError(
            "vectorized execution needs numpy plus a frozen session "
            "(FrozenGraph snapshot and frozen constraint indexes)")
    context = kernel_context(schema_index)
    kernel = context.graph_kernel
    graph = schema_index.graph
    pattern = plan.pattern
    stats = stats if stats is not None else AccessStats()

    # ---- node phase: batched probes + sorted-merge set algebra --------------
    seen_initial: set = set()
    seen_node: dict = {}
    candidates: dict = {}
    for op in plan.ops:
        if op.is_initial:
            found = _initial_op(context, op, stats, seen_initial)
        else:
            combos = _combo_matrix(_pool_arrays(op, candidates))
            if len(combos) == 0:
                found = kernel.ids[:0]
            else:
                packed = pack_matrix(combos)
                seen = seen_node.setdefault(op.constraint, _SeenCombos())
                entry = _batched_fetch(context, op.constraint, combos,
                                       packed, stats, seen,
                                       edge_phase=False)
                if entry[5] is None:
                    entry[5] = np.unique(entry[3])
                raw = entry[5]
                if op.predicate.is_trivial or len(raw) == 0:
                    found = raw
                else:
                    found = raw[kernel.predicate_mask(op.predicate, raw)]
        if op.target in candidates:
            candidates[op.target] = np.intersect1d(
                candidates[op.target], found, assume_unique=True)
        else:
            candidates[op.target] = found

    _check_coverage(plan, candidates)

    # ---- edge phase ---------------------------------------------------------
    edge_src: list = []
    edge_dst: list = []
    seen_edge: dict = {}
    if edge_mode == MODE_PROBE:
        for edge in pattern.edges():
            _probe_edge_vec(kernel, edge, candidates, stats,
                            edge_src, edge_dst)
    else:
        for check in plan.edge_checks:
            if check.mode == EDGE_VIA_PROBE:
                _probe_edge_vec(kernel, check.edge, candidates, stats,
                                edge_src, edge_dst)
            elif check.mode == EDGE_VIA_INDEX:
                _index_edge_vec(check, candidates, context, stats,
                                seen_edge, edge_src, edge_dst)
            else:  # pragma: no cover - defensive
                raise UnverifiableEdge(
                    f"unknown edge-check mode {check.mode!r}")

    # ---- assemble G_Q -------------------------------------------------------
    pools = [pool for pool in candidates.values() if len(pool)]
    kept = np.unique(np.concatenate(pools)) if pools else kernel.ids[:0]
    gq = Graph()
    for v in kept.tolist():
        gq.add_node(graph.label_of(v), value=graph.value_of(v), node_id=v)
    edges_found: set = set()
    if edge_src:
        edges_found.update(zip(np.concatenate(edge_src).tolist(),
                               np.concatenate(edge_dst).tolist()))
    for (v, w) in edges_found:
        gq.add_edge(v, w)
    final = {u: set(pool.tolist()) for u, pool in candidates.items()}
    return ExecutionResult(plan=plan, gq=gq, candidates=final, stats=stats)


# ----------------------------------------------------------------- shard kernels
def run_shard_task_vectorized(graph, schema_index, owned: frozenset,
                              owned_sorted, task: tuple):
    """Shard-side scatter-task handler with the edge work vectorized.

    Responses are element-for-element identical to
    :func:`~repro.core.executor.run_shard_task` — the parent's merge and
    accounting logic must not be able to tell the two apart. ``fetch``
    tasks delegate to the sequential handler (per-combo dict lookups are
    already O(1)); ``probe`` and ``edge`` tasks replace their scalar
    ``has_edge`` loops with batched CSR membership tests.
    """
    kind = task[0]
    if kind == TASK_FETCH:
        return run_shard_task(graph, schema_index, owned, task)
    kernel = graph_kernel(graph)
    if kind == TASK_PROBE:
        _, a_nodes, b_nodes = task
        a_arr = np.asarray(a_nodes, dtype=np.int64)
        if len(a_arr):
            a_arr = a_arr[in_sorted(owned_sorted, a_arr)]
        b_arr = np.asarray(b_nodes, dtype=np.int64)
        checked = len(a_arr) * len(b_arr)
        sources, targets = kernel.out_edges_into(a_arr, b_arr)
        # a_nodes/b_nodes arrive sorted, so this enumerates found pairs
        # in the same (va, vb) order as the scalar double loop.
        return checked, list(zip(sources.tolist(), targets.tolist()))
    if kind == TASK_EDGE:
        _, cpos, combos = task
        constraint = schema_index.constraint_at(cpos)
        results = []
        for combo in combos:
            payload = schema_index.fetch(constraint, combo)
            if not payload:
                results.append([])
                continue
            targets = np.asarray(payload, dtype=np.int64)
            flag_pairs = []
            for member in combo:
                members = np.full(len(targets), member, dtype=np.int64)
                forward = kernel.has_edges(members, targets)
                backward = kernel.has_edges(targets, members)
                flag_pairs.append(list(zip(forward.tolist(),
                                           backward.tolist())))
            results.append([
                (w, tuple(flags[i] for flags in flag_pairs))
                for i, w in enumerate(payload)])
        return results
    return run_shard_task(graph, schema_index, owned, task)


__all__ = [
    "GraphKernel",
    "HAVE_NUMPY",
    "KernelContext",
    "can_vectorize",
    "execute_plan_vectorized",
    "graph_kernel",
    "kernel_context",
    "run_shard_task_vectorized",
    "sorted_id_array",
]
