"""The paper's primary contribution: effective boundedness machinery.

* :mod:`~repro.core.actualized` — actualized constraints ``Γ`` (Section III-B).
* :mod:`~repro.core.covers` — node/edge covers ``VCov/ECov`` and their
  simulation variants ``sVCov/sECov`` (Sections III-A, VI-A).
* :mod:`~repro.core.ebchk` — **EBChk/sEBChk**, deciding effective
  boundedness (Theorems 2 and 8).
* :mod:`~repro.core.qplan` — **QPlan/sQPlan**, worst-case-optimal query
  plans (Theorems 4 and 9); plan objects live in :mod:`~repro.core.plan`.
* :mod:`~repro.core.executor` — runs a plan against a
  :class:`~repro.constraints.index.SchemaIndex`, producing ``G_Q``.
* :mod:`~repro.core.instance` — **EEChk/sEEChk** and M-bounded extensions
  (Section V).
"""

from repro.core.covers import CoverResult, compute_covers
from repro.core.ebchk import BoundednessResult, is_effectively_bounded, ebchk, sebchk
from repro.core.plan import FetchOp, EdgeCheck, QueryPlan
from repro.core.qplan import generate_plan, qplan, sqplan
from repro.core.executor import ExecutionResult, execute_plan
from repro.core.instance import (
    EEPResult,
    maximum_extension,
    is_instance_bounded,
    eechk,
    seechk,
    find_min_m,
    min_m_for_fraction,
    greedy_minimum_extension,
)

__all__ = [
    "CoverResult",
    "compute_covers",
    "BoundednessResult",
    "is_effectively_bounded",
    "ebchk",
    "sebchk",
    "FetchOp",
    "EdgeCheck",
    "QueryPlan",
    "generate_plan",
    "qplan",
    "sqplan",
    "ExecutionResult",
    "execute_plan",
    "EEPResult",
    "maximum_extension",
    "is_instance_bounded",
    "eechk",
    "seechk",
    "find_min_m",
    "min_m_for_fraction",
    "greedy_minimum_extension",
]
