"""EBChk and sEBChk — deciding effective boundedness (Theorems 2 and 8).

``EBnd(Q, A)``: given a pattern query ``Q`` and an access schema ``A``,
is ``Q`` effectively bounded under ``A``? By the characterizations
(Theorems 1 and 7), this reduces to checking that the node and edge
covers are complete, which :mod:`repro.core.covers` computes with the
worklist of Fig. 3.

Complexity (Theorem 2): ``O(|A||E_Q| + ||A|||V_Q|^2)`` in general, and
``O(|A||E_Q| + |V_Q|^2)`` in the two special cases, realized by the
counter variant that :func:`~repro.core.covers.compute_covers`
auto-selects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.schema import AccessSchema
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.covers import CoverResult, compute_covers
from repro.pattern.pattern import Pattern


@dataclass
class BoundednessResult:
    """Verdict of EBChk/sEBChk plus the evidence (the covers)."""

    bounded: bool
    covers: CoverResult

    def __bool__(self) -> bool:
        return self.bounded

    @property
    def semantics(self) -> str:
        return self.covers.semantics

    def explain(self) -> str:
        """Human-readable explanation of the verdict."""
        if self.bounded:
            return (f"effectively bounded under {self.semantics} semantics: "
                    f"VCov and ECov are complete")
        parts = []
        if self.covers.uncovered_nodes:
            nodes = ", ".join(
                f"{u} ({self.covers.pattern.label_of(u)})"
                for u in self.covers.uncovered_nodes)
            parts.append(f"uncovered nodes: {nodes}")
        if self.covers.uncovered_edges:
            edges = ", ".join(map(str, self.covers.uncovered_edges))
            parts.append(f"uncovered edges: {edges}")
        return "not effectively bounded; " + "; ".join(parts)


def is_effectively_bounded(pattern: Pattern, schema: AccessSchema,
                           semantics: str = SUBGRAPH,
                           use_counters: bool | None = None) -> BoundednessResult:
    """Decide ``EBnd(Q, A)`` for either semantics.

    Examples
    --------
    >>> from repro.graph.generators import imdb_like
    >>> from repro.pattern import parse_pattern
    >>> _, schema = imdb_like(scale=0.01)
    >>> q = parse_pattern("m: movie; y: year; m -> y")
    >>> bool(is_effectively_bounded(q, schema))
    True
    >>> lone_actor = parse_pattern("a: actor; c: country; a -> c")
    >>> bool(is_effectively_bounded(lone_actor, schema))
    False
    """
    covers = compute_covers(pattern, schema, semantics, use_counters=use_counters)
    return BoundednessResult(bounded=covers.complete, covers=covers)


def ebchk(pattern: Pattern, schema: AccessSchema,
          use_counters: bool | None = None) -> BoundednessResult:
    """The paper's **EBChk**: effective boundedness for *subgraph* queries."""
    return is_effectively_bounded(pattern, schema, SUBGRAPH, use_counters)


def sebchk(pattern: Pattern, schema: AccessSchema,
           use_counters: bool | None = None) -> BoundednessResult:
    """The paper's **sEBChk**: effective boundedness for *simulation*
    queries (children-only deduction, Section VI-B)."""
    return is_effectively_bounded(pattern, schema, SIMULATION, use_counters)
