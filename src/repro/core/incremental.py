"""Incremental bounded evaluation — the paper's Section VIII future work.

    "Another topic is to study incremental boundedness: given an access
    schema A, a graph G and a pattern query Q, it is to incrementally
    compute Q(G ⊕ ΔG) in response to all changes ΔG to G, by accessing a
    bounded amount of data from G under A."

The observation that makes this tractable here: once a query is
effectively bounded, *re-evaluating from scratch already accesses a
bounded amount of data* — the work that actually scales with ΔG is index
maintenance, which :mod:`repro.constraints.maintenance` performs locally
(inspecting ``ΔG ∪ Nb(ΔG)`` only). This module packages the two on top of
a mutable :class:`~repro.engine.engine.QueryEngine` session (so plan
compilation is cached per canonical pattern form) and adds a delta-level
shortcut: a registered query is only re-evaluated when some changed
node's label is *relevant* to it (appears in the query or in a constraint
its plan uses); otherwise the cached answer stands.

This gives exactly the bounded-incremental contract the paper sketches:
per update batch, index repair touches ``O(|ΔG| + |Nb(ΔG)|)`` data and
each affected query touches data bounded by its plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accounting import AccessStats
from repro.constraints.maintenance import MaintenanceReport
from repro.constraints.schema import AccessSchema
from repro.core.actualized import SUBGRAPH
from repro.engine.engine import PreparedQuery, QueryEngine
from repro.errors import PatternError, ReproError
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.pattern.pattern import Pattern


@dataclass
class RegisteredQuery:
    """A query kept continuously answered by the evaluator."""

    name: str
    prepared: PreparedQuery
    relevant_labels: frozenset[str]
    answer: object = None
    evaluations: int = 0
    stats: AccessStats = field(default_factory=AccessStats)

    @property
    def pattern(self) -> Pattern:
        return self.prepared.pattern

    @property
    def semantics(self) -> str:
        return self.prepared.semantics

    @property
    def plan(self):
        return self.prepared.plan


class IncrementalEvaluator:
    """Keeps bounded-query answers fresh under graph updates.

    Examples
    --------
    >>> from repro import AccessConstraint, AccessSchema, Graph, GraphDelta
    >>> from repro.pattern import parse_pattern
    >>> g = Graph()
    >>> y = g.add_node("year", value=2000)
    >>> m = g.add_node("movie")
    >>> g.add_edge(m, y)
    True
    >>> schema = AccessSchema([AccessConstraint((), "year", 10),
    ...                        AccessConstraint(("year",), "movie", 10)])
    >>> ev = IncrementalEvaluator(g, schema)
    >>> q = parse_pattern("m: movie; y: year; m -> y")
    >>> len(ev.register("q", q))
    1
    >>> delta = GraphDelta().add_node(9, "movie").add_edge(9, y)
    >>> report = ev.apply(delta)
    >>> len(ev.answer("q"))
    2
    """

    def __init__(self, graph: Graph, schema: AccessSchema):
        self._engine = QueryEngine(graph, schema, frozen=False)
        self._queries: dict[str, RegisteredQuery] = {}

    @property
    def engine(self) -> QueryEngine:
        """The underlying mutable engine session."""
        return self._engine

    @property
    def graph(self) -> Graph:
        return self._engine.graph

    @property
    def schema(self) -> AccessSchema:
        return self._engine.schema

    # -- registration -----------------------------------------------------------
    def register(self, name: str, pattern: Pattern,
                 semantics: str = SUBGRAPH):
        """Register a query (must be effectively bounded) and return its
        initial answer."""
        if name in self._queries:
            raise PatternError(f"query {name!r} is already registered")
        prepared = self._engine.prepare(pattern, semantics)
        relevant = set(pattern.labels())
        for constraint in prepared.plan.constraints_used():
            relevant.add(constraint.target)
            relevant.update(constraint.source)
        entry = RegisteredQuery(name=name, prepared=prepared,
                                relevant_labels=frozenset(relevant))
        self._queries[name] = entry
        self._evaluate(entry)
        return entry.answer

    def unregister(self, name: str) -> None:
        try:
            del self._queries[name]
        except KeyError:
            raise PatternError(f"unknown query {name!r}") from None

    def answer(self, name: str):
        """The current (always fresh) answer of a registered query."""
        try:
            return self._queries[name].answer
        except KeyError:
            raise PatternError(f"unknown query {name!r}") from None

    def evaluations(self, name: str) -> int:
        """How many times the query was actually re-evaluated — the
        delta-relevance shortcut keeps this far below the update count."""
        try:
            return self._queries[name].evaluations
        except KeyError:
            raise PatternError(f"unknown query {name!r}") from None

    # -- updates --------------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> MaintenanceReport:
        """Apply ΔG: repair indexes locally, re-answer affected queries.

        Raises if the update breaks a constraint the schema declares —
        stale bounds would silently invalidate every registered plan.
        """
        touched_labels = self._labels_touched(delta)
        report = self._engine.apply(delta)
        if not report.still_satisfied:
            violated = ", ".join(str(c) for c, _, _ in report.violations)
            raise ReproError(
                f"update violates access constraints: {violated}")
        for entry in self._queries.values():
            if touched_labels & entry.relevant_labels:
                self._evaluate(entry)
        return report

    def _labels_touched(self, delta: GraphDelta) -> set[str]:
        """Labels of nodes whose neighbourhood the delta changes (computed
        against the pre-state so deletions are observable)."""
        from repro.graph.delta import EdgeChange, NodeChange
        graph = self.graph
        labels: set[str] = set()
        pending: dict[int, str] = {}

        def label_of(node: int) -> str | None:
            if node in pending:
                return pending[node]
            if graph.has_node(node):
                return graph.label_of(node)
            return None

        for change in delta:
            if isinstance(change, NodeChange):
                if change.insert:
                    pending[change.node] = change.label
                    labels.add(change.label)
                else:
                    label = label_of(change.node)
                    if label:
                        labels.add(label)
                    if graph.has_node(change.node):
                        for other in graph.neighbors(change.node):
                            labels.add(graph.label_of(other))
            elif isinstance(change, EdgeChange):
                for node in (change.source, change.target):
                    label = label_of(node)
                    if label:
                        labels.add(label)
        return labels

    def _evaluate(self, entry: RegisteredQuery) -> None:
        run = entry.prepared.run(stats=entry.stats)
        entry.answer = run.answer
        entry.evaluations += 1
