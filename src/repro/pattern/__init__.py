"""Pattern queries ``Q = (V_Q, E_Q, f_Q, g_Q)`` (Section II of the paper).

A pattern is a small directed graph whose nodes carry a label and a
*predicate* — a conjunction of atomic comparisons on the attribute value of
matched data nodes (e.g. ``year >= 2011 AND year <= 2013``).

Patterns can be built programmatically (:class:`Pattern`), parsed from a
compact text DSL (:func:`parse_pattern`), or generated at random with the
paper's workload parameters (:class:`PatternGenerator`).
"""

from repro.pattern.predicates import Atom, Predicate, TRUE
from repro.pattern.pattern import Pattern
from repro.pattern.dsl import parse_pattern, format_pattern
from repro.pattern.generator import PatternGenerator

__all__ = [
    "Atom",
    "Predicate",
    "TRUE",
    "Pattern",
    "parse_pattern",
    "format_pattern",
    "PatternGenerator",
]
