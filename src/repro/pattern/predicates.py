"""Node predicates for pattern queries.

Per Section II, the predicate ``g_Q(u)`` of a pattern node ``u`` is a
conjunction of atomic formulas ``f_Q(u) op c`` where ``c`` is a constant
and ``op`` is one of ``=, >, <, <=, >=`` (we additionally support ``!=``
as a convenience extension; it is never required by the paper's examples).

Predicates are immutable and hashable so they can live inside frozen plan
objects.

The module also implements *cardinality hints*: for integer predicates that
pin the value into a closed range (e.g. ``year >= 2011 AND year <= 2013``),
:meth:`Predicate.max_distinct_values` returns the number of integers in the
range (3 here). QPlan uses this to refine ``size[u]`` the way the paper's
Example 1 counts "movies released in 2011–2013" as ``24 x 3 x 4``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import PredicateError

_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Atom:
    """A single comparison ``value op constant``."""

    op: str
    constant: object

    def __post_init__(self):
        if self.op not in _OPS:
            raise PredicateError(f"unknown operator {self.op!r}; expected one of {_OPS}")

    def evaluate(self, value) -> bool:
        """Evaluate the atom against a data-node value.

        A ``None`` value (node has no attribute) satisfies no atom, so a
        node without a value can only match predicate-free pattern nodes.
        Non-comparable type pairs (e.g. str vs int) evaluate to False
        rather than raising: data graphs are heterogeneous.
        """
        if value is None:
            return False
        try:
            if self.op == "=":
                return value == self.constant
            if self.op == "!=":
                return value != self.constant
            if self.op == "<":
                return value < self.constant
            if self.op == "<=":
                return value <= self.constant
            if self.op == ">":
                return value > self.constant
            return value >= self.constant
        except TypeError:
            return False

    def __str__(self) -> str:
        constant = f'"{self.constant}"' if isinstance(self.constant, str) else self.constant
        return f"{self.op}{constant}"


@dataclass(frozen=True)
class Predicate:
    """A conjunction of :class:`Atom` comparisons.

    Examples
    --------
    >>> p = Predicate.parse(">=2011").and_(Predicate.parse("<=2013"))
    >>> p.evaluate(2012), p.evaluate(2014)
    (True, False)
    >>> p.max_distinct_values()
    3
    """

    atoms: tuple[Atom, ...] = ()

    @classmethod
    def of(cls, *pairs) -> "Predicate":
        """Build from ``(op, constant)`` pairs: ``Predicate.of((">=", 3))``."""
        return cls(tuple(Atom(op, constant) for op, constant in pairs))

    @classmethod
    def parse(cls, text: str) -> "Predicate":
        """Parse a conjunction like ``">=2011 & <=2013"`` or ``'="UK"'``."""
        text = text.strip()
        if not text:
            return TRUE
        atoms = []
        for part in text.split("&"):
            part = part.strip()
            for op in ("<=", ">=", "!=", "<", ">", "="):
                if part.startswith(op):
                    raw = part[len(op):].strip()
                    atoms.append(Atom(op, _parse_constant(raw)))
                    break
            else:
                raise PredicateError(f"cannot parse predicate atom {part!r}")
        return cls(tuple(atoms))

    @property
    def is_trivial(self) -> bool:
        """True when the predicate is the constant ``true`` (no atoms)."""
        return not self.atoms

    def evaluate(self, value) -> bool:
        """True iff every atom holds for ``value``."""
        return all(atom.evaluate(value) for atom in self.atoms)

    def and_(self, other: "Predicate") -> "Predicate":
        """Conjunction of two predicates."""
        return Predicate(self.atoms + other.atoms)

    def filter(self, values: Iterable) -> list:
        """Keep only the values satisfying the predicate."""
        return [v for v in values if self.evaluate(v)]

    def max_distinct_values(self) -> float:
        """Upper bound on distinct *integer* values that can satisfy the
        predicate, or ``math.inf`` when unbounded.

        An equality atom bounds it to 1. A pair of integer range atoms
        bounds it to the width of the closed integer interval. This is the
        *range hint* used by QPlan's size estimates (see module docstring).
        """
        lo = -math.inf
        hi = math.inf
        integral = True
        for atom in self.atoms:
            if atom.op == "=":
                return 1
            if atom.op == "!=":
                continue
            constant = atom.constant
            if not isinstance(constant, (int, float)) or isinstance(constant, bool):
                return math.inf
            if isinstance(constant, float) and not constant.is_integer():
                integral = False
            if atom.op in (">", ">="):
                bound = constant + 1 if atom.op == ">" else constant
                lo = max(lo, bound)
            elif atom.op in ("<", "<="):
                bound = constant - 1 if atom.op == "<" else constant
                hi = min(hi, bound)
        if lo == -math.inf or hi == math.inf or not integral:
            return math.inf
        width = math.floor(hi) - math.ceil(lo) + 1
        return max(width, 0)

    def is_satisfiable(self) -> bool:
        """Cheap unsatisfiability check over the conjunction.

        Detects contradictions between equality atoms and between numeric
        range atoms. Sound but not complete for exotic mixes (which simply
        return True and match nothing at run time).
        """
        equals = [a.constant for a in self.atoms if a.op == "="]
        if len(set(map(repr, equals))) > 1:
            return False
        for atom in self.atoms:
            if equals and not atom.evaluate(equals[0]):
                return False
        numeric = self.max_distinct_values()
        return numeric != 0

    def __str__(self) -> str:
        if not self.atoms:
            return "true"
        return " & ".join(str(atom) for atom in self.atoms)


def _parse_constant(raw: str):
    """Parse an atom constant: quoted string, int, or float."""
    if not raw:
        raise PredicateError("empty constant in predicate")
    if raw[0] in "\"'":
        if len(raw) < 2 or raw[-1] != raw[0]:
            raise PredicateError(f"unterminated string constant {raw!r}")
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise PredicateError(f"cannot parse constant {raw!r}") from None


#: The trivially-true predicate (no atoms).
TRUE = Predicate()
