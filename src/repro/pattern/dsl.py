"""A compact text DSL for pattern queries.

The grammar has three statement kinds, separated by ``;`` or newlines:

* node declaration: ``name: label`` — e.g. ``m: movie``
* edge declaration: ``a -> b`` (or a chain ``a -> b -> c``)
* predicate: ``name.value OP constant`` — e.g. ``y.value >= 2011``

Example — the paper's Q0 (Fig. 1):

.. code-block:: text

    aw: award;  y: year;  m: movie
    a: actor;  s: actress;  c: country
    m -> aw;  m -> y;  m -> a;  m -> s
    a -> c;  s -> c
    y.value >= 2011;  y.value <= 2013

Comments start with ``#`` and run to end of line.
"""

from __future__ import annotations

import re

from repro.errors import DslError
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import Atom, Predicate

_NODE_RE = re.compile(r"^(?P<name>\w+)\s*:\s*(?P<label>[\w./-]+)$")
_EDGE_RE = re.compile(r"^\w+(\s*->\s*\w+)+$")
_PRED_RE = re.compile(
    r"^(?P<name>\w+)\.value\s*(?P<op>=|!=|<=|>=|<|>)\s*(?P<constant>.+)$")


def parse_pattern(text: str, name: str = "") -> Pattern:
    """Parse DSL ``text`` into a :class:`Pattern`.

    Raises :class:`~repro.errors.DslError` with a line reference on any
    syntax problem.
    """
    pattern = Pattern(name=name)
    ids: dict[str, int] = {}
    pending_predicates: list[tuple[str, Atom, int]] = []

    statements = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.split("#", 1)[0]
        for statement in line.split(";"):
            statement = statement.strip()
            if statement:
                statements.append((lineno, statement))

    for lineno, statement in statements:
        node_match = _NODE_RE.match(statement)
        if node_match:
            node_name = node_match.group("name")
            if node_name in ids:
                raise DslError(f"line {lineno}: node {node_name!r} declared twice")
            ids[node_name] = pattern.add_node(node_match.group("label"))
            continue

        pred_match = _PRED_RE.match(statement)
        if pred_match:
            constant = _parse_constant(pred_match.group("constant"), lineno)
            atom = Atom(pred_match.group("op"), constant)
            pending_predicates.append((pred_match.group("name"), atom, lineno))
            continue

        if _EDGE_RE.match(statement):
            chain = [part.strip() for part in statement.split("->")]
            for source, target in zip(chain, chain[1:]):
                for endpoint in (source, target):
                    if endpoint not in ids:
                        raise DslError(
                            f"line {lineno}: edge references undeclared node {endpoint!r}")
                pattern.add_edge(ids[source], ids[target])
            continue

        raise DslError(f"line {lineno}: cannot parse statement {statement!r}")

    for node_name, atom, lineno in pending_predicates:
        if node_name not in ids:
            raise DslError(
                f"line {lineno}: predicate references undeclared node {node_name!r}")
        node = ids[node_name]
        pattern.set_predicate(node, pattern.predicate_of(node).and_(Predicate((atom,))))

    return pattern


def _parse_constant(raw: str, lineno: int):
    raw = raw.strip()
    if not raw:
        raise DslError(f"line {lineno}: empty predicate constant")
    if raw[0] in "\"'":
        if len(raw) < 2 or raw[-1] != raw[0]:
            raise DslError(f"line {lineno}: unterminated string constant {raw!r}")
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise DslError(f"line {lineno}: cannot parse constant {raw!r}") from None


def format_pattern(pattern: Pattern) -> str:
    """Render a pattern back into DSL text (inverse of
    :func:`parse_pattern`, up to node naming)."""
    names = {node: f"n{node}" for node in sorted(pattern.nodes())}
    lines = [f"{names[node]}: {pattern.label_of(node)}"
             for node in sorted(pattern.nodes())]
    lines.extend(f"{names[source]} -> {names[target]}"
                 for source, target in pattern.edges())
    for node in sorted(pattern.nodes()):
        for atom in pattern.predicate_of(node).atoms:
            constant = atom.constant
            rendered = f'"{constant}"' if isinstance(constant, str) else repr(constant)
            lines.append(f"{names[node]}.value {atom.op} {rendered}")
    return "\n".join(lines)
