"""The pattern-query class ``Q = (V_Q, E_Q, f_Q, g_Q)``.

Pattern nodes are small integers with a label and a
:class:`~repro.pattern.predicates.Predicate`; edges are directed pairs.
Patterns are mutable while being built and are deliberately tiny (the
paper's workloads use 3–7 nodes), so no indexing beyond label buckets is
needed.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import PatternError
from repro.pattern.predicates import Predicate, TRUE


class Pattern:
    """A directed, node-labeled pattern with per-node predicates.

    Examples
    --------
    The paper's Q0 (Fig. 1) — actor/actress pairs from the same country in
    an award-winning 2011–2013 movie:

    >>> q = Pattern()
    >>> award = q.add_node("award")
    >>> year = q.add_node("year", predicate=Predicate.parse(">=2011 & <=2013"))
    >>> movie = q.add_node("movie")
    >>> actor = q.add_node("actor")
    >>> actress = q.add_node("actress")
    >>> country = q.add_node("country")
    >>> for e in [(movie, award), (movie, year), (movie, actor),
    ...           (movie, actress), (actor, country), (actress, country)]:
    ...     q.add_edge(*e)
    >>> q.num_nodes, q.num_edges
    (6, 6)
    """

    __slots__ = ("_labels", "_predicates", "_out", "_in", "_next_id", "name",
                 "_fingerprint")

    def __init__(self, name: str = ""):
        self._labels: dict[int, str] = {}
        self._predicates: dict[int, Predicate] = {}
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}
        self._next_id = 0
        self.name = name
        #: Cached canonical fingerprint (repro.engine.cache); any
        #: structural mutation resets it to None.
        self._fingerprint = None

    # -- construction --------------------------------------------------------
    def add_node(self, label: str, predicate: Predicate = TRUE,
                 node_id: int | None = None) -> int:
        """Add a pattern node; returns its id."""
        if not isinstance(label, str) or not label:
            raise PatternError(f"pattern label must be a non-empty string, got {label!r}")
        if not isinstance(predicate, Predicate):
            raise PatternError(f"predicate must be a Predicate, got {predicate!r}")
        if node_id is None:
            node_id = self._next_id
        elif node_id in self._labels:
            raise PatternError(f"pattern node {node_id} already exists")
        self._next_id = max(self._next_id, node_id + 1)
        self._labels[node_id] = label
        self._predicates[node_id] = predicate
        self._out[node_id] = set()
        self._in[node_id] = set()
        self._fingerprint = None
        return node_id

    def add_edge(self, source: int, target: int) -> None:
        """Add the directed pattern edge ``(source, target)``."""
        if source not in self._labels:
            raise PatternError(f"unknown pattern node {source}")
        if target not in self._labels:
            raise PatternError(f"unknown pattern node {target}")
        if target in self._out[source]:
            raise PatternError(f"pattern edge ({source}, {target}) already exists")
        self._out[source].add(target)
        self._in[target].add(source)
        self._fingerprint = None

    def set_predicate(self, node: int, predicate: Predicate) -> None:
        if node not in self._labels:
            raise PatternError(f"unknown pattern node {node}")
        self._predicates[node] = predicate
        self._fingerprint = None

    # -- read interface -------------------------------------------------------
    def nodes(self) -> Iterable[int]:
        return self._labels.keys()

    def has_node(self, node: int) -> bool:
        return node in self._labels

    def label_of(self, node: int) -> str:
        try:
            return self._labels[node]
        except KeyError:
            raise PatternError(f"unknown pattern node {node}") from None

    def predicate_of(self, node: int) -> Predicate:
        try:
            return self._predicates[node]
        except KeyError:
            raise PatternError(f"unknown pattern node {node}") from None

    def out_neighbors(self, node: int) -> set[int]:
        try:
            return self._out[node]
        except KeyError:
            raise PatternError(f"unknown pattern node {node}") from None

    def in_neighbors(self, node: int) -> set[int]:
        try:
            return self._in[node]
        except KeyError:
            raise PatternError(f"unknown pattern node {node}") from None

    def neighbors(self, node: int) -> set[int]:
        """Neighbours in either direction (paper's notion)."""
        return self.out_neighbors(node) | self.in_neighbors(node)

    def children(self, node: int) -> set[int]:
        """Out-neighbours — used by the simulation-query covers."""
        return self.out_neighbors(node)

    def parents(self, node: int) -> set[int]:
        """In-neighbours (a node ``u'`` is a parent of ``u`` if there is an
        edge from ``u'`` to ``u``)."""
        return self.in_neighbors(node)

    def has_edge(self, source: int, target: int) -> bool:
        out = self._out.get(source)
        return out is not None and target in out

    def edges(self) -> Iterator[tuple[int, int]]:
        for v in sorted(self._labels):
            for w in sorted(self._out[v]):
                yield (v, w)

    def labels(self) -> set[str]:
        return set(self._labels.values())

    def nodes_with_label(self, label: str) -> set[int]:
        return {v for v, l in self._labels.items() if l == label}

    def degree(self, node: int) -> int:
        return len(self.neighbors(node))

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._out.values())

    @property
    def size(self) -> int:
        """``|Q| = |V_Q| + |E_Q|``."""
        return self.num_nodes + self.num_edges

    @property
    def num_predicates(self) -> int:
        """Total number of predicate atoms across all nodes (the paper's
        ``#p`` workload knob)."""
        return sum(len(p.atoms) for p in self._predicates.values())

    @property
    def total_label_count(self) -> int:
        """Total number of labels in Q counted with multiplicity (``L_Q``
        in Section V's extension-size bound)."""
        return len(self._labels)

    def is_connected(self) -> bool:
        """True if the pattern is weakly connected (or empty)."""
        if not self._labels:
            return True
        start = next(iter(self._labels))
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for w in self.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == len(self._labels)

    def validate(self) -> None:
        """Raise :class:`PatternError` for patterns the algorithms cannot
        process (empty, unsatisfiable predicates)."""
        if not self._labels:
            raise PatternError("pattern has no nodes")
        for node, predicate in self._predicates.items():
            if not predicate.is_satisfiable():
                raise PatternError(
                    f"predicate of node {node} ({predicate}) is unsatisfiable")

    def copy(self) -> "Pattern":
        clone = Pattern(name=self.name)
        clone._labels = dict(self._labels)
        clone._predicates = dict(self._predicates)
        clone._out = {v: set(s) for v, s in self._out.items()}
        clone._in = {v: set(s) for v, s in self._in.items()}
        clone._next_id = self._next_id
        clone._fingerprint = self._fingerprint
        return clone

    def reversed_edges(self, edges: Iterable[tuple[int, int]]) -> "Pattern":
        """Copy of the pattern with the given edges reversed (used by the
        paper's Example 9, which builds Q2 from Q1 this way)."""
        flip = set(edges)
        clone = Pattern(name=self.name)
        clone._labels = dict(self._labels)
        clone._predicates = dict(self._predicates)
        clone._next_id = self._next_id
        clone._out = {v: set() for v in self._labels}
        clone._in = {v: set() for v in self._labels}
        for (v, w) in self.edges():
            if (v, w) in flip:
                clone.add_edge(w, v)
            else:
                clone.add_edge(v, w)
        return clone

    def matches_node(self, graph, data_node: int, pattern_node: int) -> bool:
        """Label + predicate test for a single (pattern node, data node)
        pair — the per-node condition shared by both query semantics."""
        return (graph.label_of(data_node) == self.label_of(pattern_node)
                and self.predicate_of(pattern_node).evaluate(graph.value_of(data_node)))

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"Pattern{name}(nodes={self.num_nodes}, edges={self.num_edges})"
