"""Random pattern-query generator (the paper's Section VII workload).

The paper generates 100 queries per dataset "using its labels, controlled
by #n, #e and #p, the number of nodes, edges and match predicates in the
ranges [3, 7], [#n-1, 1.5*#n] and [2, 8]".

To make the generated queries meaningful (i.e. structurally possible in
the data), the generator learns the *label adjacency* of a data graph —
which ordered label pairs actually occur as edges — and grows patterns by
random walks over that label graph. Predicates are synthesized from value
samples observed per label.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import PatternError
from repro.graph.graph import GraphView
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import Atom, Predicate

#: Paper defaults: #n in [3,7], #e in [#n-1, 1.5#n], #p in [2,8].
DEFAULT_NODE_RANGE = (3, 7)
DEFAULT_PREDICATE_RANGE = (2, 8)


class PatternGenerator:
    """Generates random patterns grounded in a data graph's label structure.

    Parameters
    ----------
    label_edges:
        Ordered label pairs ``(la, lb)`` such that an edge from an
        ``la``-node to an ``lb``-node exists in the data.
    value_samples:
        Per-label list of observed attribute values, used to build
        predicates that are actually satisfiable in the data.
    rng:
        A :class:`random.Random`; pass a seeded instance for reproducible
        workloads.
    schema / anchor_bias:
        When a schema is supplied, label choices are biased (with
        probability ``anchor_bias``) toward labels and label pairs that
        some access constraint touches. This compensates for the label
        poverty of synthetic data: the paper's datasets have hundreds to
        thousands of labels, so *uniform* label sampling there lands on
        constraint-covered labels far more often than on a generator with
        a few dozen labels. ``anchor_bias=0`` restores uniform sampling.
    """

    def __init__(self, label_edges: Sequence[tuple[str, str]],
                 value_samples: dict[str, list] | None = None,
                 rng: random.Random | None = None,
                 schema=None, anchor_bias: float = 0.65):
        if not label_edges:
            raise PatternError("cannot generate patterns without label adjacency")
        self.label_edges = sorted(set(label_edges))
        self.value_samples = value_samples or {}
        self.rng = rng or random.Random(0)
        self.anchor_bias = anchor_bias if schema is not None else 0.0
        self._forward: dict[str, list[str]] = {}
        self._backward: dict[str, list[str]] = {}
        for la, lb in self.label_edges:
            self._forward.setdefault(la, []).append(lb)
            self._backward.setdefault(lb, []).append(la)
        self._labels = sorted(set(self._forward) | set(self._backward))
        self._seed_labels: list[str] = []
        self._anchored_pairs: set[frozenset[str]] = set()
        # propagating[l] = labels deducible *from* l through a constraint
        # (l in the source, the other label the target) — extensions along
        # these pairs keep the node cover growing.
        self._propagating: dict[str, set[str]] = {}
        if schema is not None:
            for constraint in schema:
                if constraint.is_type1:
                    self._seed_labels.append(constraint.target)
                for source_label in constraint.source:
                    self._anchored_pairs.add(
                        frozenset((source_label, constraint.target)))
                    self._propagating.setdefault(source_label, set()).add(
                        constraint.target)
        self._seed_labels = sorted(set(self._seed_labels) & set(self._labels))

    @classmethod
    def from_graph(cls, graph: GraphView, rng: random.Random | None = None,
                   max_value_samples: int = 50,
                   max_edge_scan: int = 200_000,
                   schema=None, anchor_bias: float = 0.65) -> "PatternGenerator":
        """Learn label adjacency and value samples from a data graph.

        ``max_edge_scan`` caps the number of edges inspected so workload
        construction stays cheap on large graphs.
        """
        label_edges: set[tuple[str, str]] = set()
        scanned = 0
        for v, w in graph.edges():
            label_edges.add((graph.label_of(v), graph.label_of(w)))
            scanned += 1
            if scanned >= max_edge_scan:
                break
        samples: dict[str, list] = {}
        for label in graph.labels():
            bucket = []
            for node in graph.nodes_with_label(label):
                value = graph.value_of(node)
                if value is not None:
                    bucket.append(value)
                if len(bucket) >= max_value_samples:
                    break
            if bucket:
                samples[label] = bucket
        return cls(sorted(label_edges), samples, rng=rng,
                   schema=schema, anchor_bias=anchor_bias)

    # -- single pattern -----------------------------------------------------
    def generate(self, num_nodes: int | None = None,
                 num_edges: int | None = None,
                 num_predicates: int | None = None,
                 name: str = "") -> Pattern:
        """Generate one random connected pattern.

        Unspecified knobs are drawn from the paper's ranges.
        """
        rng = self.rng
        if num_nodes is None:
            num_nodes = rng.randint(*DEFAULT_NODE_RANGE)
        if num_nodes < 1:
            raise PatternError("patterns need at least one node")
        if num_edges is None:
            lo = max(num_nodes - 1, 1)
            hi = max(lo, int(1.5 * num_nodes))
            num_edges = rng.randint(lo, hi)
        if num_predicates is None:
            num_predicates = rng.randint(*DEFAULT_PREDICATE_RANGE)

        pattern = Pattern(name=name)
        if self._seed_labels and rng.random() < self.anchor_bias:
            start_label = rng.choice(self._seed_labels)
        else:
            start_label = rng.choice(self._labels)
        node_labels = [start_label]
        pattern.add_node(start_label)

        # Grow a random spanning tree over label-adjacent labels.
        while pattern.num_nodes < num_nodes:
            anchor = rng.randrange(pattern.num_nodes)
            anchor_label = node_labels[anchor]
            extension = self._random_extension(anchor_label)
            if extension is None:
                # Anchor label is isolated in the label graph; retry from
                # another anchor, or give up growing if none can extend.
                if not any(self._random_extension(label) for label in node_labels):
                    break
                continue
            new_label, outgoing = extension
            new_node = pattern.add_node(new_label)
            node_labels.append(new_label)
            if outgoing:
                pattern.add_edge(anchor, new_node)
            else:
                pattern.add_edge(new_node, anchor)

        # Add extra edges between existing nodes where label adjacency allows.
        attempts = 0
        while pattern.num_edges < num_edges and attempts < 20 * num_edges:
            attempts += 1
            a = rng.randrange(pattern.num_nodes)
            b = rng.randrange(pattern.num_nodes)
            if a == b or pattern.has_edge(a, b):
                continue
            if (node_labels[a], node_labels[b]) in self._forward_set():
                pattern.add_edge(a, b)

        self._attach_predicates(pattern, node_labels, num_predicates)
        return pattern

    def generate_many(self, count: int, **kwargs) -> list[Pattern]:
        """Generate ``count`` patterns (the paper's 100-query workloads)."""
        return [self.generate(name=f"q{i}", **kwargs) for i in range(count)]

    # -- internals ------------------------------------------------------------
    def _forward_set(self) -> set[tuple[str, str]]:
        return set(self.label_edges)

    def _random_extension(self, label: str):
        """Pick a random label adjacent to ``label``; returns
        ``(new_label, outgoing)`` or None if the label has no neighbours.

        With probability ``anchor_bias``, the choice is restricted to
        labels forming a constraint-anchored pair with ``label`` (see
        class docstring), when any exist."""
        choices = []
        for other in self._forward.get(label, ()):
            choices.append((other, True))
        for other in self._backward.get(label, ()):
            choices.append((other, False))
        if not choices:
            return None
        if self._anchored_pairs and self.rng.random() < self.anchor_bias:
            forward = self._propagating.get(label, set())
            propagating = [(other, outgoing) for other, outgoing in choices
                           if other in forward]
            if propagating:
                choices = propagating
            else:
                anchored = [(other, outgoing) for other, outgoing in choices
                            if frozenset((label, other)) in self._anchored_pairs]
                if anchored:
                    choices = anchored
        return self.rng.choice(choices)

    def _attach_predicates(self, pattern: Pattern, node_labels: list[str],
                           budget: int) -> None:
        """Spread up to ``budget`` predicate atoms over nodes with sampled
        values, mimicking the paper's #p knob."""
        rng = self.rng
        eligible = [node for node in pattern.nodes()
                    if node_labels[node] in self.value_samples]
        if not eligible:
            return
        added = 0
        attempts = 0
        while added < budget and attempts < 4 * budget:
            attempts += 1
            node = rng.choice(eligible)
            samples = self.value_samples[node_labels[node]]
            value = rng.choice(samples)
            atom = self._random_atom(value)
            if atom is None:
                continue
            current = pattern.predicate_of(node)
            candidate = current.and_(Predicate((atom,)))
            if not candidate.is_satisfiable():
                continue
            pattern.set_predicate(node, candidate)
            added += 1

    def _random_atom(self, value) -> Atom | None:
        rng = self.rng
        if isinstance(value, bool):
            return Atom("=", value)
        if isinstance(value, (int, float)):
            op = rng.choice(["=", ">=", "<=", ">", "<"])
            if op in (">=", ">"):
                return Atom(op, value - rng.randint(0, 3))
            if op in ("<=", "<"):
                return Atom(op, value + rng.randint(0, 3))
            return Atom("=", value)
        if isinstance(value, str):
            return Atom("=", value)
        return None
