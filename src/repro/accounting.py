"""Data-access accounting.

Effective boundedness is a claim about *how much data is touched*, so the
library threads an :class:`AccessStats` recorder through every index fetch
and adjacency probe. Benchmarks use it to report ``|accessed| / |G|``
(Fig. 5(d,h,l) of the paper) and tests use it to verify the worst-case
bounds computed by query plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AccessStats:
    """Counters for one query evaluation.

    Attributes
    ----------
    nodes_fetched:
        Node entries returned by index fetches (with multiplicity — the
        same node fetched twice counts twice, matching the paper's
        "visits at most ... nodes" accounting).
    edges_checked:
        Edge existence checks performed (index probes or adjacency probes).
    index_fetches:
        Number of index fetch operations issued.
    distinct_nodes:
        Distinct data nodes seen across all fetches.
    plan_cache_hits / plan_cache_misses:
        Plan-cache outcomes recorded by the
        :class:`~repro.engine.engine.QueryEngine` while preparing queries.
        Zero outside engine workloads.
    """

    nodes_fetched: int = 0
    edges_checked: int = 0
    index_fetches: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    _seen: set = field(default_factory=set, repr=False)

    @property
    def distinct_nodes(self) -> int:
        return len(self._seen)

    @property
    def total_accessed(self) -> int:
        """Nodes + edges touched — comparable to ``|G| = |V| + |E|``."""
        return self.nodes_fetched + self.edges_checked

    def record_fetch(self, nodes) -> None:
        """Record one index fetch returning ``nodes``."""
        self.index_fetches += 1
        count = 0
        for node in nodes:
            count += 1
            self._seen.add(node)
        self.nodes_fetched += count

    def record_edge_checks(self, count: int) -> None:
        self.edges_checked += count

    def record_edge_fetch(self, nodes) -> None:
        """Record an index fetch issued to *verify edges*: the fetched
        entries count as edge examinations (the paper's Example 1 counts
        them this way), not as node fetches."""
        self.index_fetches += 1
        count = 0
        for node in nodes:
            count += 1
            self._seen.add(node)
        self.edges_checked += count

    def record_fetch_batch(self, fetches: int, nodes: int, seen) -> None:
        """Record ``fetches`` index fetches returning ``nodes`` entries in
        total, with ``seen`` the distinct-node update (an iterable of the
        fetched node ids). Totals are identical to ``fetches`` individual
        :meth:`record_fetch` calls — the vectorized executor uses this to
        reproduce, not approximate, the sequential accounting."""
        self.index_fetches += fetches
        self.nodes_fetched += nodes
        self._seen.update(seen)

    def record_edge_fetch_batch(self, fetches: int, edges: int, seen) -> None:
        """Batch form of :meth:`record_edge_fetch`: ``fetches`` edge-phase
        index fetches returning ``edges`` entries in total."""
        self.index_fetches += fetches
        self.edges_checked += edges
        self._seen.update(seen)

    def record_cache_hit(self) -> None:
        """Record one plan-cache hit (a prepare served without planning)."""
        self.plan_cache_hits += 1

    def record_cache_miss(self) -> None:
        """Record one plan-cache miss (EBChk + QPlan actually ran)."""
        self.plan_cache_misses += 1

    def merge(self, other: "AccessStats") -> None:
        """Fold another recorder's counts into this one."""
        self.nodes_fetched += other.nodes_fetched
        self.edges_checked += other.edges_checked
        self.index_fetches += other.index_fetches
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self._seen |= other._seen

    def as_dict(self) -> dict:
        return {
            "nodes_fetched": self.nodes_fetched,
            "edges_checked": self.edges_checked,
            "index_fetches": self.index_fetches,
            "distinct_nodes": self.distinct_nodes,
            "total_accessed": self.total_accessed,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
        }
