"""repro — bounded evaluation of graph pattern queries via access constraints.

A faithful, from-scratch reproduction of:

    Yang Cao, Wenfei Fan, Jinpeng Huai, Ruizhe Huang.
    "Making Pattern Queries Bounded in Big Graphs". ICDE 2015.

The workflow the paper proposes, in this library's vocabulary:

>>> import repro
>>> from repro.graph.generators import imdb_like
>>> from repro.pattern import parse_pattern
>>> graph, schema = imdb_like(scale=0.02)
>>> q = parse_pattern("m: movie; y: year; m -> y")
>>> repro.ebchk(q, schema).bounded              # (1) is Q bounded under A?
True
>>> engine = repro.connect((graph, schema))     # (2) snapshot + index, once
>>> run = engine.query(q)                       # (3) plan (cached) + evaluate
>>> len(run.answer) > 0
True

:func:`repro.connect` is the one session entry point — the same call
opens compiled artifacts (``repro.connect("artifacts/imdb")``) and
remote shard fleets (``repro.connect(path, backend="remote",
shard_addrs=[...])``); see :class:`repro.SessionConfig`.

The loose pieces (``SchemaIndex``, ``qplan``, ``bvf2``...) remain
available for single-shot use; the engine amortizes them across repeated
queries. See DESIGN.md for the module map, the correctness argument and
the engine architecture.
"""

from repro.accounting import AccessStats
from repro.constraints import (
    AccessConstraint,
    AccessSchema,
    ConstraintIndex,
    MaintainedSchemaIndex,
    SchemaCatalog,
    SchemaIndex,
    discover_schema,
)
from repro.core import (
    BoundednessResult,
    EEPResult,
    ExecutionResult,
    QueryPlan,
    ebchk,
    eechk,
    execute_plan,
    find_min_m,
    generate_plan,
    is_effectively_bounded,
    is_instance_bounded,
    qplan,
    sebchk,
    seechk,
    sqplan,
)
from repro.engine import PlanCache, PreparedQuery, QueryEngine
from repro.engine.parallel import ShardBackend
from repro.errors import (
    AdmissionRejected,
    ConstraintViolation,
    DeadlineExceeded,
    EngineError,
    MatchTimeout,
    NotEffectivelyBounded,
    ReproError,
    ServerError,
    ServiceOverloaded,
    ShardError,
    ShardHandshakeMismatch,
    ShardProtocolError,
    ShardUnavailable,
)
from repro.graph import FrozenGraph, Graph, GraphDelta
from repro.matching import (
    bsim,
    bvf2,
    count_matches,
    find_matches,
    opt_gsim,
    opt_vf2,
    simulate,
)
from repro.pattern import Pattern, PatternGenerator, Predicate, parse_pattern
from repro.server.client import ServeClient
from repro.session import SessionConfig, connect

__version__ = "1.1.0"

__all__ = [
    "AccessConstraint",
    "AccessSchema",
    "AccessStats",
    "AdmissionRejected",
    "BoundednessResult",
    "ConstraintIndex",
    "ConstraintViolation",
    "DeadlineExceeded",
    "EEPResult",
    "EngineError",
    "ExecutionResult",
    "FrozenGraph",
    "Graph",
    "GraphDelta",
    "MaintainedSchemaIndex",
    "SchemaCatalog",
    "MatchTimeout",
    "NotEffectivelyBounded",
    "Pattern",
    "PatternGenerator",
    "PlanCache",
    "Predicate",
    "PreparedQuery",
    "QueryEngine",
    "QueryPlan",
    "ReproError",
    "SchemaIndex",
    "ServeClient",
    "ServerError",
    "ServiceOverloaded",
    "SessionConfig",
    "ShardBackend",
    "ShardError",
    "ShardHandshakeMismatch",
    "ShardProtocolError",
    "ShardUnavailable",
    "bsim",
    "bvf2",
    "connect",
    "count_matches",
    "discover_schema",
    "ebchk",
    "eechk",
    "execute_plan",
    "find_matches",
    "find_min_m",
    "generate_plan",
    "is_effectively_bounded",
    "is_instance_bounded",
    "opt_gsim",
    "opt_vf2",
    "parse_pattern",
    "qplan",
    "sebchk",
    "seechk",
    "simulate",
    "sqplan",
    "__version__",
]
