"""repro — bounded evaluation of graph pattern queries via access constraints.

A faithful, from-scratch reproduction of:

    Yang Cao, Wenfei Fan, Jinpeng Huai, Ruizhe Huang.
    "Making Pattern Queries Bounded in Big Graphs". ICDE 2015.

The workflow the paper proposes, in this library's vocabulary:

>>> from repro import QueryEngine, ebchk
>>> from repro.graph.generators import imdb_like
>>> from repro.pattern import parse_pattern
>>> graph, schema = imdb_like(scale=0.02)
>>> q = parse_pattern("m: movie; y: year; m -> y")
>>> ebchk(q, schema).bounded                    # (1) is Q bounded under A?
True
>>> engine = QueryEngine.open(graph, schema)    # (2) snapshot + index, once
>>> run = engine.query(q)                       # (3) plan (cached) + evaluate
>>> len(run.answer) > 0
True

The loose pieces (``SchemaIndex``, ``qplan``, ``bvf2``...) remain
available for single-shot use; the engine amortizes them across repeated
queries. See DESIGN.md for the module map, the correctness argument and
the engine architecture.
"""

from repro.accounting import AccessStats
from repro.constraints import (
    AccessConstraint,
    AccessSchema,
    ConstraintIndex,
    MaintainedSchemaIndex,
    SchemaCatalog,
    SchemaIndex,
    discover_schema,
)
from repro.core import (
    BoundednessResult,
    EEPResult,
    ExecutionResult,
    QueryPlan,
    ebchk,
    eechk,
    execute_plan,
    find_min_m,
    generate_plan,
    is_effectively_bounded,
    is_instance_bounded,
    qplan,
    sebchk,
    seechk,
    sqplan,
)
from repro.engine import PlanCache, PreparedQuery, QueryEngine
from repro.errors import (
    AdmissionRejected,
    ConstraintViolation,
    DeadlineExceeded,
    EngineError,
    MatchTimeout,
    NotEffectivelyBounded,
    ReproError,
    ServerError,
)
from repro.graph import FrozenGraph, Graph, GraphDelta
from repro.matching import (
    bsim,
    bvf2,
    count_matches,
    find_matches,
    opt_gsim,
    opt_vf2,
    simulate,
)
from repro.pattern import Pattern, PatternGenerator, Predicate, parse_pattern

__version__ = "1.0.0"

__all__ = [
    "AccessConstraint",
    "AccessSchema",
    "AccessStats",
    "AdmissionRejected",
    "BoundednessResult",
    "ConstraintIndex",
    "ConstraintViolation",
    "DeadlineExceeded",
    "EEPResult",
    "EngineError",
    "ExecutionResult",
    "FrozenGraph",
    "Graph",
    "GraphDelta",
    "MaintainedSchemaIndex",
    "SchemaCatalog",
    "MatchTimeout",
    "NotEffectivelyBounded",
    "Pattern",
    "PatternGenerator",
    "PlanCache",
    "Predicate",
    "PreparedQuery",
    "QueryEngine",
    "QueryPlan",
    "ReproError",
    "SchemaIndex",
    "ServerError",
    "bsim",
    "bvf2",
    "count_matches",
    "discover_schema",
    "ebchk",
    "eechk",
    "execute_plan",
    "find_matches",
    "find_min_m",
    "generate_plan",
    "is_effectively_bounded",
    "is_instance_bounded",
    "opt_gsim",
    "opt_vf2",
    "parse_pattern",
    "qplan",
    "sebchk",
    "seechk",
    "simulate",
    "sqplan",
    "__version__",
]
