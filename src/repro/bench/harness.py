"""Experiment implementations for every table and figure in Section VII.

Each function returns a list of row dicts; the mapping to the paper is:

========================  =====================================
Function                  Paper artifact
========================  =====================================
exp1_percentages          Exp-1(1) — % of effectively bounded queries
fig5_varying_g            Fig. 5(a,e,i) — evaluation time vs |G|
fig5_varying_q            Fig. 5(b,f,j) — evaluation time vs #n
fig5_varying_a            Fig. 5(c,g,k) — bVF2/bSim time vs ‖A‖
fig5_index_size           Fig. 5(d,h,l) — accessed data / index size vs #n
fig6_instance_bounded     Fig. 6(a,b) — minimum M vs % instance-bounded
exp3_algorithm_times      Expt-3 — EBChk/QPlan/sEBChk/sQPlan latency
engine_throughput         (new) cold vs prepared vs batched queries/sec
warm_start                (new) cold build vs artifact warm-open vs
                          prepared-plan reuse (repro.engine.persist)
serve_load                (new) concurrent query service vs
                          single-threaded prepared serving (repro.server)
shard_scaling             (new) scatter-gather shard execution vs the
                          sequential engine, across worker-process
                          counts (repro.graph.partition +
                          repro.engine.parallel)
remote_fleet              (new) TCP shard-server fleet vs inline shards:
                          owner-routing message reduction + answer
                          identity (repro.server.shardserver +
                          RemoteShardBackend)
remote_skewed             (new) pipelined vs barrier scatter against a
                          skewed fleet (one latency-injected shard):
                          per-shard progress, round overlap, and
                          cross-execution dedup (repro.core.executor +
                          RemoteShardBackend.scatter_submit)
extension_rescue          (new) online M-bounded extension: build
                          latency + rescued-query throughput vs M
                          (repro.constraints.catalog +
                          repro.engine.extension)
========================  =====================================

Bounded evaluation goes through :class:`~repro.engine.engine.QueryEngine`
sessions: one snapshot + index build per (dataset, schema) and one plan
compilation per canonical pattern, exactly what a query-serving
deployment amortizes. ``exp3`` deliberately bypasses the plan cache — it
measures EBChk/QPlan latency itself.

Baselines that exceed the per-run ``timeout`` are censored (None in the
row), just as the paper cut VF2/optVF2 off at 40 000 s.
"""

from __future__ import annotations

import time
from statistics import mean

from repro.accounting import AccessStats
from repro.bench.datasets import get_dataset, get_engine, get_workload
from repro.constraints.index import SchemaIndex
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.core.instance import min_m_for_fraction
from repro.core.qplan import generate_plan
from repro.engine import PlanCache, QueryEngine
from repro.errors import BenchmarkError, MatchTimeout
from repro.matching.optimized import opt_gsim, opt_vf2
from repro.matching.simulation import simulate
from repro.matching.vf2 import find_matches
from repro.session import connect


def timed(fn, *args, **kwargs):
    """Run ``fn``, returning ``(seconds, result)``; ``(None, None)`` when
    the matcher raises :class:`MatchTimeout` (a censored run)."""
    start = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    except MatchTimeout:
        return None, None
    return time.perf_counter() - start, result


def _bounded_queries(queries, schema, semantics: str, limit: int):
    selected = []
    for query in queries:
        if is_effectively_bounded(query, schema, semantics).bounded:
            selected.append(query)
            if len(selected) >= limit:
                break
    return selected


def _mean_or_none(values):
    values = [v for v in values if v is not None]
    return mean(values) if values else None


# ----------------------------------------------------------------- Exp-1(1)
def exp1_percentages(datasets=("imdb", "dbpedia", "web"), scale: float = 0.05,
                     count: int = 100, seed: int = 42) -> list[dict]:
    """Percentage of effectively bounded queries per dataset and
    semantics. Paper: 61/67/58 % (subgraph), 32/41/33 % (simulation)."""
    rows = []
    for name in datasets:
        _, schema = get_dataset(name, scale)
        queries = get_workload(name, scale, count=count, seed=seed)
        subgraph_pct = 100 * sum(
            1 for q in queries
            if is_effectively_bounded(q, schema, SUBGRAPH).bounded) / len(queries)
        simulation_pct = 100 * sum(
            1 for q in queries
            if is_effectively_bounded(q, schema, SIMULATION).bounded) / len(queries)
        rows.append({"dataset": name, "subgraph_pct": subgraph_pct,
                     "simulation_pct": simulation_pct})
    return rows


# ------------------------------------------------------------ Fig. 5(a,e,i)
def fig5_varying_g(dataset: str, scale: float = 0.08,
                   fractions=(0.25, 0.5, 0.75, 1.0),
                   queries_per_point: int = 3, timeout: float = 10.0,
                   seed: int = 42) -> list[dict]:
    """Evaluation time vs |G| for all six algorithms.

    Exactly like the paper, |G| varies by taking induced subsets of one
    fixed graph under one fixed schema (access constraints are monotone
    under subgraphs, see :mod:`repro.graph.sampling`); the engine
    sessions share one plan cache, so plans are compiled once — they
    depend on Q and A only. Bounded evaluation should stay flat as the
    scale factor grows, while the conventional algorithms grow or get
    censored. Rows also report the *data accessed* by the bounded
    algorithms — the deterministic version of the flatness claim.
    """
    from repro.graph.sampling import scale_series

    full_graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=100, seed=seed)
    sub_queries = _bounded_queries(pool, schema, SUBGRAPH, queries_per_point)
    sim_queries = _bounded_queries(pool, schema, SIMULATION, queries_per_point)

    # One plan cache across every scale point: plans depend on Q and A only.
    plan_cache = PlanCache()
    sub_worst = sim_worst = None

    rows = []
    for fraction, graph in scale_series(full_graph, fractions, seed=seed):
        engine = connect((graph, schema), plan_cache=plan_cache)
        sub_prepared = [engine.prepare(q, SUBGRAPH) for q in sub_queries]
        sim_prepared = [engine.prepare(q, SIMULATION) for q in sim_queries]
        if sub_worst is None:
            sub_worst = _mean_or_none(
                [p.worst_case_total_accessed for p in sub_prepared])
            sim_worst = _mean_or_none(
                [p.worst_case_total_accessed for p in sim_prepared])
        row = {"scale": fraction, "graph_size": graph.size,
               "bvf2_bound": sub_worst, "bsim_bound": sim_worst}

        for key, prepared_queries in (("bvf2", sub_prepared),
                                      ("bsim", sim_prepared)):
            times, accessed = [], []
            for prepared in prepared_queries:
                stats = AccessStats()
                seconds, _ = timed(prepared.run, stats=stats)
                times.append(seconds)
                accessed.append(stats.total_accessed)
            row[key] = _mean_or_none(times)
            row[f"{key}_accessed"] = _mean_or_none(accessed)

        sx = engine.schema_index
        row["vf2"] = _mean_or_none(
            [timed(find_matches, q, engine.graph, timeout=timeout)[0]
             for q in sub_queries])
        row["optvf2"] = _mean_or_none(
            [timed(opt_vf2, q, sx, timeout=timeout)[0] for q in sub_queries])
        row["gsim"] = _mean_or_none(
            [timed(simulate, q, engine.graph, timeout=timeout)[0]
             for q in sim_queries])
        row["optgsim"] = _mean_or_none(
            [timed(opt_gsim, q, sx, timeout=timeout)[0] for q in sim_queries])
        rows.append(row)
    return rows


# ------------------------------------------------------------ Fig. 5(b,f,j)
def fig5_varying_q(dataset: str, node_counts=(3, 4, 5, 6, 7),
                   scale: float = 0.05, queries_per_point: int = 3,
                   timeout: float = 10.0, seed: int = 42) -> list[dict]:
    """Evaluation time vs pattern size #n.

    The bounded algorithms run through a *fresh* engine session (not the
    memoized one): every timed call then pays EBChk + QPlan + execution
    exactly once, like the seed's per-call `bvf2`, regardless of what
    other experiments already compiled in this process. ``refresh=True``
    forces a real execution per measurement (the engine would otherwise
    serve repeated calls from its answer memo).
    """
    graph, schema = get_dataset(dataset, scale)
    engine = connect((graph, schema))
    sx = engine.schema_index
    rows = []
    for n in node_counts:
        pool = get_workload(dataset, scale, count=150, seed=seed + n,
                            num_nodes=n)
        sub_queries = _bounded_queries(pool, schema, SUBGRAPH,
                                       queries_per_point)
        sim_queries = _bounded_queries(pool, schema, SIMULATION,
                                       queries_per_point)
        row = {"num_nodes": n}
        row["bvf2"] = _mean_or_none(
            [timed(engine.query, q, SUBGRAPH, refresh=True)[0]
             for q in sub_queries])
        row["bsim"] = _mean_or_none(
            [timed(engine.query, q, SIMULATION, refresh=True)[0]
             for q in sim_queries])
        row["vf2"] = _mean_or_none(
            [timed(find_matches, q, engine.graph, timeout=timeout)[0]
             for q in sub_queries])
        row["optvf2"] = _mean_or_none(
            [timed(opt_vf2, q, sx, timeout=timeout)[0] for q in sub_queries])
        row["gsim"] = _mean_or_none(
            [timed(simulate, q, engine.graph, timeout=timeout)[0]
             for q in sim_queries])
        row["optgsim"] = _mean_or_none(
            [timed(opt_gsim, q, sx, timeout=timeout)[0] for q in sim_queries])
        rows.append(row)
    return rows


# ------------------------------------------------------------ Fig. 5(c,g,k)
def fig5_varying_a(dataset: str, constraint_counts=(12, 14, 16, 18, 20),
                   scale: float = 0.05, queries_per_point: int = 3,
                   seed: int = 42) -> list[dict]:
    """bVF2/bSim time vs ‖A‖: more constraints -> better plans.

    The paper hand-picks 12-20 constraints relevant to its workload; here
    the full schema is ordered by how often the workload's full-schema
    plans use each constraint (most-used first, original order as
    tie-break) and each point takes the first ‖A‖ of them. Queries are
    chosen to be bounded under the largest point; rows whose smaller
    schema does not (yet) bound a query report None for it — the "more
    access constraints help" story.
    """
    from repro.constraints.schema import AccessSchema

    graph, full_schema = get_dataset(dataset, scale)
    full_engine = get_engine(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    sub_queries = _bounded_queries(pool, full_schema, SUBGRAPH,
                                   queries_per_point)
    sim_queries = _bounded_queries(pool, full_schema, SIMULATION,
                                   queries_per_point)

    # Put the constraints those queries' plans actually use first —
    # interleaving the two semantics so both get early slots — then the
    # rest of the schema in its original order.
    ordered: list = []
    seen: set = set()

    def enqueue(plan) -> None:
        for constraint in sorted(plan.constraints_used(), key=str):
            if constraint not in seen:
                seen.add(constraint)
                ordered.append(constraint)

    for i in range(max(len(sub_queries), len(sim_queries))):
        if i < len(sub_queries):
            enqueue(full_engine.prepare(sub_queries[i], SUBGRAPH).plan)
        if i < len(sim_queries):
            enqueue(full_engine.prepare(sim_queries[i], SIMULATION).plan)
    for constraint in full_schema:
        if constraint not in seen:
            seen.add(constraint)
            ordered.append(constraint)
    rows = []
    for count in constraint_counts:
        schema = AccessSchema(ordered[:count])
        engine = connect((graph, schema))
        row = {"num_constraints": count}
        for key, queries, semantics in (("bvf2", sub_queries, SUBGRAPH),
                                        ("bsim", sim_queries, SIMULATION)):
            times = []
            for query in queries:
                if not is_effectively_bounded(query, schema,
                                              semantics).bounded:
                    continue
                prepared = engine.prepare(query, semantics)
                times.append(timed(prepared.run, refresh=True)[0])
            row[key] = _mean_or_none(times)
        rows.append(row)
    return rows


# ------------------------------------------------------------ Fig. 5(d,h,l)
def fig5_index_size(dataset: str, node_counts=(3, 4, 5, 6, 7),
                    scale: float = 0.05, queries_per_point: int = 3,
                    seed: int = 42) -> list[dict]:
    """|accessed|/|G| and |index_Q|/|G| per query size, both semantics.

    Paper: accessed <= 0.13 % of |G|; used indices < 8 % of |G|.
    """
    graph, schema = get_dataset(dataset, scale)
    engine = get_engine(dataset, scale)
    sx = engine.schema_index
    rows = []
    for n in node_counts:
        pool = get_workload(dataset, scale, count=150, seed=seed + n,
                            num_nodes=n)
        row = {"num_nodes": n}
        for semantics, key in ((SUBGRAPH, "bvf2"), (SIMULATION, "bsim")):
            queries = _bounded_queries(pool, schema, semantics,
                                       queries_per_point)
            accessed, index_sizes = [], []
            for query in queries:
                prepared = engine.prepare(query, semantics)
                stats = AccessStats()
                prepared.run(stats=stats)
                accessed.append(stats.total_accessed / graph.size)
                index_sizes.append(
                    sx.size_for(prepared.plan.constraints_used()) / graph.size)
            row[f"{key}_accessed"] = _mean_or_none(accessed)
            row[f"{key}_index"] = _mean_or_none(index_sizes)
        rows.append(row)
    return rows


# -------------------------------------------------------------- Fig. 6(a,b)
def fig6_instance_bounded(dataset: str, fractions=(0.6, 0.7, 0.8, 0.9, 0.95, 1.0),
                          scale: float = 0.05, count: int = 30,
                          semantics: str = SUBGRAPH,
                          seed: int = 42) -> list[dict]:
    """Minimum M making x% of the workload instance-bounded."""
    graph, schema = get_dataset(dataset, scale)
    queries = list(get_workload(dataset, scale, count=count, seed=seed))
    rows = []
    for fraction in fractions:
        m, _ = min_m_for_fraction(queries, schema, graph, fraction,
                                  semantics=semantics)
        rows.append({"fraction_pct": 100 * fraction, "min_m": m,
                     "m_over_g": (m / graph.size) if m is not None else None})
    return rows


# ----------------------------------------------------------- warm start
def warm_start(dataset: str = "imdb", scale: float = 0.05,
               distinct: int = 8, opens: int = 3,
               artifact: str | None = None, seed: int = 42) -> list[dict]:
    """Cold build vs warm artifact open vs prepared-plan reuse.

    Measures the three lifecycle costs a persistent artifact amortizes:

    * ``cold_build`` — ``connect((graph, schema))`` (snapshot + index
      build) plus EBChk/QPlan for ``distinct`` bounded patterns — what
      every process paid before artifacts existed;
    * ``save`` — one-time cost of writing the artifact;
    * ``warm_open`` — ``connect(artifact)`` (best of ``opens`` runs:
      checksum + zero-copy buffer adoption, lazy index decode);
    * ``prepared_reuse`` — re-preparing the same patterns on the loaded
      engine, which must be pure plan-cache hits.

    ``artifact`` persists the snapshot at that path (reused by CI to
    chain into CLI runs); by default a temporary directory is used.
    Rows are JSON-serializable (``benchmarks/bench_warm_start.py``).
    """
    import tempfile
    from contextlib import ExitStack

    graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    queries = _bounded_queries(pool, schema, SUBGRAPH, distinct)

    cold_open_s = None
    for _ in range(opens):
        start = time.perf_counter()
        engine = connect((graph, schema))
        elapsed = time.perf_counter() - start
        cold_open_s = elapsed if cold_open_s is None else min(cold_open_s,
                                                              elapsed)
    start = time.perf_counter()
    for query in queries:
        engine.prepare(query)
    cold_prepare_s = time.perf_counter() - start

    with ExitStack() as stack:
        if artifact is None:
            artifact = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-artifact-"))
        start = time.perf_counter()
        manifest = engine.save(artifact)
        save_s = time.perf_counter() - start
        artifact_bytes = sum(meta["bytes"]
                             for meta in manifest["files"].values())

        warm_open_s = None
        for _ in range(opens):
            start = time.perf_counter()
            warm = connect(artifact)
            elapsed = time.perf_counter() - start
            warm_open_s = elapsed if warm_open_s is None else min(warm_open_s,
                                                                  elapsed)
        start = time.perf_counter()
        for query in queries:
            warm.prepare(query)
        warm_prepare_s = time.perf_counter() - start
        plan_hits = warm.stats.plan_cache_hits

    return [
        {"mode": "cold_build", "seconds": cold_open_s,
         "prepare_seconds": cold_prepare_s, "queries": len(queries),
         "open_speedup": 1.0},
        {"mode": "save", "seconds": save_s, "artifact_bytes": artifact_bytes,
         "cached_plans": manifest["plans"]["entries"]},
        {"mode": "warm_open", "seconds": warm_open_s,
         "open_speedup": cold_open_s / warm_open_s if warm_open_s else None},
        {"mode": "prepared_reuse", "seconds": warm_prepare_s,
         "queries": len(queries), "plan_cache_hits": plan_hits,
         "prepare_speedup": (cold_prepare_s / warm_prepare_s
                             if warm_prepare_s else None)},
    ]


# --------------------------------------------------------- shard scaling
def shard_scaling(dataset: str = "imdb", scale: float = 0.05,
                  shards: int = 4, worker_counts=(0, 1, 2, 4),
                  distinct: int = 16, batches: int = 20,
                  artifact: str | None = None, seed: int = 42) -> list[dict]:
    """Scatter-gather shard execution vs the sequential engine.

    Compiles the dataset into a sharded artifact (``shards`` halo
    shards), opens it at each worker-process count in ``worker_counts``
    (0 = shards held in-process), and measures prepared-query throughput
    by pushing ``batches`` rounds of a ``distinct``-pattern workload
    through ``query_batch`` with an explicit stats recorder (which
    forces real executions, not answer-memo hits). The sequential row is
    the same loop on an unsharded engine over the same graph.

    Every sharded row also re-evaluates the whole workload under *both*
    semantics and compares the canonical answer form
    (:func:`repro.matching.bounded.canonical_answer`) against the
    sequential engine — ``answers_identical`` must be True at every
    shard/worker count, which is the ``Q(G_Q) = Q(G)``-preserving claim
    of the partition.

    ``speedup_vs_1worker`` is the scatter-gather scaling signal (worker
    parallelism with IPC held constant); ``cpu_count`` is recorded
    because that speedup is physically capped by ``min(workers,
    cpu_count)`` — single-core machines can only show overhead.

    With ``artifact`` given, the sharded artifact is written there (and
    reused when it already exists — the CI chaining path); by default a
    temporary directory is used.
    """
    import os
    import tempfile
    from contextlib import ExitStack
    from pathlib import Path

    from repro.accounting import AccessStats
    from repro.matching.bounded import canonical_answer

    graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    workload = _bounded_queries(pool, schema, SUBGRAPH, distinct)
    sim_queries = _bounded_queries(pool, schema, SIMULATION, distinct)
    if len(workload) < 2:
        raise BenchmarkError(
            f"workload for {dataset}@{scale} has too few bounded queries "
            f"({len(workload)}) for the shard-scaling experiment")

    sequential = connect((graph, schema))
    reference = {
        (i, semantics): canonical_answer(
            semantics, sequential.query(q, semantics, refresh=True).answer)
        for semantics, queries in ((SUBGRAPH, workload),
                                   (SIMULATION, sim_queries))
        for i, q in enumerate(queries)
    }

    def throughput(engine) -> tuple[int, float]:
        for query in workload:
            engine.prepare(query, SUBGRAPH)
        served = 0
        start = time.perf_counter()
        for _ in range(batches):
            runs = engine.query_batch(workload, SUBGRAPH,
                                      stats=AccessStats())
            served += len(runs)
        return served, time.perf_counter() - start

    def answers_identical(engine) -> bool:
        for semantics, queries in ((SUBGRAPH, workload),
                                   (SIMULATION, sim_queries)):
            for i, q in enumerate(queries):
                run = engine.query(q, semantics, stats=AccessStats())
                if canonical_answer(semantics,
                                    run.answer) != reference[(i, semantics)]:
                    return False
        return True

    cpu_count = os.cpu_count() or 1
    served, seconds = throughput(sequential)
    sequential_qps = served / seconds
    rows = [{"mode": "sequential", "requests": served, "seconds": seconds,
             "qps": sequential_qps, "cpu_count": cpu_count}]

    with ExitStack() as stack:
        if artifact is None:
            artifact = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-shards-"))
        artifact_path = Path(artifact)
        if not (artifact_path / "manifest.json").is_file():
            sequential.save(artifact_path, shards=shards)
        else:
            from repro.engine.persist import artifact_layout
            if artifact_layout(artifact_path) != "sharded":
                raise BenchmarkError(
                    f"artifact at {artifact_path} exists but is not "
                    f"sharded; point --artifact at a fresh path or a "
                    f"`repro compile --shards` output")
        one_worker_qps = None
        for workers in worker_counts:
            with connect(artifact_path, workers=workers) as engine:
                # workers=0 now serves the merged sequential view
                # (strategy="auto"), so that row measures the 1-CPU fix
                # rather than in-process scatter overhead.
                strategy = engine.executor_strategy
                identical = answers_identical(engine)
                served, seconds = throughput(engine)
            qps = served / seconds
            if workers == 1:
                one_worker_qps = qps
            rows.append({
                "mode": "sharded", "shards": shards, "workers": workers,
                "strategy": strategy,
                "requests": served, "seconds": seconds, "qps": qps,
                "answers_identical": identical,
                "speedup_vs_sequential": qps / sequential_qps,
                "speedup_vs_1worker": (qps / one_worker_qps
                                       if one_worker_qps else None),
                "cpu_count": cpu_count,
            })
    return rows


# ------------------------------------------------------------ remote fleet
def remote_fleet(dataset: str = "imdb", scale: float = 0.05,
                 shards: int = 4, distinct: int = 8, batches: int = 5,
                 seed: int = 42) -> list[dict]:
    """The remote shard backend vs inline shards, on a skewed partition.

    Compiles the dataset into a *label-partitioned* sharded artifact
    (every label's nodes concentrated on one shard — the cover owner
    routing rewards), starts one in-process
    :class:`~repro.server.shardserver.ShardServer` per shard, and serves
    the same workload four ways:

    * ``inline`` — shards in-process (the reference for identity);
    * ``remote_routed`` — the TCP fleet with owner routing on and the
      negotiated (binary, when numpy is present) wire codec;
    * ``remote_json`` — owner routing on, codec forced to JSON-lines
      (isolates the codec's share of the wire win);
    * ``remote_broadcast`` — owner routing off *and* JSON-lines (every
      task to every shard in the compatibility codec — the full
      pre-optimization wire cost).

    The headline metrics are ``scatter_reduction`` (broadcast messages /
    routed messages) and ``wire_bytes_reduction`` (broadcast-JSON bytes
    on the wire / routed-binary bytes, reported on the
    ``remote_routed`` row). Both are deterministic counts, not
    wall-clock ratios — which is what ``benchmarks/check_regression.py``
    gates on (absolute remote qps over loopback says little about a
    real network). Identity (answers, ``G_Q``, ``AccessStats``) against
    the inline backend is asserted per row via the canonical answer
    form.
    """
    import os
    import tempfile
    from contextlib import ExitStack
    from pathlib import Path

    from repro.matching.bounded import canonical_answer

    graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    workload = _bounded_queries(pool, schema, SUBGRAPH, distinct)
    sim_queries = _bounded_queries(pool, schema, SIMULATION, distinct)
    if len(workload) < 2:
        raise BenchmarkError(
            f"workload for {dataset}@{scale} has too few bounded queries "
            f"({len(workload)}) for the remote-fleet experiment")

    # The skewed cover: all nodes of a label land on one shard, labels
    # round-robin over shards. Owner routing then sends each fetch/edge
    # task to exactly one shard instead of all of them.
    labels = sorted({graph.label_of(v) for v in graph.nodes()})
    shard_of_label = {label: i % shards for i, label in enumerate(labels)}
    assignment = {v: shard_of_label[graph.label_of(v)]
                  for v in graph.nodes()}

    compiler = connect((graph, schema))
    for query in workload:
        compiler.prepare(query, SUBGRAPH)
    for query in sim_queries:
        compiler.prepare(query, SIMULATION)

    def evaluate(engine) -> tuple[dict, int, float]:
        """(answers by key, served, seconds) over the full workload."""
        answers = {}
        served = 0
        start = time.perf_counter()
        for _ in range(batches):
            for semantics, queries in ((SUBGRAPH, workload),
                                       (SIMULATION, sim_queries)):
                runs = engine.query_batch(queries, semantics,
                                          stats=AccessStats())
                served += len(runs)
                answers.update({
                    (i, semantics): canonical_answer(semantics, run.answer)
                    for i, run in enumerate(runs)})
        return answers, served, time.perf_counter() - start

    rows = []
    with ExitStack() as stack:
        artifact = Path(stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-remote-")))
        compiler.save(artifact, shards=shards,
                      shard_assignment=assignment)

        from repro.server.shardserver import ShardServer

        servers = [ShardServer(artifact / f"shard-{i:04d}").start()
                   for i in range(shards)]
        stack.callback(lambda: [server.stop() for server in servers])
        addrs = [server.address for server in servers]

        reference = None
        cpu_count = os.cpu_count() or 1
        for mode, opts in (
                ("inline", {"strategy": "scatter"}),
                ("remote_routed", {"backend": "remote",
                                   "shard_addrs": addrs}),
                ("remote_json", {"backend": "remote",
                                 "shard_addrs": addrs,
                                 "wire_format": "json"}),
                ("remote_broadcast", {"backend": "remote",
                                      "shard_addrs": addrs,
                                      "owner_routing": False,
                                      "wire_format": "json"})):
            with connect(artifact, **opts) as engine:
                answers, served, seconds = evaluate(engine)
                backend = engine._shards
                if reference is None:
                    reference = answers
                routed = backend.scatter_messages
                broadcast = backend.scatter_messages_broadcast
                row = {
                    "mode": mode, "shards": shards,
                    "requests": served, "seconds": seconds,
                    "qps": served / seconds if seconds else 0.0,
                    "answers_identical": answers == reference,
                    "scatter_rounds": backend.scatter_rounds,
                    "scatter_messages": routed,
                    "scatter_messages_broadcast": broadcast,
                    "scatter_reduction": (broadcast / routed
                                          if routed else None),
                    "cpu_count": cpu_count,
                }
                if mode != "inline":
                    wire = backend.wire_stats()
                    row["wire_codec"] = backend.wire_codec
                    row["wire_bytes_sent"] = sum(
                        s["bytes_sent"] for s in wire)
                    row["wire_bytes_received"] = sum(
                        s["bytes_received"] for s in wire)
                    row["wire_bytes_total"] = (row["wire_bytes_sent"]
                                               + row["wire_bytes_received"])
                    row["encode_ms"] = round(
                        sum(s["encode_ms"] for s in wire), 3)
                rows.append(row)
    # The headline wire win: broadcast-JSON bytes vs owner-routed bytes
    # in the negotiated codec, for the identical workload.
    by_mode = {row["mode"]: row for row in rows}
    routed_row = by_mode.get("remote_routed")
    broadcast_row = by_mode.get("remote_broadcast")
    if routed_row and broadcast_row and routed_row.get("wire_bytes_total"):
        routed_row["wire_bytes_reduction"] = (
            broadcast_row["wire_bytes_total"]
            / routed_row["wire_bytes_total"])
    return rows


# ------------------------------------------------------------ skewed fleet
def remote_skewed(dataset: str = "imdb", scale: float = 0.05,
                  shards: int = 4, distinct: int = 32,
                  delay_ms: float = 40.0,
                  slow_labels: tuple = ("award", "studio"),
                  repeats: int = 3, seed: int = 42) -> list[dict]:
    """Pipelined vs barrier scatter against a skewed fleet (one shard
    with injected latency).

    Compiles a label-partitioned cover that pins ``slow_labels`` to
    shard 0, starts the fleet with ``delay_ms`` of injected scatter
    latency on that shard only, and serves the identical workload in
    three modes:

    * ``inline`` — shards in-process (the identity reference);
    * ``remote_barrier`` — the TCP fleet under the lock-step wave
      barrier (``scatter_pipeline=False``): every execution in a batch
      advances only when the whole round has returned, so each wave
      that touches shard 0 costs the full injected delay — for every
      query in the batch, whether or not its own round needed shard 0;
    * ``remote_pipelined`` — the per-shard-progress driver (default):
      an execution pays shard 0's latency only for its *own* fetches
      there, identical cells from different executions travel once
      (cross-execution dedup), and multiple rounds ride one connection
      (request-id correlation + server read-ahead).

    The headline metric is ``pipelined_speedup`` (barrier wall-clock /
    pipelined wall-clock, best-of-``repeats`` after a warm-up pass) on
    the ``remote_pipelined`` row — the acceptance bound is >=2x on this
    4-shard skewed cover. The row also carries the overlap evidence:
    ``rounds_overlapped`` (rounds submitted while earlier ones were in
    flight), ``scatter_dedup_hits``, the per-connection
    ``inflight_peak`` wire stat, and the slow shard's own
    ``pipeline_depth_peak``. Answers must stay byte-identical to inline
    in every mode.
    """
    import tempfile
    from contextlib import ExitStack
    from pathlib import Path

    from repro.matching.bounded import canonical_answer

    graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=400, seed=seed)
    workload = _bounded_queries(pool, schema, SUBGRAPH, distinct)
    sim_queries = _bounded_queries(pool, schema, SIMULATION, distinct)
    if len(workload) < 2:
        raise BenchmarkError(
            f"workload for {dataset}@{scale} has too few bounded queries "
            f"({len(workload)}) for the skewed-fleet experiment")

    # The skewed cover: the slow labels' nodes all live on shard 0, the
    # rest round-robin over the remaining shards. Owner routing then
    # makes shard 0 a genuine straggler for exactly the rounds that
    # need its labels — the stagger the pipelined driver exploits.
    labels = sorted({graph.label_of(v) for v in graph.nodes()})
    slow = [label for label in labels if label in set(slow_labels)] \
        or labels[:1]
    fast = [label for label in labels if label not in slow]
    shard_of_label = {label: 0 for label in slow}
    for i, label in enumerate(fast):
        shard_of_label[label] = 1 + i % (shards - 1)
    assignment = {v: shard_of_label[graph.label_of(v)]
                  for v in graph.nodes()}

    compiler = connect((graph, schema))
    for query in workload:
        compiler.prepare(query, SUBGRAPH)
    for query in sim_queries:
        compiler.prepare(query, SIMULATION)

    def evaluate(engine) -> tuple[dict, float]:
        """(answers by key, best-of-repeats seconds) over the workload."""
        answers = {}
        best = None
        for attempt in range(repeats + 1):  # first pass warms up
            start = time.perf_counter()
            for semantics, queries in ((SUBGRAPH, workload),
                                       (SIMULATION, sim_queries)):
                runs = engine.query_batch(queries, semantics,
                                          stats=AccessStats())
                answers.update({
                    (i, semantics): canonical_answer(semantics, run.answer)
                    for i, run in enumerate(runs)})
            seconds = time.perf_counter() - start
            if attempt and (best is None or seconds < best):
                best = seconds
        return answers, best

    rows = []
    with ExitStack() as stack:
        artifact = Path(stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-skewed-")))
        compiler.save(artifact, shards=shards,
                      shard_assignment=assignment)

        from repro.server.shardserver import ShardServer

        servers = [ShardServer(artifact / f"shard-{i:04d}",
                               delay_ms=delay_ms if i == 0 else 0.0).start()
                   for i in range(shards)]
        stack.callback(lambda: [server.stop() for server in servers])
        addrs = [server.address for server in servers]

        reference = None
        barrier_seconds = None
        for mode, opts in (
                ("inline", {"strategy": "scatter"}),
                ("remote_barrier", {"backend": "remote",
                                    "shard_addrs": addrs,
                                    "scatter_pipeline": False}),
                ("remote_pipelined", {"backend": "remote",
                                      "shard_addrs": addrs})):
            with connect(artifact, **opts) as engine:
                answers, seconds = evaluate(engine)
                backend = engine._shards
                if reference is None:
                    reference = answers
                row = {
                    "mode": mode, "shards": shards,
                    "delay_ms": delay_ms if mode != "inline" else 0.0,
                    "seconds": seconds,
                    "requests": (repeats + 1) * (len(workload)
                                                 + len(sim_queries)),
                    "answers_identical": answers == reference,
                    "scatter_rounds": backend.scatter_rounds,
                    "rounds_overlapped": backend.rounds_overlapped,
                    "scatter_dedup_hits": backend.scatter_dedup_hits,
                }
                if mode != "inline":
                    row["inflight_peak"] = max(
                        s["inflight_peak"] for s in backend.wire_stats())
                    row["slow_shard_depth_peak"] = \
                        servers[0].pipeline_depth_peak
                if mode == "remote_barrier":
                    barrier_seconds = seconds
                if mode == "remote_pipelined" and barrier_seconds:
                    row["pipelined_speedup"] = barrier_seconds / seconds
                rows.append(row)
    return rows


# ------------------------------------------------------------ serve load
def serve_load(dataset: str = "imdb", scale: float = 0.05,
               distinct: int = 8, requests_per_client: int = 50,
               clients: int = 8, workers: int = 4,
               semantics: str = SUBGRAPH, artifact: str | None = None,
               seed: int = 42) -> list[dict]:
    """Concurrent query service vs single-threaded prepared serving.

    Two ways of answering the same workload (``clients *
    requests_per_client`` requests round-robin over ``distinct`` bounded
    patterns):

    * ``prepared_single`` — one warm engine session answering requests
      one at a time (``refresh=True``: every request pays a real
      execution — the strongest serial baseline, cf.
      :func:`engine_throughput`'s ``prepared`` mode);
    * ``serve_concurrent`` — a :class:`~repro.server.QueryService`
      behind the asyncio TCP front-end, ``clients`` synchronous
      connections hammering it concurrently; micro-batching funnels
      duplicates through ``query_batch`` and repeats hit the answer
      memo, which is exactly the amortization the service exists for.

    The service's admission budget is set to the workload's own maximum
    plan bound, and one strictly-more-expensive *probe* pattern is sent
    from each client; the row records that every probe was rejected with
    the typed :class:`~repro.errors.AdmissionRejected` (never silently
    executed). Latency columns use the shared percentile helper.

    With ``artifact`` given, the serving engine warm-starts from it
    (``repro compile`` output for the same dataset and scale).
    """
    from repro.errors import AdmissionRejected
    from repro.pattern.dsl import format_pattern
    from repro.server import QueryService, ServeClient, ServerThread
    from repro.server.client import run_load
    from repro.bench.reporting import boundedness_summary, latency_summary

    graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    bounded = _bounded_queries(pool, schema, semantics, limit=4 * distinct)

    def open_engine() -> QueryEngine:
        if artifact is not None:
            return connect(artifact)
        return connect((graph, schema))

    # Plan bounds are known before execution; the served workload is the
    # most expensive `distinct` patterns that still fit under the budget
    # (real execution cost per request), the budget is their maximum
    # bound, and the over-budget probe is the strictly-more-expensive
    # pattern at the top of the pool.
    cost_engine = open_engine()
    costed = sorted(
        ((cost_engine.prepare(q, semantics).worst_case_total_accessed, i, q)
         for i, q in enumerate(bounded)),
        key=lambda item: item[:2])
    max_cost = costed[-1][0]
    eligible = [(cost, q) for cost, _, q in costed if cost < max_cost]
    if len(eligible) < 2:
        raise BenchmarkError(
            f"workload for {dataset}@{scale} has no plan-bound variety; "
            f"cannot stage an over-budget rejection")
    workload = [q for _, q in eligible[-distinct:]]
    budget = max(cost for cost, _ in eligible[-distinct:])
    probe = costed[-1][2]

    total_requests = clients * requests_per_client
    rows = []

    baseline = open_engine()
    for query in workload:
        baseline.prepare(query, semantics)
    latencies = []
    start = time.perf_counter()
    for i in range(total_requests):
        t0 = time.perf_counter()
        baseline.query(workload[i % len(workload)], semantics, refresh=True)
        latencies.append(time.perf_counter() - t0)
    baseline_seconds = time.perf_counter() - start
    baseline_qps = total_requests / baseline_seconds
    rows.append({"mode": "prepared_single", "requests": total_requests,
                 "seconds": baseline_seconds, "qps": baseline_qps,
                 **latency_summary(latencies)})

    service = QueryService(open_engine(), max_cost=budget, workers=workers)
    texts = [format_pattern(q) for q in workload]
    probe_text = format_pattern(probe)
    with ServerThread(service) as handle:
        report = run_load(handle.host, handle.port, texts,
                          requests=requests_per_client, clients=clients,
                          semantics=semantics)
        rejections, rejection_error = 0, None
        with ServeClient(handle.host, handle.port) as client:
            for _ in range(clients):
                try:
                    client.query(probe_text, semantics)
                except AdmissionRejected as exc:
                    rejections += 1
                    rejection_error = type(exc).__name__
            snapshot = client.metrics()
    rows.append({"mode": "serve_concurrent", "clients": clients,
                 "workers": workers, "requests": report["requests"],
                 "seconds": report["seconds"], "qps": report["qps"],
                 **latency_summary(report["latencies_s"]),
                 "speedup_vs_prepared": report["qps"] / baseline_qps,
                 "admission_budget": budget,
                 "rejected_over_budget": rejections,
                 "rejection_error": rejection_error,
                 "mean_batch_size": snapshot["mean_batch_size"],
                 "plan_cache_hit_rate": snapshot["plan_cache"]["hit_rate"],
                 **boundedness_summary(snapshot)})
    return rows


# -------------------------------------------------- observability overhead
def obs_overhead(dataset: str = "imdb", scale: float = 0.05,
                 distinct: int = 8, requests: int = 400, rounds: int = 3,
                 semantics: str = SUBGRAPH, artifact: str | None = None,
                 seed: int = 42) -> list[dict]:
    """The tracing overhead contract, measured: prepared-serving qps
    with instrumentation stubbed out entirely (``no_obs``), with the
    shipped instrumentation but no recorder (``tracing_disabled`` — the
    default every session runs), and with a recorder plus an active
    root span per request (``tracing_enabled``).

    The committed gate is ``disabled_overhead_ratio`` =
    disabled qps / no-obs qps: the disabled path costs one ContextVar
    read per instrumentation point and must stay within a few percent
    of uninstrumented code (``benchmarks/bench_obs.py`` asserts
    >= 0.95 in-script; CI's floor lives in ``baselines.json``).
    ``enabled_overhead_ratio`` is informational — tracing every request
    is a debugging posture, not the default.

    Each mode runs ``rounds`` loops of ``requests`` prepared queries
    (``refresh=True``: every request pays a real execution) and keeps
    the best loop, which suppresses scheduler noise that would swamp a
    single-digit-percent comparison.
    """
    from repro.core import executor as executor_module
    from repro.engine import engine as engine_module
    from repro.obs.trace import TraceRecorder, activate

    graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    bounded = _bounded_queries(pool, schema, semantics, limit=distinct)
    if not bounded:
        raise BenchmarkError(f"no bounded queries for {dataset}@{scale}")

    engine = connect(artifact) if artifact is not None \
        else connect((graph, schema))
    for query in bounded:
        engine.prepare(query, semantics)

    def measure(run_query) -> float:
        best_qps = 0.0
        for _ in range(rounds):
            start = time.perf_counter()
            for i in range(requests):
                run_query(bounded[i % len(bounded)])
            elapsed = time.perf_counter() - start
            best_qps = max(best_qps, requests / elapsed)
        return best_qps

    def plain(query) -> None:
        engine.query(query, semantics, refresh=True)

    # no_obs: the instrumented modules' child_span swapped for a null
    # context manager with no ContextVar read — as close to deleting
    # the instrumentation as one process gets.
    class _NullChildSpan:
        def __init__(self, name, **attrs):
            pass

        def __enter__(self):
            return None

        def __exit__(self, *exc_info):
            return None

    saved = (engine_module.child_span, executor_module.child_span)
    engine_module.child_span = _NullChildSpan
    executor_module.child_span = _NullChildSpan
    try:
        no_obs_qps = measure(plain)
    finally:
        engine_module.child_span, executor_module.child_span = saved

    disabled_qps = measure(plain)

    recorder = TraceRecorder(max_traces=8)

    def traced(query) -> None:
        root = recorder.trace("bench")
        with activate(root):
            engine.query(query, semantics, refresh=True)
        root.trace.finish()

    enabled_qps = measure(traced)
    spans_per_query = len(recorder.recent()[-1].spans)

    common = {"requests": requests, "rounds": rounds,
              "distinct": len(bounded)}
    return [
        {"mode": "no_obs", "qps": no_obs_qps, **common},
        {"mode": "tracing_disabled", "qps": disabled_qps,
         "disabled_overhead_ratio": disabled_qps / no_obs_qps, **common},
        {"mode": "tracing_enabled", "qps": enabled_qps,
         "enabled_overhead_ratio": enabled_qps / no_obs_qps,
         "spans_per_query": spans_per_query,
         "traces_finished": recorder.traces_finished, **common},
    ]


# -------------------------------------------------- extension rescue
def extension_rescue(dataset: str = "imdb", scale: float = 0.05,
                     distinct: int = 8, repeats: int = 20,
                     m_values=None, semantics: str = SUBGRAPH,
                     seed: int = 42) -> list[dict]:
    """Online M-bounded extension: build latency and rescued-query
    throughput vs the extension budget ``M`` (the serving-side
    counterpart of Fig. 6).

    The base schema is the dataset's type (1) constraints only — the
    global label counts a deployment would start from — so a real slice
    of the workload is rejected as unbounded. For each budget ``M``
    (default: the smallest workable M from ``find_min_m``, then 2x and
    4x it) a fresh engine plans and applies the extension
    (:func:`repro.engine.extension.plan_extension` +
    ``QueryEngine.extend_schema``) and the row records:

    * ``build_ms`` — plan + incremental index build + catalog publish
      (the off-path cost one server-side rescue pays);
    * ``rescued_qps`` — prepared throughput of the rescued queries
      afterwards (``refresh=True``: every request pays execution);
    * ``bounded_fraction_before`` / ``after`` — the workload fraction
      with a bounded plan at generation 0 vs after the extension
      (``after`` must be 1.0 at every workable M — the committed gate).
    """
    from repro.constraints.schema import AccessSchema
    from repro.engine import plan_extension

    graph, full_schema = get_dataset(dataset, scale)
    base_constraints = [c for c in full_schema if c.is_type1]
    pool = get_workload(dataset, scale, count=200, seed=seed)

    base_for_checks = AccessSchema(base_constraints)
    unbounded = [q for q in pool
                 if not is_effectively_bounded(q, base_for_checks,
                                               semantics).bounded]
    unbounded = unbounded[:distinct]
    if len(unbounded) < 2:
        raise BenchmarkError(
            f"workload for {dataset}@{scale} yields too few unbounded "
            f"queries ({len(unbounded)}) under the type (1)-only schema")
    sample = pool[:max(4 * distinct, len(unbounded))]
    before_fraction = sum(
        is_effectively_bounded(q, base_for_checks, semantics).bounded
        for q in sample) / len(sample)

    if m_values is None:
        probe = connect((graph, AccessSchema(base_constraints)))
        m_min = plan_extension(probe, unbounded, semantics=semantics).m
        m_values = sorted({m_min, 2 * m_min, 4 * m_min})

    rows = []
    for m in m_values:
        # A fresh engine (and schema copy) per budget: extension grows
        # the schema in place, and each row must start from generation 0.
        engine = connect((graph, AccessSchema(base_constraints)))
        start = time.perf_counter()
        plan = plan_extension(engine, unbounded, m=m, semantics=semantics)
        report = engine.extend_schema(
            plan.added, provenance={"origin": "bench", "m": m})
        build_seconds = time.perf_counter() - start
        for query in unbounded:
            engine.prepare(query, semantics)
        served = 0
        run_start = time.perf_counter()
        for _ in range(repeats):
            for query in unbounded:
                engine.query(query, semantics, refresh=True)
                served += 1
        run_seconds = time.perf_counter() - run_start
        after_schema = engine.schema
        after_fraction = sum(
            is_effectively_bounded(q, after_schema, semantics).bounded
            for q in unbounded) / len(unbounded)
        rows.append({
            "mode": "extension", "m": m,
            "queries": len(unbounded),
            "added_constraints": len(report.added),
            "added_cells": report.added_cells,
            "schema_version": report.version,
            "build_ms": build_seconds * 1000.0,
            "requests": served,
            "seconds": run_seconds,
            "rescued_qps": served / run_seconds,
            "bounded_fraction_before": before_fraction,
            "bounded_fraction_after": after_fraction,
        })
    return rows


# ------------------------------------------------------- engine throughput
def engine_throughput(dataset: str = "imdb", scale: float = 0.05,
                      distinct: int = 10, repeats: int = 5,
                      semantics: str = SUBGRAPH, seed: int = 42,
                      artifact: str | None = None) -> list[dict]:
    """Queries/sec for the three ways of serving a repeated workload.

    The workload is ``distinct`` effectively bounded patterns, each asked
    ``repeats`` times (interleaved), mirroring a query-serving deployment
    where a handful of query shapes dominate traffic:

    * ``cold`` — the seed repo's per-call pattern: a fresh engine per
      query, paying snapshot + index build + EBChk + QPlan every time
      (measured over one round of the distinct patterns);
    * ``prepared`` — one warm engine session with each shape prepared
      ``warm=True`` (plan compiled *and* kernel caches pre-filled);
      every timed call hits the plan cache and executes at steady-state
      latency — the amortized serving rate;
    * ``batched`` — ``query_batch`` on a fresh session: plans compiled
      once per pattern *and* each distinct query executed once per batch.

    With ``artifact`` given (a directory compiled from the **same**
    dataset and scale, e.g. by ``repro compile``), the prepared and
    batched sessions warm-start from it via ``open_path`` instead of
    building; the cold row still builds from scratch, so the comparison
    shows what the on-disk snapshot buys a serving process.

    Rows are JSON-serializable so benchmark runs leave a comparable
    perf trajectory (see ``benchmarks/bench_engine_throughput.py``).
    """
    graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    queries = _bounded_queries(pool, schema, semantics, distinct)
    workload = list(queries) * repeats

    def open_serving_engine() -> QueryEngine:
        if artifact is not None:
            engine = connect(artifact)
            if (engine.graph.num_nodes != graph.num_nodes
                    or engine.graph.num_edges != graph.num_edges):
                raise BenchmarkError(
                    f"artifact {artifact} ({engine.graph.num_nodes} nodes, "
                    f"{engine.graph.num_edges} edges) does not match "
                    f"{dataset}@{scale} ({graph.num_nodes} nodes, "
                    f"{graph.num_edges} edges); compile it from the same "
                    f"dataset and scale")
            return engine
        return connect((graph, schema))

    rows = []

    start = time.perf_counter()
    for query in queries:
        cold_engine = connect((graph, schema))
        cold_engine.query(query, semantics)
    cold_seconds = time.perf_counter() - start
    rows.append({"mode": "cold", "queries": len(queries),
                 "seconds": cold_seconds,
                 "qps": len(queries) / cold_seconds,
                 "plan_cache_hits": 0})

    warm_engine = open_serving_engine()
    for query in queries:
        warm_engine.prepare(query, semantics, warm=True)
    start = time.perf_counter()
    for query in workload:
        warm_engine.query(query, semantics, refresh=True)
    prepared_seconds = time.perf_counter() - start
    rows.append({"mode": "prepared", "queries": len(workload),
                 "seconds": prepared_seconds,
                 "qps": len(workload) / prepared_seconds,
                 "plan_cache_hits": warm_engine.stats.plan_cache_hits})

    batch_engine = open_serving_engine()
    start = time.perf_counter()
    batch_engine.query_batch(workload, semantics)
    batched_seconds = time.perf_counter() - start
    rows.append({"mode": "batched", "queries": len(workload),
                 "seconds": batched_seconds,
                 "qps": len(workload) / batched_seconds,
                 "plan_cache_hits": batch_engine.stats.plan_cache_hits})
    return rows


def kernel_speedup(dataset: str = "imdb", scale: float = 0.05,
                   distinct: int = 10, rounds: int = 5,
                   semantics: str = SUBGRAPH, seed: int = 42) -> list[dict]:
    """Executor-only speedup: the numpy array kernels vs the sequential
    reference, same compiled plans over the same frozen session.

    Unlike :func:`engine_throughput` this isolates
    :func:`~repro.core.executor.execute_plan` against
    :func:`~repro.core.kernels.execute_plan_vectorized` — no plan cache,
    no matching, no engine bookkeeping — so the ratio is a direct read
    on what the array kernels buy. Both executors are warmed with one
    pass (filling the vectorized session caches; the sequential path
    has no cross-execution state), then timed over ``rounds`` repeats
    of the ``distinct``-query workload with fresh
    :class:`~repro.accounting.AccessStats` per execution, mirroring a
    serving loop. Raises :class:`BenchmarkError` without numpy — this
    benchmark *is* the vectorized path.
    """
    from repro.core.executor import execute_plan
    from repro.core.kernels import can_vectorize, execute_plan_vectorized
    from repro.graph.frozen import FrozenGraph

    graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    queries = _bounded_queries(pool, schema, semantics, distinct)
    index = SchemaIndex(FrozenGraph.from_graph(graph), schema, frozen=True)
    if not can_vectorize(index):
        raise BenchmarkError("kernel_speedup needs numpy — the bench "
                             "measures the vectorized executor")
    plans = [generate_plan(query, schema, semantics) for query in queries]
    for plan in plans:  # warm-up: session caches, index + graph kernels
        execute_plan(plan, index)
        execute_plan_vectorized(plan, index)

    rows = []
    for mode, runner in (("sequential", execute_plan),
                         ("vectorized", execute_plan_vectorized)):
        executions = 0
        start = time.perf_counter()
        for _ in range(rounds):
            for plan in plans:
                runner(plan, index, stats=AccessStats())
                executions += 1
        seconds = time.perf_counter() - start
        rows.append({"mode": mode, "executions": executions,
                     "seconds": seconds, "qps": executions / seconds})
    rows[1]["speedup_vs_sequential"] = rows[1]["qps"] / rows[0]["qps"]
    return rows


# -------------------------------------------------------------------- Expt-3
def exp3_algorithm_times(datasets=("imdb", "dbpedia", "web"),
                         scale: float = 0.05, count: int = 50,
                         seed: int = 42) -> list[dict]:
    """Max latency of EBChk/QPlan/sEBChk/sQPlan across a workload.
    Paper: at most 7/37/6/32 ms respectively."""
    rows = []
    for name in datasets:
        _, schema = get_dataset(name, scale)
        queries = get_workload(name, scale, count=count, seed=seed)
        latencies = {"ebchk": [], "qplan": [], "sebchk": [], "sqplan": []}
        for query in queries:
            for semantics, check_key, plan_key in (
                    (SUBGRAPH, "ebchk", "qplan"),
                    (SIMULATION, "sebchk", "sqplan")):
                start = time.perf_counter()
                verdict = is_effectively_bounded(query, schema, semantics)
                latencies[check_key].append(time.perf_counter() - start)
                if verdict.bounded:
                    start = time.perf_counter()
                    generate_plan(query, schema, semantics)
                    latencies[plan_key].append(time.perf_counter() - start)
        row = {"dataset": name}
        for key, values in latencies.items():
            row[f"{key}_max_ms"] = 1000 * max(values) if values else None
        rows.append(row)
    return rows
