"""Experiment implementations for every table and figure in Section VII.

Each function returns a list of row dicts; the mapping to the paper is:

========================  =====================================
Function                  Paper artifact
========================  =====================================
exp1_percentages          Exp-1(1) — % of effectively bounded queries
fig5_varying_g            Fig. 5(a,e,i) — evaluation time vs |G|
fig5_varying_q            Fig. 5(b,f,j) — evaluation time vs #n
fig5_varying_a            Fig. 5(c,g,k) — bVF2/bSim time vs ‖A‖
fig5_index_size           Fig. 5(d,h,l) — accessed data / index size vs #n
fig6_instance_bounded     Fig. 6(a,b) — minimum M vs % instance-bounded
exp3_algorithm_times      Expt-3 — EBChk/QPlan/sEBChk/sQPlan latency
========================  =====================================

Baselines that exceed the per-run ``timeout`` are censored (None in the
row), just as the paper cut VF2/optVF2 off at 40 000 s.
"""

from __future__ import annotations

import time
from statistics import mean

from repro.accounting import AccessStats
from repro.bench.datasets import get_dataset, get_schema_index, get_workload
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.ebchk import is_effectively_bounded
from repro.core.instance import min_m_for_fraction
from repro.core.qplan import generate_plan
from repro.errors import MatchTimeout
from repro.matching.bounded import bsim, bvf2
from repro.matching.optimized import opt_gsim, opt_vf2
from repro.matching.simulation import simulate
from repro.matching.vf2 import find_matches


def timed(fn, *args, **kwargs):
    """Run ``fn``, returning ``(seconds, result)``; ``(None, None)`` when
    the matcher raises :class:`MatchTimeout` (a censored run)."""
    start = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    except MatchTimeout:
        return None, None
    return time.perf_counter() - start, result


def _bounded_queries(queries, schema, semantics: str, limit: int):
    selected = []
    for query in queries:
        if is_effectively_bounded(query, schema, semantics).bounded:
            selected.append(query)
            if len(selected) >= limit:
                break
    return selected


def _mean_or_none(values):
    values = [v for v in values if v is not None]
    return mean(values) if values else None


# ----------------------------------------------------------------- Exp-1(1)
def exp1_percentages(datasets=("imdb", "dbpedia", "web"), scale: float = 0.05,
                     count: int = 100, seed: int = 42) -> list[dict]:
    """Percentage of effectively bounded queries per dataset and
    semantics. Paper: 61/67/58 % (subgraph), 32/41/33 % (simulation)."""
    rows = []
    for name in datasets:
        _, schema = get_dataset(name, scale)
        queries = get_workload(name, scale, count=count, seed=seed)
        subgraph_pct = 100 * sum(
            1 for q in queries
            if is_effectively_bounded(q, schema, SUBGRAPH).bounded) / len(queries)
        simulation_pct = 100 * sum(
            1 for q in queries
            if is_effectively_bounded(q, schema, SIMULATION).bounded) / len(queries)
        rows.append({"dataset": name, "subgraph_pct": subgraph_pct,
                     "simulation_pct": simulation_pct})
    return rows


# ------------------------------------------------------------ Fig. 5(a,e,i)
def fig5_varying_g(dataset: str, scale: float = 0.08,
                   fractions=(0.25, 0.5, 0.75, 1.0),
                   queries_per_point: int = 3, timeout: float = 10.0,
                   seed: int = 42) -> list[dict]:
    """Evaluation time vs |G| for all six algorithms.

    Exactly like the paper, |G| varies by taking induced subsets of one
    fixed graph under one fixed schema (access constraints are monotone
    under subgraphs, see :mod:`repro.graph.sampling`); plans are generated
    once since they depend on Q and A only. Bounded evaluation should stay
    flat as the scale factor grows, while the conventional algorithms grow
    or get censored. Rows also report the *data accessed* by the bounded
    algorithms — the deterministic version of the flatness claim.
    """
    from repro.constraints.index import SchemaIndex
    from repro.graph.sampling import scale_series

    full_graph, schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=100, seed=seed)
    sub_queries = _bounded_queries(pool, schema, SUBGRAPH, queries_per_point)
    sim_queries = _bounded_queries(pool, schema, SIMULATION, queries_per_point)
    sub_plans = [generate_plan(q, schema, SUBGRAPH) for q in sub_queries]
    sim_plans = [generate_plan(q, schema, SIMULATION) for q in sim_queries]

    sub_worst = _mean_or_none([p.worst_case_total_accessed for p in sub_plans])
    sim_worst = _mean_or_none([p.worst_case_total_accessed for p in sim_plans])

    rows = []
    for fraction, graph in scale_series(full_graph, fractions, seed=seed):
        sx = SchemaIndex(graph, schema)
        row = {"scale": fraction, "graph_size": graph.size,
               "bvf2_bound": sub_worst, "bsim_bound": sim_worst}

        times, accessed = [], []
        for q, p in zip(sub_queries, sub_plans):
            stats = AccessStats()
            seconds, _ = timed(bvf2, q, sx, plan=p, stats=stats)
            times.append(seconds)
            accessed.append(stats.total_accessed)
        row["bvf2"] = _mean_or_none(times)
        row["bvf2_accessed"] = _mean_or_none(accessed)

        times, accessed = [], []
        for q, p in zip(sim_queries, sim_plans):
            stats = AccessStats()
            seconds, _ = timed(bsim, q, sx, plan=p, stats=stats)
            times.append(seconds)
            accessed.append(stats.total_accessed)
        row["bsim"] = _mean_or_none(times)
        row["bsim_accessed"] = _mean_or_none(accessed)

        row["vf2"] = _mean_or_none(
            [timed(find_matches, q, graph, timeout=timeout)[0]
             for q in sub_queries])
        row["optvf2"] = _mean_or_none(
            [timed(opt_vf2, q, sx, timeout=timeout)[0] for q in sub_queries])
        row["gsim"] = _mean_or_none(
            [timed(simulate, q, graph, timeout=timeout)[0]
             for q in sim_queries])
        row["optgsim"] = _mean_or_none(
            [timed(opt_gsim, q, sx, timeout=timeout)[0] for q in sim_queries])
        rows.append(row)
    return rows


# ------------------------------------------------------------ Fig. 5(b,f,j)
def fig5_varying_q(dataset: str, node_counts=(3, 4, 5, 6, 7),
                   scale: float = 0.05, queries_per_point: int = 3,
                   timeout: float = 10.0, seed: int = 42) -> list[dict]:
    """Evaluation time vs pattern size #n."""
    graph, schema = get_dataset(dataset, scale)
    sx = get_schema_index(dataset, scale)
    rows = []
    for n in node_counts:
        pool = get_workload(dataset, scale, count=150, seed=seed + n,
                            num_nodes=n)
        sub_queries = _bounded_queries(pool, schema, SUBGRAPH,
                                       queries_per_point)
        sim_queries = _bounded_queries(pool, schema, SIMULATION,
                                       queries_per_point)
        row = {"num_nodes": n}
        row["bvf2"] = _mean_or_none(
            [timed(bvf2, q, sx)[0] for q in sub_queries])
        row["bsim"] = _mean_or_none(
            [timed(bsim, q, sx)[0] for q in sim_queries])
        row["vf2"] = _mean_or_none(
            [timed(find_matches, q, graph, timeout=timeout)[0]
             for q in sub_queries])
        row["optvf2"] = _mean_or_none(
            [timed(opt_vf2, q, sx, timeout=timeout)[0] for q in sub_queries])
        row["gsim"] = _mean_or_none(
            [timed(simulate, q, graph, timeout=timeout)[0]
             for q in sim_queries])
        row["optgsim"] = _mean_or_none(
            [timed(opt_gsim, q, sx, timeout=timeout)[0] for q in sim_queries])
        rows.append(row)
    return rows


# ------------------------------------------------------------ Fig. 5(c,g,k)
def fig5_varying_a(dataset: str, constraint_counts=(12, 14, 16, 18, 20),
                   scale: float = 0.05, queries_per_point: int = 3,
                   seed: int = 42) -> list[dict]:
    """bVF2/bSim time vs ‖A‖: more constraints -> better plans.

    The paper hand-picks 12-20 constraints relevant to its workload; here
    the full schema is ordered by how often the workload's full-schema
    plans use each constraint (most-used first, original order as
    tie-break) and each point takes the first ‖A‖ of them. Queries are
    chosen to be bounded under the largest point; rows whose smaller
    schema does not (yet) bound a query report None for it — the "more
    access constraints help" story.
    """
    from repro.constraints.index import SchemaIndex
    from repro.constraints.schema import AccessSchema

    graph, full_schema = get_dataset(dataset, scale)
    pool = get_workload(dataset, scale, count=200, seed=seed)
    sub_queries = _bounded_queries(pool, full_schema, SUBGRAPH,
                                   queries_per_point)
    sim_queries = _bounded_queries(pool, full_schema, SIMULATION,
                                   queries_per_point)

    # Put the constraints those queries' plans actually use first —
    # interleaving the two semantics so both get early slots — then the
    # rest of the schema in its original order.
    ordered: list = []
    seen: set = set()

    def enqueue(plan) -> None:
        for constraint in sorted(plan.constraints_used(), key=str):
            if constraint not in seen:
                seen.add(constraint)
                ordered.append(constraint)

    for i in range(max(len(sub_queries), len(sim_queries))):
        if i < len(sub_queries):
            enqueue(generate_plan(sub_queries[i], full_schema, SUBGRAPH))
        if i < len(sim_queries):
            enqueue(generate_plan(sim_queries[i], full_schema, SIMULATION))
    for constraint in full_schema:
        if constraint not in seen:
            seen.add(constraint)
            ordered.append(constraint)
    rows = []
    for count in constraint_counts:
        schema = AccessSchema(ordered[:count])
        sx = SchemaIndex(graph, schema)
        row = {"num_constraints": count}
        for key, queries, semantics, runner in (
                ("bvf2", sub_queries, SUBGRAPH, bvf2),
                ("bsim", sim_queries, SIMULATION, bsim)):
            times = []
            for query in queries:
                if not is_effectively_bounded(query, schema,
                                              semantics).bounded:
                    continue
                plan = generate_plan(query, schema, semantics)
                times.append(timed(runner, query, sx, plan=plan)[0])
            row[key] = _mean_or_none(times)
        rows.append(row)
    return rows


# ------------------------------------------------------------ Fig. 5(d,h,l)
def fig5_index_size(dataset: str, node_counts=(3, 4, 5, 6, 7),
                    scale: float = 0.05, queries_per_point: int = 3,
                    seed: int = 42) -> list[dict]:
    """|accessed|/|G| and |index_Q|/|G| per query size, both semantics.

    Paper: accessed <= 0.13 % of |G|; used indices < 8 % of |G|.
    """
    graph, schema = get_dataset(dataset, scale)
    sx = get_schema_index(dataset, scale)
    rows = []
    for n in node_counts:
        pool = get_workload(dataset, scale, count=150, seed=seed + n,
                            num_nodes=n)
        row = {"num_nodes": n}
        for semantics, runner, key in ((SUBGRAPH, bvf2, "bvf2"),
                                       (SIMULATION, bsim, "bsim")):
            queries = _bounded_queries(pool, schema, semantics,
                                       queries_per_point)
            accessed, index_sizes = [], []
            for query in queries:
                plan = generate_plan(query, schema, semantics)
                stats = AccessStats()
                runner(query, sx, plan=plan, stats=stats)
                accessed.append(stats.total_accessed / graph.size)
                index_sizes.append(
                    sx.size_for(plan.constraints_used()) / graph.size)
            row[f"{key}_accessed"] = _mean_or_none(accessed)
            row[f"{key}_index"] = _mean_or_none(index_sizes)
        rows.append(row)
    return rows


# -------------------------------------------------------------- Fig. 6(a,b)
def fig6_instance_bounded(dataset: str, fractions=(0.6, 0.7, 0.8, 0.9, 0.95, 1.0),
                          scale: float = 0.05, count: int = 30,
                          semantics: str = SUBGRAPH,
                          seed: int = 42) -> list[dict]:
    """Minimum M making x% of the workload instance-bounded."""
    graph, schema = get_dataset(dataset, scale)
    queries = list(get_workload(dataset, scale, count=count, seed=seed))
    rows = []
    for fraction in fractions:
        m, _ = min_m_for_fraction(queries, schema, graph, fraction,
                                  semantics=semantics)
        rows.append({"fraction_pct": 100 * fraction, "min_m": m,
                     "m_over_g": (m / graph.size) if m is not None else None})
    return rows


# -------------------------------------------------------------------- Expt-3
def exp3_algorithm_times(datasets=("imdb", "dbpedia", "web"),
                         scale: float = 0.05, count: int = 50,
                         seed: int = 42) -> list[dict]:
    """Max latency of EBChk/QPlan/sEBChk/sQPlan across a workload.
    Paper: at most 7/37/6/32 ms respectively."""
    rows = []
    for name in datasets:
        _, schema = get_dataset(name, scale)
        queries = get_workload(name, scale, count=count, seed=seed)
        latencies = {"ebchk": [], "qplan": [], "sebchk": [], "sqplan": []}
        for query in queries:
            for semantics, check_key, plan_key in (
                    (SUBGRAPH, "ebchk", "qplan"),
                    (SIMULATION, "sebchk", "sqplan")):
                start = time.perf_counter()
                verdict = is_effectively_bounded(query, schema, semantics)
                latencies[check_key].append(time.perf_counter() - start)
                if verdict.bounded:
                    start = time.perf_counter()
                    generate_plan(query, schema, semantics)
                    latencies[plan_key].append(time.perf_counter() - start)
        row = {"dataset": name}
        for key, values in latencies.items():
            row[f"{key}_max_ms"] = 1000 * max(values) if values else None
        rows.append(row)
    return rows
