"""Benchmark harness reproducing the paper's evaluation (Section VII).

Each experiment function returns structured rows; ``benchmarks/`` wraps
them in pytest-benchmark targets, and :mod:`repro.bench.reporting` renders
the same tables/series the paper plots. See DESIGN.md's per-experiment
index for the figure-to-function map.
"""

from repro.bench.datasets import (
    get_dataset,
    get_engine,
    get_schema_index,
    get_workload,
)
from repro.bench.harness import (
    engine_throughput,
    exp1_percentages,
    exp3_algorithm_times,
    extension_rescue,
    fig5_index_size,
    fig5_varying_a,
    fig5_varying_g,
    fig5_varying_q,
    fig6_instance_bounded,
    kernel_speedup,
    obs_overhead,
    remote_fleet,
    remote_skewed,
    serve_load,
    shard_scaling,
    timed,
    warm_start,
)
from repro.bench.reporting import (
    boundedness_summary,
    latency_summary,
    render_series,
    render_table,
)

__all__ = [
    "get_dataset",
    "get_engine",
    "get_schema_index",
    "get_workload",
    "engine_throughput",
    "exp1_percentages",
    "exp3_algorithm_times",
    "extension_rescue",
    "fig5_index_size",
    "fig5_varying_a",
    "fig5_varying_g",
    "fig5_varying_q",
    "fig6_instance_bounded",
    "kernel_speedup",
    "obs_overhead",
    "remote_fleet",
    "remote_skewed",
    "serve_load",
    "shard_scaling",
    "timed",
    "warm_start",
    "boundedness_summary",
    "latency_summary",
    "render_series",
    "render_table",
]
