"""Plain-text rendering of benchmark results (tables and series)."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.util.percentiles import summarize


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(rows: Iterable[Mapping], columns: list[str] | None = None,
                 title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {c: len(c) for c in columns}
    rendered_rows = []
    for row in rows:
        rendered = {c: _format_cell(row.get(c)) for c in columns}
        rendered_rows.append(rendered)
        for c in columns:
            widths[c] = max(widths[c], len(rendered[c]))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for rendered in rendered_rows:
        lines.append(" | ".join(rendered[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def latency_summary(seconds: Iterable[float], prefix: str = "") -> dict:
    """Millisecond latency columns for a row dict: count plus
    p50/p90/p99/mean/max over per-request seconds (shared percentile
    definition — :mod:`repro.util.percentiles`). ``prefix`` namespaces
    the keys when one row mixes several latency series."""
    stats = summarize(seconds, scale=1000.0)
    return {f"{prefix}count": stats["count"],
            f"{prefix}p50_ms": stats["p50"],
            f"{prefix}p90_ms": stats["p90"],
            f"{prefix}p99_ms": stats["p99"],
            f"{prefix}mean_ms": stats["mean"],
            f"{prefix}max_ms": stats["max"]}


def boundedness_summary(snapshot: Mapping, prefix: str = "") -> dict:
    """Workload-boundedness columns for a row dict, from a server
    ``metrics`` snapshot: the schema generation being served, the
    fraction of admission verdicts that found a bounded plan (rescued
    queries count as bounded), and the rescue counters. ``prefix``
    namespaces the keys like :func:`latency_summary`."""
    return {f"{prefix}schema_version": snapshot.get("schema_version", 0),
            f"{prefix}bounded_fraction": snapshot.get("bounded_fraction"),
            f"{prefix}rescued": snapshot.get("rescued", 0),
            f"{prefix}rescue_failed": snapshot.get("rescue_failed", 0)}


def render_series(points: Iterable[tuple], x_label: str, y_label: str,
                  title: str = "") -> str:
    """Render (x, y) points as the text analogue of one figure series."""
    lines = [title] if title else []
    lines.append(f"{x_label:>12} | {y_label}")
    for x, y in points:
        lines.append(f"{_format_cell(x):>12} | {_format_cell(y)}")
    return "\n".join(lines)
