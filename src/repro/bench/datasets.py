"""Dataset and workload registry for the benchmark harness.

Datasets, their schema indexes and their engine sessions are memoized per
(name, scale, seed), so a bench sweep that revisits the same
configuration pays generation, index-build and plan-compilation cost
once.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.constraints.index import SchemaIndex
from repro.engine import QueryEngine
from repro.errors import BenchmarkError
from repro.graph.generators import dbpedia_like, imdb_like, web_like
from repro.pattern.generator import PatternGenerator
from repro.session import connect

#: The three dataset stand-ins of Section VII.
GENERATORS = {
    "imdb": imdb_like,
    "dbpedia": dbpedia_like,
    "web": web_like,
}

DATASET_NAMES = tuple(sorted(GENERATORS))


@lru_cache(maxsize=32)
def get_dataset(name: str, scale: float, seed: int = 0):
    """Memoized ``(graph, schema)`` for a dataset stand-in."""
    try:
        generator = GENERATORS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}") from None
    return generator(scale=scale, seed=seed)


@lru_cache(maxsize=32)
def get_schema_index(name: str, scale: float, seed: int = 0,
                     num_constraints: int | None = None) -> SchemaIndex:
    """Memoized schema index; ``num_constraints`` restricts ‖A‖ for the
    Fig. 5(c,g,k) sweep."""
    graph, schema = get_dataset(name, scale, seed)
    if num_constraints is not None:
        schema = schema.restricted_to(num_constraints)
    return SchemaIndex(graph, schema)


@lru_cache(maxsize=32)
def get_engine(name: str, scale: float, seed: int = 0) -> QueryEngine:
    """Memoized frozen :class:`QueryEngine` session over a dataset —
    snapshot, index build and plan cache are shared across experiments."""
    graph, schema = get_dataset(name, scale, seed)
    return connect((graph, schema))


@lru_cache(maxsize=64)
def get_workload(name: str, scale: float, count: int = 100, seed: int = 42,
                 num_nodes: int | None = None) -> tuple:
    """Memoized random workload over a dataset's labels (the paper's 100
    queries with #n/#e/#p in their Section VII ranges)."""
    graph, schema = get_dataset(name, scale, seed=0)
    generator = PatternGenerator.from_graph(graph, rng=random.Random(seed),
                                            schema=schema)
    return tuple(generator.generate_many(count, num_nodes=num_nodes))
