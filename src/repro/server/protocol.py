"""The one wire protocol of the serving stack: two framings over TCP.

Every request and response is one *frame*. Two framings coexist on the
same port, distinguished by the first byte:

* **JSON lines** — one JSON object on one ``\\n``-terminated line
  (UTF-8). The first byte is always ``{`` (0x7B). This is the
  compatibility framing every peer speaks.
* **Binary frames** — :data:`BINARY_MAGIC` (first byte 0xAB, which can
  never begin a JSON line), two big-endian ``u32`` lengths, a JSON
  header, and a packed payload section of length-prefixed byte buffers
  (:func:`encode_payload`). The header carries the same fields a JSON
  frame would, except that bulk int arrays (scatter frontiers, index
  payloads, probe pairs) live in the payload buffers as packed little-
  endian integers produced by ``ndarray.tobytes()`` and re-adopted with
  ``np.frombuffer`` — no per-element encode/decode loops.

Which framing a peer *sends* is negotiated at the ``hello`` handshake:
the client advertises ``codecs`` (preference order), the server answers
with the chosen ``codec``; a peer that predates the field (or a build
without numpy) transparently negotiates down to JSON. Replies always
use the framing of their request, so a mixed conversation stays
unambiguous frame by frame.

Requests carry an ``op`` and an optional client-chosen ``id`` that the
response echoes, so a client may pipeline requests. Two services speak
the protocol:

* the query server (:mod:`repro.server.server` — ``query``, ``metrics``,
  ``reload``, ``ping``, ``shutdown``), and
* the shard server (:mod:`repro.server.shardserver` — ``hello``,
  ``scatter``, ``extension_stats``, ``extend``, ``ping``, ``metrics``,
  ``reload``, ``shutdown``).

Both clients (:class:`~repro.server.client.ServeClient` and
:class:`~repro.engine.parallel.RemoteShardBackend`) share the framing
and error round-trip here rather than growing a second protocol.

Error responses are typed: ``{"ok": false, "error": "<class>",
"message": ...}`` plus class-specific fields, where ``<class>`` is the
name of a :mod:`repro.errors` exception. :func:`error_response` and
:func:`raise_error` are exact inverses, so the client re-raises the same
exception type the service raised — the contract the admission-control
acceptance criterion ("rejected with a typed error") rests on, and the
path a mid-query :class:`~repro.errors.ShardUnavailable` takes from the
scatter executor through the query server to the end client.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from itertools import chain

from repro.util import arrays
from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    NotEffectivelyBounded,
    ReproError,
    ServerError,
    ServiceOverloaded,
    ShardHandshakeMismatch,
    ShardProtocolError,
    ShardUnavailable,
)

#: Version of the JSON-lines protocol itself. Bumped on incompatible
#: framing or op-contract changes; the shard handshake (``hello``)
#: requires exact agreement so a mixed deployment fails loudly at
#: connect instead of corrupting answers mid-wave.
PROTOCOL_VERSION = 1

#: Upper bound on one request/response line; a longer line is a protocol
#: error (keeps a misbehaving peer from ballooning server memory).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Upper bound on one binary frame (header + payload section). Larger
#: than MAX_LINE_BYTES because packed scatter payloads are dense, but
#: still a hard cap: a corrupt or malicious length prefix must not make
#: a server allocate unbounded memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Upper bound on the number of payload buffers in one binary frame.
MAX_PAYLOAD_BUFFERS = 65536

#: First bytes of a binary frame. The leading 0xAB can never begin a
#: JSON-lines frame (those always start with ``{``, and 0xAB is not
#: valid UTF-8 lead anyway), so one-byte sniffing tells the framings
#: apart on a shared port.
BINARY_MAGIC = b"\xabRW1"

_BINARY_HEAD = struct.Struct(">4sII")  # magic, header_len, payload_len
_U32 = struct.Struct(">I")

#: Codec names as negotiated in the ``hello`` handshake.
CODEC_JSON = "json"
CODEC_BINARY = "binary"

#: Valid values of the user-facing ``--wire-format`` knob.
WIRE_FORMATS = ("auto", "json", "binary")

#: Default TCP port of ``repro serve`` (0x21C2 would be too cute; this is
#: just an unassigned high port).
DEFAULT_PORT = 8642

#: Default base TCP port of ``repro shard-serve`` (shard N conventionally
#: listens on ``DEFAULT_SHARD_PORT + N``).
DEFAULT_SHARD_PORT = 8650


def encode(doc: dict) -> bytes:
    """One response/request line: compact JSON + newline."""
    return json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    """Parse one line into a dict; raises :class:`ServerError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ServerError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ServerError(f"malformed protocol line: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServerError(
            f"protocol line must be a JSON object, got {type(doc).__name__}")
    return doc


class Frame(dict):
    """One decoded wire frame.

    Behaves as the request/response dict (so ``frame.get("id")`` call
    sites predating the binary framing are unchanged), plus the framing
    facts a binary-aware caller needs: ``payloads`` (zero-copy
    memoryviews over the received buffer, in wire order), ``nbytes``
    (bytes this frame occupied on the wire) and ``binary`` (which
    framing carried it — replies must use the same one).
    """

    __slots__ = ("payloads", "nbytes", "binary")

    def __init__(self, doc=(), *, payloads=(), nbytes=0, binary=False):
        super().__init__(doc)
        self.payloads = list(payloads)
        self.nbytes = nbytes
        self.binary = binary


# --------------------------------------------------- codec negotiation

def binary_supported() -> bool:
    """True when this build can pack/unpack binary payloads (numpy)."""
    return arrays.HAVE_NUMPY


def supported_codecs(wire_format: str = "auto") -> list[str]:
    """The codecs this peer offers/accepts, preference order first.

    ``json`` forces the compatibility codec; ``auto`` and ``binary``
    prefer binary when numpy is available. A build without numpy always
    returns ``["json"]`` — it cannot adopt packed buffers, whatever the
    knob says.
    """
    if wire_format not in WIRE_FORMATS:
        raise ValueError(f"wire_format must be one of {WIRE_FORMATS}, "
                         f"got {wire_format!r}")
    if wire_format == "json" or not binary_supported():
        return [CODEC_JSON]
    return [CODEC_BINARY, CODEC_JSON]


def choose_codec(client_codecs, server_codecs) -> str:
    """Server-side pick: the client's first preference the server also
    speaks. A client that predates the ``codecs`` hello field (or sent
    junk) gets JSON — the transparent negotiate-down path.
    """
    if not isinstance(client_codecs, (list, tuple)):
        return CODEC_JSON
    for codec in client_codecs:
        if codec in server_codecs:
            return codec
    return CODEC_JSON


# ----------------------------------------------------- binary framing

def encode_payload(buffers) -> bytes:
    """Pack byte buffers into one payload section: ``u32`` count, ``u32``
    length per buffer, then the buffers back to back."""
    parts = [_U32.pack(len(buffers))]
    parts.extend(_U32.pack(len(buf)) for buf in buffers)
    parts.extend(buffers)
    return b"".join(parts)


def binary_frame(header: bytes, payload: bytes) -> bytes:
    """Assemble one binary frame from an already-encoded JSON header and
    an already-packed payload section (:func:`encode_payload`). Split
    out from :func:`encode_binary` so a scatter broadcast can reuse one
    payload section under many per-shard headers."""
    return _BINARY_HEAD.pack(BINARY_MAGIC, len(header), len(payload)) \
        + header + payload


def encode_binary(doc: dict, buffers=()) -> bytes:
    """One binary frame: ``doc`` as the JSON header plus payload
    buffers. The binary-framed twin of :func:`encode`."""
    header = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return binary_frame(header, encode_payload(buffers))


def _check_frame_size(header_len: int, payload_len: int) -> None:
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise ShardProtocolError(
            f"binary frame of {header_len + payload_len} bytes exceeds "
            f"{MAX_FRAME_BYTES} bytes")


def _split_payload(view: memoryview) -> list:
    """Slice a payload section into zero-copy per-buffer memoryviews."""
    if len(view) < _U32.size:
        raise ShardProtocolError("truncated binary payload section")
    (nbufs,) = _U32.unpack_from(view, 0)
    if nbufs > MAX_PAYLOAD_BUFFERS:
        raise ShardProtocolError(
            f"binary frame declares {nbufs} payload buffers "
            f"(max {MAX_PAYLOAD_BUFFERS})")
    offset = _U32.size * (1 + nbufs)
    if len(view) < offset:
        raise ShardProtocolError("truncated binary payload section")
    lengths = struct.unpack_from(f">{nbufs}I", view, _U32.size)
    buffers = []
    for length in lengths:
        end = offset + length
        if end > len(view):
            raise ShardProtocolError("truncated binary payload buffer")
        buffers.append(view[offset:end])
        offset = end
    if offset != len(view):
        raise ShardProtocolError("binary payload section has trailing bytes")
    return buffers


def _assemble_binary(body: memoryview, header_len: int,
                     nbytes: int) -> Frame:
    try:
        doc = json.loads(bytes(body[:header_len]))
    except ValueError as exc:
        raise ShardProtocolError(
            f"malformed binary frame header: {exc}") from exc
    if not isinstance(doc, dict):
        raise ShardProtocolError(
            "binary frame header must be a JSON object, got "
            f"{type(doc).__name__}")
    payloads = _split_payload(body[header_len:])
    return Frame(doc, payloads=payloads, nbytes=nbytes, binary=True)


def read_frame(file) -> Frame:
    """Read one frame — either framing, sniffed by first byte — from a
    buffered binary stream.

    Raises :class:`EOFError` when the peer hung up cleanly *or* mid-
    frame (a truncated frame is indistinguishable from a death between
    frames, and both are transient faults to a retrying caller);
    :class:`ShardProtocolError` on framing violations — an overlong
    frame, a bad magic/length prefix, a corrupt payload section (a peer
    speaking garbage is not transient, and the bounded reads mean it
    cannot balloon server memory either); and :class:`ServerError` on a
    well-framed line that is not a JSON object.
    """
    first = file.read(1)
    if not first:
        raise EOFError("peer closed the connection")
    if first == BINARY_MAGIC[:1]:
        rest = file.read(_BINARY_HEAD.size - 1)
        if len(rest) < _BINARY_HEAD.size - 1:
            raise EOFError("peer closed the connection mid-frame")
        magic, header_len, payload_len = _BINARY_HEAD.unpack(first + rest)
        if magic != BINARY_MAGIC:
            raise ShardProtocolError(
                f"bad binary frame magic {magic!r}")
        _check_frame_size(header_len, payload_len)
        body = file.read(header_len + payload_len)
        if len(body) < header_len + payload_len:
            raise EOFError("peer closed the connection mid-frame")
        return _assemble_binary(
            memoryview(body), header_len,
            _BINARY_HEAD.size + header_len + payload_len)
    line = first + file.readline(MAX_LINE_BYTES)
    if not line.endswith(b"\n"):
        if len(line) > MAX_LINE_BYTES:
            raise ShardProtocolError(
                f"protocol frame exceeds {MAX_LINE_BYTES} bytes")
        raise EOFError("peer closed the connection mid-frame")
    return Frame(decode(line), nbytes=len(line))


async def read_frame_async(reader) -> Frame:
    """:func:`read_frame` over an :class:`asyncio.StreamReader` — same
    sniffing, same size bounds, same error contract."""
    import asyncio
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        raise EOFError("peer closed the connection") from None
    if first == BINARY_MAGIC[:1]:
        try:
            rest = await reader.readexactly(_BINARY_HEAD.size - 1)
        except asyncio.IncompleteReadError:
            raise EOFError("peer closed the connection mid-frame") from None
        magic, header_len, payload_len = _BINARY_HEAD.unpack(first + rest)
        if magic != BINARY_MAGIC:
            raise ShardProtocolError(f"bad binary frame magic {magic!r}")
        _check_frame_size(header_len, payload_len)
        try:
            body = await reader.readexactly(header_len + payload_len)
        except asyncio.IncompleteReadError:
            raise EOFError("peer closed the connection mid-frame") from None
        return _assemble_binary(
            memoryview(body), header_len,
            _BINARY_HEAD.size + header_len + payload_len)
    try:
        line = first + await reader.readline()
    except ValueError:
        # The stream limit tripped (asyncio wraps LimitOverrunError).
        raise ShardProtocolError(
            f"protocol frame exceeds {MAX_LINE_BYTES} bytes") from None
    if not line.endswith(b"\n"):
        if len(line) > MAX_LINE_BYTES:
            raise ShardProtocolError(
                f"protocol frame exceeds {MAX_LINE_BYTES} bytes")
        raise EOFError("peer closed the connection mid-frame")
    return Frame(decode(line), nbytes=len(line))


def connect_retry(host: str, port: int, *, timeout: float,
                  connect_timeout: float) -> socket.socket:
    """TCP connect with retry until ``connect_timeout`` elapses — the
    peer may still be binding when a client races it up (both smoke
    flows start server and client back to back). The returned socket has
    ``timeout`` as its I/O timeout and Nagle disabled (request/response
    over tiny messages never wants to wait on it). Raises
    :class:`OSError` (the last connect failure) once the deadline
    passes; callers map it to their typed error.
    """
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def error_response(request_id, exc: Exception) -> dict:
    """Serialize an exception into a typed error response."""
    doc = {"id": request_id, "ok": False,
           "error": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, AdmissionRejected):  # covers ServiceOverloaded
        doc["cost"] = exc.cost
        doc["budget"] = exc.budget
    elif isinstance(exc, DeadlineExceeded):
        doc["deadline_ms"] = exc.deadline_ms
    elif isinstance(exc, NotEffectivelyBounded):
        doc["uncovered_nodes"] = list(exc.uncovered_nodes)
        doc["uncovered_edges"] = [list(edge) for edge in exc.uncovered_edges]
    elif isinstance(exc, ShardUnavailable):
        doc["addr"] = exc.addr
        doc["shard_id"] = exc.shard_id
        doc["attempts"] = exc.attempts
    elif isinstance(exc, ShardHandshakeMismatch):
        doc["addr"] = exc.addr
        doc["found"] = exc.found
        doc["expected"] = exc.expected
    elif isinstance(exc, ShardProtocolError):
        doc["addr"] = exc.addr
    return doc


def raise_error(doc: dict) -> None:
    """Re-raise the typed exception encoded by :func:`error_response`.

    Unknown error classes degrade to :class:`ServerError` (an older
    client talking to a newer server still gets a library exception).
    """
    name = doc.get("error", "ServerError")
    message = doc.get("message", "server error")
    if name == "ServiceOverloaded":
        raise ServiceOverloaded(message, cost=doc.get("cost"),
                                budget=doc.get("budget"))
    if name == "AdmissionRejected":
        raise AdmissionRejected(message, cost=doc.get("cost"),
                                budget=doc.get("budget"))
    if name == "DeadlineExceeded":
        raise DeadlineExceeded(message, deadline_ms=doc.get("deadline_ms"))
    if name == "NotEffectivelyBounded":
        raise NotEffectivelyBounded(
            message,
            uncovered_nodes=doc.get("uncovered_nodes", ()),
            uncovered_edges=[tuple(edge)
                             for edge in doc.get("uncovered_edges", ())])
    if name == "ShardUnavailable":
        raise ShardUnavailable(message, addr=doc.get("addr"),
                               shard_id=doc.get("shard_id"),
                               attempts=doc.get("attempts"))
    if name == "ShardHandshakeMismatch":
        raise ShardHandshakeMismatch(message, addr=doc.get("addr"),
                                     found=doc.get("found"),
                                     expected=doc.get("expected"))
    if name == "ShardProtocolError":
        raise ShardProtocolError(message, addr=doc.get("addr"))
    raise ServerError(f"{name}: {message}")


def encode_trace(span) -> dict:
    """The trace-context wire field: ``{"trace_id", "span_id"}``.

    An *optional, additive* request field — a peer that predates it
    ignores unknown keys, so PROTOCOL_VERSION stays unbumped. Carried on
    shard-server requests so a front-end span tree and the shard's
    request log share one trace id (see :mod:`repro.obs.trace`).
    """
    return {"trace_id": span.trace_id, "span_id": span.span_id}


def decode_trace(doc: dict) -> dict | None:
    """The trace context of a request, or ``None`` when absent or
    malformed (tracing must never fail a query)."""
    trace = doc.get("trace")
    if not isinstance(trace, dict):
        return None
    trace_id = trace.get("trace_id")
    if not isinstance(trace_id, str):
        return None
    return {"trace_id": trace_id, "span_id": trace.get("span_id")}


def is_repro_error(exc: Exception) -> bool:
    """True for exceptions safe to serialize to the peer as typed errors
    (anything else is a server bug and is reported opaquely)."""
    return isinstance(exc, ReproError)


# ------------------------------------------------------- shard task codecs
# The scatter-gather task/response tuples (see repro.core.executor) cross
# the shard-server wire as JSON. JSON has no tuples and no int dict keys,
# so the codecs below normalize both directions; the decoded shapes are
# element-for-element identical to what InlineShardBackend produces —
# answers, G_Q and AccessStats must not be able to tell the backends
# apart. Both ends share these functions, so a representation change is
# a single edit (plus a PROTOCOL_VERSION bump).

def encode_task(task: tuple) -> list:
    """One scatter task as a JSON-safe list (tuples become arrays)."""
    kind = task[0]
    if kind == "probe":
        _, a_nodes, b_nodes = task
        return ["probe", list(a_nodes), list(b_nodes)]
    _, cpos, combos = task
    return [kind, cpos, [list(combo) for combo in combos]]


def decode_task(doc) -> tuple:
    """Inverse of :func:`encode_task`; shard-side index lookups key on
    tuples, so combos re-tuple-ify here."""
    try:
        kind = doc[0]
        if kind == "probe":
            return ("probe", [int(v) for v in doc[1]],
                    [int(v) for v in doc[2]])
        if kind in ("fetch", "edge"):
            return (kind, int(doc[1]),
                    [tuple(int(v) for v in combo) for combo in doc[2]])
    except (TypeError, ValueError, IndexError) as exc:
        raise ServerError(f"malformed shard task: {exc}") from exc
    raise ServerError(f"unknown shard task kind {doc[:1]!r}")


def encode_shard_response(kind: str, response) -> list:
    """One task's shard-local response as a JSON-safe value."""
    if kind == "fetch":
        payloads, info = response
        return [[list(p) for p in payloads],
                [[v, label, value] for v, (label, value) in info.items()]]
    if kind == "edge":
        return [[[w, [list(pair) for pair in flags]] for w, flags in entries]
                for entries in response]
    checked, found = response
    return [checked, [list(pair) for pair in found]]


def decode_shard_response(kind: str, doc):
    """Inverse of :func:`encode_shard_response`, restoring the exact
    in-memory shapes the scatter executor merges: int node ids, tuple
    edge flags, hashable probe pairs."""
    try:
        if kind == "fetch":
            payloads, info = doc
            return ([[int(v) for v in p] for p in payloads],
                    {int(v): (label, value) for v, label, value in info})
        if kind == "edge":
            return [[(int(w), tuple((bool(f), bool(b)) for f, b in flags))
                     for w, flags in entries] for entries in doc]
        checked, found = doc
        return int(checked), [(int(a), int(b)) for a, b in found]
    except (TypeError, ValueError) as exc:
        raise ServerError(f"malformed shard response: {exc}") from exc


# ------------------------------------------------ binary shard codecs
# The packed twins of encode_task/encode_shard_response for peers that
# negotiated the binary codec. Each function returns (meta, buffers):
# meta is a small JSON-safe skeleton riding in the frame header, and
# every bulk int array rides in a payload buffer packed by
# arrays.pack_ints (ndarray.tobytes on encode, np.frombuffer over the
# received memoryview on decode — no per-element Python loops). A
# buffer reference in the meta is ``[dtype_code, buffer_index]``.

def encode_tasks_binary(tasks) -> tuple[list, list[bytes]]:
    """Pack scatter tasks: combos flatten into one ``(n, arity)`` int
    matrix buffer per task, probe frontiers into one buffer per side."""
    np = arrays.require_numpy()
    metas: list = []
    buffers: list[bytes] = []

    def push(values):
        code, raw = arrays.pack_ints(values)
        buffers.append(raw)
        return [code, len(buffers) - 1]

    for task in tasks:
        kind = task[0]
        if kind == "probe":
            _, a_nodes, b_nodes = task
            metas.append(["probe", push(np.asarray(a_nodes, dtype=np.int64)),
                          push(np.asarray(b_nodes, dtype=np.int64))])
        else:
            _, cpos, combos = task
            arity = len(combos[0]) if combos else 0
            matrix = np.asarray(combos, dtype=np.int64)
            metas.append([kind, int(cpos), len(combos), arity, push(matrix)])
    return metas, buffers


def decode_tasks_binary(metas, payloads) -> list[tuple]:
    """Inverse of :func:`encode_tasks_binary`, adopting the payload
    memoryviews in place and restoring the exact task tuples
    :func:`decode_task` would produce."""
    arrays.require_numpy()

    def pull(ref):
        code, index = ref
        return arrays.unpack_ints(code, payloads[index])

    tasks = []
    try:
        for meta in metas:
            kind = meta[0]
            if kind == "probe":
                _, a_ref, b_ref = meta
                tasks.append(("probe", pull(a_ref).tolist(),
                              pull(b_ref).tolist()))
            elif kind in ("fetch", "edge"):
                _, cpos, count, arity, ref = meta
                flat = pull(ref)
                if flat.size != count * arity:
                    raise ShardProtocolError(
                        f"task buffer holds {flat.size} ints, expected "
                        f"{count}x{arity}")
                combos = [tuple(row) for row in
                          flat.reshape(count, arity).tolist()] if count \
                    else []
                tasks.append((kind, int(cpos), combos))
            else:
                raise ShardProtocolError(
                    f"unknown binary task kind {kind!r}")
    except (TypeError, ValueError, IndexError) as exc:
        raise ShardProtocolError(
            f"malformed binary shard task: {exc}") from exc
    return tasks


def _pack_fetch_info(id_list, info):
    """Pack a fetch response's node-info dict against its sorted
    distinct payload ids, or None when the shapes don't fit the packed
    form (then the JSON-triples fallback rides in the meta).

    Per id (in ``id_list`` order) one ``tag`` byte — ``label_index * 4 +
    value_kind`` with kinds 0=None, 1=int, 2=the ``"<label>_<n>"``
    template every bundled generator emits, 3=anything else — plus one
    entry in the numbers buffer (the int value, the template's ``n``, or
    0). Kind-3 values stay JSON, in id order. The ids themselves never
    travel: both ends derive them from the payload values buffer.
    """
    if len(info) != len(id_list):
        return None
    labels: list[str] = []
    label_pos: dict[str, int] = {}
    tags: list[int] = []
    nums: list[int] = []
    others: list = []
    for v in id_list:
        pair = info.get(v)
        if pair is None or not isinstance(pair, tuple) or len(pair) != 2:
            return None
        label, value = pair
        if not isinstance(label, str):
            return None
        pos = label_pos.get(label)
        if pos is None:
            pos = label_pos[label] = len(labels)
            labels.append(label)
            if pos > 62:  # the tag byte must stay u1
                return None
        vkind, num = 3, 0
        if value is None:
            vkind = 0
        elif type(value) is int:
            vkind, num = 1, value
        elif type(value) is str and value.startswith(label) \
                and value[len(label):len(label) + 1] == "_":
            suffix = value[len(label) + 1:]
            if suffix.isdigit() and str(int(suffix)) == suffix:
                vkind, num = 2, int(suffix)
        if vkind == 3:
            others.append(value)
        tags.append(pos * 4 + vkind)
        nums.append(num)
    return labels, others, tags, nums


def encode_shard_responses_binary(kinds, responses) -> tuple[list, list]:
    """Pack one scatter wave's responses, aligned with its tasks.

    fetch: per-combo payload lengths + flattened payload values as two
    buffers; the node-info dict packs as a label dictionary plus tag and
    number buffers keyed by the *derived* sorted distinct payload ids
    (see :func:`_pack_fetch_info` — the dominant JSON cost of a fetch
    wave), falling back to JSON ``[id, label, value]`` triples when its
    shape doesn't fit. edge: per-combo entry counts, flattened neighbour
    ids, and per-entry direction-flag bitmasks (bit ``2j`` = forward,
    ``2j+1`` = backward for combo member ``j``). probe: the found pairs
    as one ``(n, 2)`` buffer.
    """
    np = arrays.require_numpy()
    metas: list = []
    buffers: list[bytes] = []

    def push(values):
        code, raw = arrays.pack_ints(values)
        buffers.append(raw)
        return [code, len(buffers) - 1]

    for kind, response in zip(kinds, responses):
        if kind == "fetch":
            payloads, info = response
            lens = [len(p) for p in payloads]
            total = sum(lens)
            values = np.fromiter(chain.from_iterable(payloads),
                                 dtype=np.int64, count=total)
            packed = _pack_fetch_info(np.unique(values).tolist(), info)
            if packed is not None:
                labels, others, tags, nums = packed
                metas.append(["fetch", labels, others, push(lens),
                              push(values), push(tags), push(nums)])
                continue
            metas.append(["fetch",
                          [[v, label, value]
                           for v, (label, value) in info.items()],
                          push(lens), push(values)])
        elif kind == "edge":
            counts, ws, masks = [], [], []
            arity = 0
            for entries in response:
                counts.append(len(entries))
                for w, flags in entries:
                    arity = len(flags)
                    mask = 0
                    for j, (fwd, bwd) in enumerate(flags):
                        if fwd:
                            mask |= 1 << (2 * j)
                        if bwd:
                            mask |= 1 << (2 * j + 1)
                    ws.append(w)
                    masks.append(mask)
            metas.append(["edge", arity, push(counts), push(ws),
                          push(masks)])
        else:
            checked, found = response
            pairs = np.asarray(found, dtype=np.int64)
            metas.append(["probe", int(checked), len(found), push(pairs)])
    return metas, buffers


def decode_shard_responses_binary(metas, payloads,
                                  expected_kinds=None) -> list:
    """Inverse of :func:`encode_shard_responses_binary`, restoring the
    exact in-memory shapes :func:`decode_shard_response` produces (int
    node ids, tuple edge flags, hashable probe pairs) so the merge in
    the scatter executor cannot tell the codecs apart."""
    np = arrays.require_numpy()

    def pull(ref):
        code, index = ref
        return arrays.unpack_ints(code, payloads[index])

    out = []
    try:
        for pos, meta in enumerate(metas):
            kind = meta[0]
            if expected_kinds is not None and kind != expected_kinds[pos]:
                raise ShardProtocolError(
                    f"binary response {pos} has kind {kind!r}, expected "
                    f"{expected_kinds[pos]!r}")
            if kind == "fetch":
                if len(meta) == 7:  # packed info (_pack_fetch_info)
                    (_, labels, others, lens_ref, vals_ref,
                     tags_ref, nums_ref) = meta
                    lens = pull(lens_ref).tolist()
                    values = pull(vals_ref)
                    if values.size != sum(lens):
                        raise ShardProtocolError(
                            "fetch payload buffer disagrees with its "
                            "lengths")
                    ids = np.unique(values).tolist()
                    tags = pull(tags_ref).tolist()
                    nums = pull(nums_ref).tolist()
                    if len(tags) != len(ids) or len(nums) != len(ids):
                        raise ShardProtocolError(
                            "fetch info buffers disagree with the "
                            "distinct payload ids")
                    info, oi = {}, 0
                    for v, tag, num in zip(ids, tags, nums):
                        label = labels[tag >> 2]
                        vkind = tag & 3
                        if vkind == 0:
                            value = None
                        elif vkind == 1:
                            value = num
                        elif vkind == 2:
                            value = f"{label}_{num}"
                        else:
                            value = others[oi]
                            oi += 1
                        info[v] = (label, value)
                else:  # JSON-triples fallback
                    _, triples, lens_ref, vals_ref = meta
                    lens = pull(lens_ref).tolist()
                    values = pull(vals_ref)
                    if values.size != sum(lens):
                        raise ShardProtocolError(
                            "fetch payload buffer disagrees with its "
                            "lengths")
                    info = {int(v): (label, value)
                            for v, label, value in triples}
                segments, offset = [], 0
                for n in lens:
                    segments.append(values[offset:offset + n].tolist())
                    offset += n
                out.append((segments, info))
            elif kind == "edge":
                _, arity, counts_ref, ws_ref, masks_ref = meta
                counts = pull(counts_ref).tolist()
                ws = pull(ws_ref).tolist()
                masks = pull(masks_ref).tolist()
                if len(ws) != len(masks) or len(ws) != sum(counts):
                    raise ShardProtocolError(
                        "edge buffers disagree with their counts")
                entries_out, offset = [], 0
                for n in counts:
                    entries = []
                    for k in range(offset, offset + n):
                        mask = masks[k]
                        entries.append(
                            (ws[k],
                             tuple((bool((mask >> (2 * j)) & 1),
                                    bool((mask >> (2 * j + 1)) & 1))
                                   for j in range(arity))))
                    entries_out.append(entries)
                    offset += n
                out.append(entries_out)
            elif kind == "probe":
                _, checked, count, pairs_ref = meta
                pairs = pull(pairs_ref)
                if pairs.size != count * 2:
                    raise ShardProtocolError(
                        "probe pair buffer disagrees with its count")
                out.append((int(checked),
                            [tuple(pair) for pair in
                             pairs.reshape(count, 2).tolist()] if count
                            else []))
            else:
                raise ShardProtocolError(
                    f"unknown binary response kind {kind!r}")
    except (TypeError, ValueError, IndexError) as exc:
        raise ShardProtocolError(
            f"malformed binary shard response: {exc}") from exc
    return out


def encode_extension_stats(stats: tuple) -> dict:
    """A shard's ``(label counts, neighbour bounds)`` pair; the bounds
    dict keys on label *pairs*, which JSON objects cannot."""
    counts, bounds = stats
    return {"counts": dict(counts),
            "bounds": [[a, b, n] for (a, b), n in bounds.items()]}


def decode_extension_stats(doc: dict) -> tuple:
    try:
        counts = {str(label): int(n)
                  for label, n in doc.get("counts", {}).items()}
        bounds = {(a, b): int(n) for a, b, n in doc.get("bounds", ())}
    except (TypeError, ValueError) as exc:
        raise ServerError(f"malformed extension stats: {exc}") from exc
    return counts, bounds
