"""The one wire protocol of the serving stack: JSON lines over TCP.

Each request and each response is one JSON object on one ``\\n``-
terminated line (UTF-8). Requests carry an ``op`` and an optional
client-chosen ``id`` that the response echoes, so a client may pipeline
requests. Two services speak it:

* the query server (:mod:`repro.server.server` — ``query``, ``metrics``,
  ``reload``, ``ping``, ``shutdown``), and
* the shard server (:mod:`repro.server.shardserver` — ``hello``,
  ``scatter``, ``extension_stats``, ``extend``, ``ping``, ``metrics``,
  ``reload``, ``shutdown``).

Both clients (:class:`~repro.server.client.ServeClient` and
:class:`~repro.engine.parallel.RemoteShardBackend`) share the framing
and error round-trip here rather than growing a second protocol.

Error responses are typed: ``{"ok": false, "error": "<class>",
"message": ...}`` plus class-specific fields, where ``<class>`` is the
name of a :mod:`repro.errors` exception. :func:`error_response` and
:func:`raise_error` are exact inverses, so the client re-raises the same
exception type the service raised — the contract the admission-control
acceptance criterion ("rejected with a typed error") rests on, and the
path a mid-query :class:`~repro.errors.ShardUnavailable` takes from the
scatter executor through the query server to the end client.
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    NotEffectivelyBounded,
    ReproError,
    ServerError,
    ServiceOverloaded,
    ShardHandshakeMismatch,
    ShardProtocolError,
    ShardUnavailable,
)

#: Version of the JSON-lines protocol itself. Bumped on incompatible
#: framing or op-contract changes; the shard handshake (``hello``)
#: requires exact agreement so a mixed deployment fails loudly at
#: connect instead of corrupting answers mid-wave.
PROTOCOL_VERSION = 1

#: Upper bound on one request/response line; a longer line is a protocol
#: error (keeps a misbehaving peer from ballooning server memory).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Default TCP port of ``repro serve`` (0x21C2 would be too cute; this is
#: just an unassigned high port).
DEFAULT_PORT = 8642

#: Default base TCP port of ``repro shard-serve`` (shard N conventionally
#: listens on ``DEFAULT_SHARD_PORT + N``).
DEFAULT_SHARD_PORT = 8650


def encode(doc: dict) -> bytes:
    """One response/request line: compact JSON + newline."""
    return json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    """Parse one line into a dict; raises :class:`ServerError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ServerError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ServerError(f"malformed protocol line: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServerError(
            f"protocol line must be a JSON object, got {type(doc).__name__}")
    return doc


def read_frame(file) -> dict:
    """Read one frame from a buffered binary stream.

    Raises :class:`EOFError` when the peer hung up cleanly *or* mid-line
    (a truncated frame is indistinguishable from a death between frames,
    and both are transient faults to a retrying caller), and
    :class:`ServerError` on overlong or malformed lines (a peer speaking
    garbage is not transient).
    """
    line = file.readline(MAX_LINE_BYTES + 1)
    if not line:
        raise EOFError("peer closed the connection")
    if not line.endswith(b"\n"):
        if len(line) > MAX_LINE_BYTES:
            raise ServerError(
                f"protocol line exceeds {MAX_LINE_BYTES} bytes")
        raise EOFError("peer closed the connection mid-frame")
    return decode(line)


def connect_retry(host: str, port: int, *, timeout: float,
                  connect_timeout: float) -> socket.socket:
    """TCP connect with retry until ``connect_timeout`` elapses — the
    peer may still be binding when a client races it up (both smoke
    flows start server and client back to back). The returned socket has
    ``timeout`` as its I/O timeout and Nagle disabled (request/response
    over tiny messages never wants to wait on it). Raises
    :class:`OSError` (the last connect failure) once the deadline
    passes; callers map it to their typed error.
    """
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def error_response(request_id, exc: Exception) -> dict:
    """Serialize an exception into a typed error response."""
    doc = {"id": request_id, "ok": False,
           "error": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, AdmissionRejected):  # covers ServiceOverloaded
        doc["cost"] = exc.cost
        doc["budget"] = exc.budget
    elif isinstance(exc, DeadlineExceeded):
        doc["deadline_ms"] = exc.deadline_ms
    elif isinstance(exc, NotEffectivelyBounded):
        doc["uncovered_nodes"] = list(exc.uncovered_nodes)
        doc["uncovered_edges"] = [list(edge) for edge in exc.uncovered_edges]
    elif isinstance(exc, ShardUnavailable):
        doc["addr"] = exc.addr
        doc["shard_id"] = exc.shard_id
        doc["attempts"] = exc.attempts
    elif isinstance(exc, ShardHandshakeMismatch):
        doc["addr"] = exc.addr
        doc["found"] = exc.found
        doc["expected"] = exc.expected
    elif isinstance(exc, ShardProtocolError):
        doc["addr"] = exc.addr
    return doc


def raise_error(doc: dict) -> None:
    """Re-raise the typed exception encoded by :func:`error_response`.

    Unknown error classes degrade to :class:`ServerError` (an older
    client talking to a newer server still gets a library exception).
    """
    name = doc.get("error", "ServerError")
    message = doc.get("message", "server error")
    if name == "ServiceOverloaded":
        raise ServiceOverloaded(message, cost=doc.get("cost"),
                                budget=doc.get("budget"))
    if name == "AdmissionRejected":
        raise AdmissionRejected(message, cost=doc.get("cost"),
                                budget=doc.get("budget"))
    if name == "DeadlineExceeded":
        raise DeadlineExceeded(message, deadline_ms=doc.get("deadline_ms"))
    if name == "NotEffectivelyBounded":
        raise NotEffectivelyBounded(
            message,
            uncovered_nodes=doc.get("uncovered_nodes", ()),
            uncovered_edges=[tuple(edge)
                             for edge in doc.get("uncovered_edges", ())])
    if name == "ShardUnavailable":
        raise ShardUnavailable(message, addr=doc.get("addr"),
                               shard_id=doc.get("shard_id"),
                               attempts=doc.get("attempts"))
    if name == "ShardHandshakeMismatch":
        raise ShardHandshakeMismatch(message, addr=doc.get("addr"),
                                     found=doc.get("found"),
                                     expected=doc.get("expected"))
    if name == "ShardProtocolError":
        raise ShardProtocolError(message, addr=doc.get("addr"))
    raise ServerError(f"{name}: {message}")


def encode_trace(span) -> dict:
    """The trace-context wire field: ``{"trace_id", "span_id"}``.

    An *optional, additive* request field — a peer that predates it
    ignores unknown keys, so PROTOCOL_VERSION stays unbumped. Carried on
    shard-server requests so a front-end span tree and the shard's
    request log share one trace id (see :mod:`repro.obs.trace`).
    """
    return {"trace_id": span.trace_id, "span_id": span.span_id}


def decode_trace(doc: dict) -> dict | None:
    """The trace context of a request, or ``None`` when absent or
    malformed (tracing must never fail a query)."""
    trace = doc.get("trace")
    if not isinstance(trace, dict):
        return None
    trace_id = trace.get("trace_id")
    if not isinstance(trace_id, str):
        return None
    return {"trace_id": trace_id, "span_id": trace.get("span_id")}


def is_repro_error(exc: Exception) -> bool:
    """True for exceptions safe to serialize to the peer as typed errors
    (anything else is a server bug and is reported opaquely)."""
    return isinstance(exc, ReproError)


# ------------------------------------------------------- shard task codecs
# The scatter-gather task/response tuples (see repro.core.executor) cross
# the shard-server wire as JSON. JSON has no tuples and no int dict keys,
# so the codecs below normalize both directions; the decoded shapes are
# element-for-element identical to what InlineShardBackend produces —
# answers, G_Q and AccessStats must not be able to tell the backends
# apart. Both ends share these functions, so a representation change is
# a single edit (plus a PROTOCOL_VERSION bump).

def encode_task(task: tuple) -> list:
    """One scatter task as a JSON-safe list (tuples become arrays)."""
    kind = task[0]
    if kind == "probe":
        _, a_nodes, b_nodes = task
        return ["probe", list(a_nodes), list(b_nodes)]
    _, cpos, combos = task
    return [kind, cpos, [list(combo) for combo in combos]]


def decode_task(doc) -> tuple:
    """Inverse of :func:`encode_task`; shard-side index lookups key on
    tuples, so combos re-tuple-ify here."""
    try:
        kind = doc[0]
        if kind == "probe":
            return ("probe", [int(v) for v in doc[1]],
                    [int(v) for v in doc[2]])
        if kind in ("fetch", "edge"):
            return (kind, int(doc[1]),
                    [tuple(int(v) for v in combo) for combo in doc[2]])
    except (TypeError, ValueError, IndexError) as exc:
        raise ServerError(f"malformed shard task: {exc}") from exc
    raise ServerError(f"unknown shard task kind {doc[:1]!r}")


def encode_shard_response(kind: str, response) -> list:
    """One task's shard-local response as a JSON-safe value."""
    if kind == "fetch":
        payloads, info = response
        return [[list(p) for p in payloads],
                [[v, label, value] for v, (label, value) in info.items()]]
    if kind == "edge":
        return [[[w, [list(pair) for pair in flags]] for w, flags in entries]
                for entries in response]
    checked, found = response
    return [checked, [list(pair) for pair in found]]


def decode_shard_response(kind: str, doc):
    """Inverse of :func:`encode_shard_response`, restoring the exact
    in-memory shapes the scatter executor merges: int node ids, tuple
    edge flags, hashable probe pairs."""
    try:
        if kind == "fetch":
            payloads, info = doc
            return ([[int(v) for v in p] for p in payloads],
                    {int(v): (label, value) for v, label, value in info})
        if kind == "edge":
            return [[(int(w), tuple((bool(f), bool(b)) for f, b in flags))
                     for w, flags in entries] for entries in doc]
        checked, found = doc
        return int(checked), [(int(a), int(b)) for a, b in found]
    except (TypeError, ValueError) as exc:
        raise ServerError(f"malformed shard response: {exc}") from exc


def encode_extension_stats(stats: tuple) -> dict:
    """A shard's ``(label counts, neighbour bounds)`` pair; the bounds
    dict keys on label *pairs*, which JSON objects cannot."""
    counts, bounds = stats
    return {"counts": dict(counts),
            "bounds": [[a, b, n] for (a, b), n in bounds.items()]}


def decode_extension_stats(doc: dict) -> tuple:
    try:
        counts = {str(label): int(n)
                  for label, n in doc.get("counts", {}).items()}
        bounds = {(a, b): int(n) for a, b, n in doc.get("bounds", ())}
    except (TypeError, ValueError) as exc:
        raise ServerError(f"malformed extension stats: {exc}") from exc
    return counts, bounds
