"""Wire protocol of the query service: JSON lines over a byte stream.

Each request and each response is one JSON object on one ``\\n``-
terminated line (UTF-8). Requests carry an ``op`` (``query``, ``metrics``,
``reload``, ``ping``, ``shutdown``) and an optional client-chosen ``id``
that the response echoes, so a client may pipeline requests.

Error responses are typed: ``{"ok": false, "error": "<class>",
"message": ...}`` plus class-specific fields, where ``<class>`` is the
name of a :mod:`repro.errors` exception. :func:`error_response` and
:func:`raise_error` are exact inverses, so the client re-raises the same
exception type the service raised — the contract the admission-control
acceptance criterion ("rejected with a typed error") rests on.
"""

from __future__ import annotations

import json

from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    NotEffectivelyBounded,
    ReproError,
    ServerError,
    ServiceOverloaded,
)

#: Upper bound on one request/response line; a longer line is a protocol
#: error (keeps a misbehaving peer from ballooning server memory).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Default TCP port of ``repro serve`` (0x21C2 would be too cute; this is
#: just an unassigned high port).
DEFAULT_PORT = 8642


def encode(doc: dict) -> bytes:
    """One response/request line: compact JSON + newline."""
    return json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    """Parse one line into a dict; raises :class:`ServerError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ServerError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ServerError(f"malformed protocol line: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServerError(
            f"protocol line must be a JSON object, got {type(doc).__name__}")
    return doc


def error_response(request_id, exc: Exception) -> dict:
    """Serialize an exception into a typed error response."""
    doc = {"id": request_id, "ok": False,
           "error": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, AdmissionRejected):  # covers ServiceOverloaded
        doc["cost"] = exc.cost
        doc["budget"] = exc.budget
    elif isinstance(exc, DeadlineExceeded):
        doc["deadline_ms"] = exc.deadline_ms
    elif isinstance(exc, NotEffectivelyBounded):
        doc["uncovered_nodes"] = list(exc.uncovered_nodes)
        doc["uncovered_edges"] = [list(edge) for edge in exc.uncovered_edges]
    return doc


def raise_error(doc: dict) -> None:
    """Re-raise the typed exception encoded by :func:`error_response`.

    Unknown error classes degrade to :class:`ServerError` (an older
    client talking to a newer server still gets a library exception).
    """
    name = doc.get("error", "ServerError")
    message = doc.get("message", "server error")
    if name == "ServiceOverloaded":
        raise ServiceOverloaded(message, cost=doc.get("cost"),
                                budget=doc.get("budget"))
    if name == "AdmissionRejected":
        raise AdmissionRejected(message, cost=doc.get("cost"),
                                budget=doc.get("budget"))
    if name == "DeadlineExceeded":
        raise DeadlineExceeded(message, deadline_ms=doc.get("deadline_ms"))
    if name == "NotEffectivelyBounded":
        raise NotEffectivelyBounded(
            message,
            uncovered_nodes=doc.get("uncovered_nodes", ()),
            uncovered_edges=[tuple(edge)
                             for edge in doc.get("uncovered_edges", ())])
    raise ServerError(f"{name}: {message}")


def is_repro_error(exc: Exception) -> bool:
    """True for exceptions safe to serialize to the peer as typed errors
    (anything else is a server bug and is reported opaquely)."""
    return isinstance(exc, ReproError)
