"""Live serving metrics: counters plus a sliding latency window.

One :class:`ServerMetrics` per service, updated from the event loop and
the worker threads under a single lock (every update is a few integer
ops; contention is negligible next to query execution). Percentiles use
the library-wide definition in :mod:`repro.util.percentiles`.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.util.percentiles import summarize

#: Samples kept for latency percentiles and the recent-qps estimate.
WINDOW = 2048

#: Age of the newest window sample beyond which ``recent_qps`` reports 0
#: instead of extrapolating stale traffic (a long-idle service is not
#: "still serving" the rate it saw an hour ago).
RECENT_STALE_S = 60.0

#: Upper edges of the bound-utilization histogram (actual accesses /
#: admitted worst-case bound). Deciles up to 1.0 plus an overflow bucket:
#: a sound bound means the overflow bucket stays empty.
BOUND_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
                 float("inf"))


class ServerMetrics:
    """Thread-safe counters for one :class:`~repro.server.service.QueryService`."""

    def __init__(self, window: int = WINDOW):
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._window = window
        self._latencies: deque[float] = deque(maxlen=window)
        self._finished_at: deque[float] = deque(maxlen=window)
        self._bound_buckets = [0] * len(BOUND_BUCKETS)
        self.bound_samples = 0
        self.bound_sum = 0
        self.actual_sum = 0
        self.bound_utilization_sum = 0.0
        self.bound_violations = 0
        self.requests = 0
        self.admitted = 0
        self.answered = 0
        self.rejected_over_budget = 0
        self.rejected_overloaded = 0
        self.rejected_unbounded = 0
        self.deadline_expired = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.reloads = 0
        self.rescued = 0
        self.rescue_failed = 0
        self.rescued_constraints = 0

    # -- recording -----------------------------------------------------------
    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_admitted(self) -> None:
        with self._lock:
            self.admitted += 1

    def record_rejected(self, reason: str) -> None:
        """``reason`` is one of ``over_budget``/``overloaded``/``unbounded``."""
        with self._lock:
            if reason == "over_budget":
                self.rejected_over_budget += 1
            elif reason == "overloaded":
                self.rejected_overloaded += 1
            elif reason == "unbounded":
                self.rejected_unbounded += 1
            else:
                raise ValueError(f"unknown rejection reason {reason!r}")

    def record_answered(self, latency_seconds: float) -> None:
        with self._lock:
            self.answered += 1
            self._latencies.append(latency_seconds)
            self._finished_at.append(time.monotonic())

    def record_deadline_expired(self) -> None:
        with self._lock:
            self.deadline_expired += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size

    def record_reload(self) -> None:
        with self._lock:
            self.reloads += 1

    def record_rescued(self, constraints_added: int) -> None:
        """A query first rejected as unbounded was re-admitted after an
        online M-bounded extension added ``constraints_added``
        constraints (0 when a concurrent rescue already covered it)."""
        with self._lock:
            self.rescued += 1
            self.rescued_constraints += constraints_added

    def record_rescue_failed(self) -> None:
        """No extension within the budget could bound the query."""
        with self._lock:
            self.rescue_failed += 1

    def record_bound(self, bound: int, actual: int) -> None:
        """Bound telemetry for one answered query: ``bound`` is the
        admission-time worst-case access bound (the paper's promise),
        ``actual`` the :class:`~repro.accounting.AccessStats` total the
        execution really touched. Utilization > 1.0 means the bound was
        violated — a soundness bug, counted loudly."""
        utilization = (actual / bound) if bound > 0 else 1.0
        with self._lock:
            self.bound_samples += 1
            self.bound_sum += bound
            self.actual_sum += actual
            self.bound_utilization_sum += utilization
            if actual > bound:
                self.bound_violations += 1
            for i, le in enumerate(BOUND_BUCKETS):
                if utilization <= le:
                    self._bound_buckets[i] += 1
                    break

    # -- reading -------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-serializable dict with everything the ``metrics`` op
        reports (service-level fields; the service adds engine/queue
        context on top)."""
        with self._lock:
            now = time.monotonic()
            uptime = now - self._started
            latencies = list(self._latencies)
            finished = list(self._finished_at)
            rejected = {"over_budget": self.rejected_over_budget,
                        "overloaded": self.rejected_overloaded,
                        "unbounded": self.rejected_unbounded}
            bound_utilization = {
                "samples": self.bound_samples,
                "bound_sum": self.bound_sum,
                "actual_sum": self.actual_sum,
                "utilization_sum": self.bound_utilization_sum,
                "violations": self.bound_violations,
                "mean_utilization": (self.bound_utilization_sum
                                     / self.bound_samples
                                     if self.bound_samples else 0.0),
                # The +Inf bucket serializes as "+Inf": float("inf") is
                # not strict JSON and would break non-Python consumers.
                "buckets": [[le if le != float("inf") else "+Inf", n]
                            for le, n
                            in zip(BOUND_BUCKETS, self._bound_buckets)],
            }
            counters = {
                "requests": self.requests,
                "admitted": self.admitted,
                "answered": self.answered,
                "deadline_expired": self.deadline_expired,
                "errors": self.errors,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "reloads": self.reloads,
                "rescued": self.rescued,
                "rescue_failed": self.rescue_failed,
                "rescued_constraints": self.rescued_constraints,
            }
        # Recent qps over the retained window; falls back to lifetime qps
        # while the window spans the whole life of the service. A window
        # whose newest sample is stale reports 0 — a long-idle service is
        # not still serving its historical rate.
        recent_qps = 0.0
        if finished and now - finished[-1] > RECENT_STALE_S:
            recent_qps = 0.0
        elif len(finished) >= 2 and finished[-1] > finished[0]:
            recent_qps = (len(finished) - 1) / (finished[-1] - finished[0])
        elif finished and uptime > 0:
            recent_qps = len(finished) / uptime
        # Workload bounded-fraction: of the queries that reached a final
        # admission verdict, how many had a bounded plan? A rescued query
        # counts as bounded (its initial unbounded rejection is repaid by
        # the rescue), so the fraction reflects the schema the service
        # *now* serves, not the one it started with.
        unbounded_final = max(0, rejected["unbounded"] - counters["rescued"])
        verdicts = counters["admitted"] + unbounded_final
        return {
            **counters,
            "rejected": rejected,
            "bounded_fraction": (counters["admitted"] / verdicts)
            if verdicts else 1.0,
            "uptime_s": uptime,
            "qps": (counters["answered"] / uptime) if uptime > 0 else 0.0,
            "recent_qps": recent_qps,
            "window_size": self._window,
            "bound_utilization": bound_utilization,
            "mean_batch_size": (counters["batched_requests"]
                                / counters["batches"]
                                if counters["batches"] else 0.0),
            "latency_ms": summarize(latencies, scale=1000.0),
        }
