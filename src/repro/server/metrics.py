"""Live serving metrics: counters plus a sliding latency window.

One :class:`ServerMetrics` per service, updated from the event loop and
the worker threads under a single lock (every update is a few integer
ops; contention is negligible next to query execution). Percentiles use
the library-wide definition in :mod:`repro.util.percentiles`.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.util.percentiles import summarize

#: Samples kept for latency percentiles and the recent-qps estimate.
WINDOW = 2048


class ServerMetrics:
    """Thread-safe counters for one :class:`~repro.server.service.QueryService`."""

    def __init__(self, window: int = WINDOW):
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._latencies: deque[float] = deque(maxlen=window)
        self._finished_at: deque[float] = deque(maxlen=window)
        self.requests = 0
        self.admitted = 0
        self.answered = 0
        self.rejected_over_budget = 0
        self.rejected_overloaded = 0
        self.rejected_unbounded = 0
        self.deadline_expired = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.reloads = 0
        self.rescued = 0
        self.rescue_failed = 0
        self.rescued_constraints = 0

    # -- recording -----------------------------------------------------------
    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_admitted(self) -> None:
        with self._lock:
            self.admitted += 1

    def record_rejected(self, reason: str) -> None:
        """``reason`` is one of ``over_budget``/``overloaded``/``unbounded``."""
        with self._lock:
            if reason == "over_budget":
                self.rejected_over_budget += 1
            elif reason == "overloaded":
                self.rejected_overloaded += 1
            elif reason == "unbounded":
                self.rejected_unbounded += 1
            else:
                raise ValueError(f"unknown rejection reason {reason!r}")

    def record_answered(self, latency_seconds: float) -> None:
        with self._lock:
            self.answered += 1
            self._latencies.append(latency_seconds)
            self._finished_at.append(time.monotonic())

    def record_deadline_expired(self) -> None:
        with self._lock:
            self.deadline_expired += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size

    def record_reload(self) -> None:
        with self._lock:
            self.reloads += 1

    def record_rescued(self, constraints_added: int) -> None:
        """A query first rejected as unbounded was re-admitted after an
        online M-bounded extension added ``constraints_added``
        constraints (0 when a concurrent rescue already covered it)."""
        with self._lock:
            self.rescued += 1
            self.rescued_constraints += constraints_added

    def record_rescue_failed(self) -> None:
        """No extension within the budget could bound the query."""
        with self._lock:
            self.rescue_failed += 1

    # -- reading -------------------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-serializable dict with everything the ``metrics`` op
        reports (service-level fields; the service adds engine/queue
        context on top)."""
        with self._lock:
            now = time.monotonic()
            uptime = now - self._started
            latencies = list(self._latencies)
            finished = list(self._finished_at)
            rejected = {"over_budget": self.rejected_over_budget,
                        "overloaded": self.rejected_overloaded,
                        "unbounded": self.rejected_unbounded}
            counters = {
                "requests": self.requests,
                "admitted": self.admitted,
                "answered": self.answered,
                "deadline_expired": self.deadline_expired,
                "errors": self.errors,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "reloads": self.reloads,
                "rescued": self.rescued,
                "rescue_failed": self.rescue_failed,
                "rescued_constraints": self.rescued_constraints,
            }
        # Recent qps over the retained window; falls back to lifetime qps
        # while the window spans the whole life of the service.
        recent_qps = 0.0
        if len(finished) >= 2 and finished[-1] > finished[0]:
            recent_qps = (len(finished) - 1) / (finished[-1] - finished[0])
        elif finished and uptime > 0:
            recent_qps = len(finished) / uptime
        # Workload bounded-fraction: of the queries that reached a final
        # admission verdict, how many had a bounded plan? A rescued query
        # counts as bounded (its initial unbounded rejection is repaid by
        # the rescue), so the fraction reflects the schema the service
        # *now* serves, not the one it started with.
        unbounded_final = max(0, rejected["unbounded"] - counters["rescued"])
        verdicts = counters["admitted"] + unbounded_final
        return {
            **counters,
            "rejected": rejected,
            "bounded_fraction": (counters["admitted"] / verdicts)
            if verdicts else 1.0,
            "uptime_s": uptime,
            "qps": (counters["answered"] / uptime) if uptime > 0 else 0.0,
            "recent_qps": recent_qps,
            "mean_batch_size": (counters["batched_requests"]
                                / counters["batches"]
                                if counters["batches"] else 0.0),
            "latency_ms": summarize(latencies, scale=1000.0),
        }
