"""Asyncio front-end: wire-protocol TCP in front of a
:class:`QueryService` (JSON lines from any client, binary frames when a
client sends them — replies always use the request's framing).

One event loop owns all I/O and admission; a ``ThreadPoolExecutor`` of
``service.workers`` threads executes micro-batches against the shared
frozen engine. The flow per query request:

1. connection handler parses the line and runs **admission** on the loop
   (cheap: DSL parse + plan-cache-backed ``prepare`` + bound check);
   rejections answer immediately without queueing;
2. admitted requests join a bounded queue; the **batcher** task drains
   whatever is queued (up to ``max_batch``, waiting ``batch_window_ms``
   for stragglers only if configured) — under load, batches form
   naturally while workers are busy;
3. a worker thread funnels the batch through ``engine.query_batch``
   (duplicate patterns execute once) and serializes answers;
4. the handler writes each response as its future resolves, enforcing
   the request's **deadline** at dispatch and delivery.

Shutdown (the ``shutdown`` op, or :meth:`QueryServer.request_shutdown`)
is graceful: the listener closes first, queued and in-flight requests
drain, then the pool exits — no accepted request is dropped.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import (
    DeadlineExceeded,
    NotEffectivelyBounded,
    ServerError,
    ServiceOverloaded,
    ShardProtocolError,
)
from repro.obs.trace import Span, activate, bind
from repro.server import protocol
from repro.server.service import AdmittedQuery, QueryService

#: How long a graceful shutdown waits for in-flight work before forcing.
DRAIN_TIMEOUT_S = 10.0


@dataclass
class _QueueItem:
    """One admitted request waiting for a worker batch."""

    request: AdmittedQuery
    future: asyncio.Future
    admitted_at: float
    expires_at: float | None  # loop-clock deadline, None = no deadline
    deadline_ms: float | None
    queue_span: Span | None = None  # open "queue_wait", ended at pop


class QueryServer:
    """TCP server binding a :class:`QueryService` to ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after :meth:`start` — what tests and the bench harness do).
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT):
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._batcher_task: asyncio.Task | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inflight = 0
        #: Requests the batcher has popped but not yet dispatched or
        #: expired (a forming batch awaiting stragglers) — counted so a
        #: graceful stop() never drains past them.
        self._forming = 0
        self._dispatch_slots: asyncio.Semaphore | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def queue_depth(self) -> int:
        """Live queued-request count (0 before :meth:`start`); what the
        metrics scrape endpoint reports without entering the loop."""
        return self._queue.qsize() if self._queue is not None else 0

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.service.max_queue)
        self._shutdown_event = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.service.workers,
            thread_name_prefix="repro-serve")
        # At most one dispatched batch per worker: back-pressure must
        # land in the bounded asyncio queue (where admission sheds load),
        # not pile up invisibly in the executor's unbounded queue.
        self._dispatch_slots = asyncio.Semaphore(self.service.workers)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port,
            limit=protocol.MAX_LINE_BYTES)
        self._batcher_task = asyncio.create_task(self._batcher())

    def request_shutdown(self) -> None:
        """Flip the shutdown flag (idempotent, loop-thread only; use
        ``loop.call_soon_threadsafe`` from other threads)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def serve_until_shutdown(self) -> None:
        """Block until shutdown is requested, then drain gracefully."""
        await self._shutdown_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful stop: close the listener, drain queued + in-flight
        work (bounded by :data:`DRAIN_TIMEOUT_S`), release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._loop.time() + DRAIN_TIMEOUT_S
        while ((not self._queue.empty() or self._forming or self._inflight)
               and self._loop.time() < deadline):
            await asyncio.sleep(0.01)
        if self._batcher_task is not None:
            self._batcher_task.cancel()
            try:
                await self._batcher_task
            except asyncio.CancelledError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- connections ---------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        # Per-connection framing state: each response goes out in the
        # framing of the request that is being answered, so a client
        # that switches codecs mid-connection stays in sync.
        binary = False
        try:
            while True:
                try:
                    frame = await protocol.read_frame_async(reader)
                except (EOFError, ConnectionError):
                    break
                except (ShardProtocolError, ServerError) as exc:
                    # Overlong, truncated or malformed framing. The
                    # stream can't be resynced past it: answer typed,
                    # then hang up.
                    await self._write(writer, write_lock,
                                      protocol.error_response(None, exc),
                                      binary=binary)
                    break
                binary = frame.binary
                await self._dispatch(frame, writer, write_lock,
                                     binary=binary)
                if self._shutdown_event.is_set():
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, doc: dict, writer: asyncio.StreamWriter,
                        write_lock: asyncio.Lock, *,
                        binary: bool = False) -> None:
        request_id = None
        try:
            request_id = doc.get("id")
            op = doc.get("op", "query")
            if op == "query":
                await self._handle_query(doc, writer, write_lock,
                                         binary=binary)
                return
            if op == "metrics":
                body = self.service.snapshot(queue_depth=self._queue.qsize())
                await self._write(writer, write_lock,
                                  {"id": request_id, "ok": True, **body},
                                  binary=binary)
            elif op == "ping":
                await self._write(writer, write_lock,
                                  {"id": request_id, "ok": True,
                                   "op": "pong"}, binary=binary)
            elif op == "reload":
                path = doc.get("artifact")
                if not path:
                    raise ServerError("reload requires an 'artifact' path")
                info = await self._loop.run_in_executor(
                    None, self.service.reload_artifact, path)
                await self._write(writer, write_lock,
                                  {"id": request_id, "ok": True, **info},
                                  binary=binary)
            elif op == "shutdown":
                await self._write(writer, write_lock,
                                  {"id": request_id, "ok": True,
                                   "op": "shutdown"}, binary=binary)
                self.request_shutdown()
            else:
                raise ServerError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 — a request must never kill the loop
            if not protocol.is_repro_error(exc):
                self.service.metrics.record_error()
                exc = ServerError(f"internal error: {type(exc).__name__}: {exc}")
            await self._write(writer, write_lock,
                              protocol.error_response(request_id, exc),
                              binary=binary)

    async def _handle_query(self, doc: dict, writer: asyncio.StreamWriter,
                            write_lock: asyncio.Lock, *,
                            binary: bool = False) -> None:
        request_id = doc.get("id")
        pattern = doc.get("pattern")
        if not isinstance(pattern, str) or not pattern.strip():
            raise ServerError("query requires a non-empty 'pattern' (DSL text)")
        semantics = doc.get("semantics", "subgraph")
        if not isinstance(semantics, str):
            raise ServerError("'semantics' must be a string")
        limit = doc.get("limit")
        if limit is not None and (not isinstance(limit, int)
                                  or isinstance(limit, bool)):
            raise ServerError("'limit' must be an integer")
        deadline_ms = doc.get("deadline_ms")
        if deadline_ms is not None and (not isinstance(deadline_ms,
                                                       (int, float))
                                        or isinstance(deadline_ms, bool)):
            raise ServerError("'deadline_ms' must be a number")
        # One trace per request when tracing is on: the root span opens
        # at arrival and every instrumented stage below hangs off it.
        root = None
        if self.service.tracer is not None:
            root = self.service.tracer.trace(
                "request", semantics=semantics,
                pattern=pattern if len(pattern) <= 120
                else pattern[:117] + "...")
        try:
            try:
                with activate(root):
                    admitted = self.service.admit(pattern, semantics,
                                                  limit=limit)
            except NotEffectivelyBounded:
                if not self.service.can_rescue:
                    raise
                # The rescue pipeline: this coroutine parks right here
                # while the extension plans and builds on the executor
                # (off the event loop — admission of other requests
                # keeps flowing). On success the query re-admits and
                # proceeds like any other; on failure the typed
                # rejection propagates. ``bind`` carries the trace onto
                # the executor thread.
                admitted = await self._loop.run_in_executor(
                    None, bind(root, self.service.rescue),
                    pattern, semantics, limit)
            admitted.span = root
            now = self._loop.time()
            item = _QueueItem(
                request=admitted, future=self._loop.create_future(),
                admitted_at=now,
                expires_at=(now + deadline_ms / 1000.0)
                if deadline_ms is not None else None,
                deadline_ms=deadline_ms)
            try:
                self._queue.put_nowait(item)
            except asyncio.QueueFull:
                self.service.metrics.record_rejected("overloaded")
                raise ServiceOverloaded(
                    f"request queue at capacity ({self.service.max_queue});"
                    f" retry with backoff",
                    cost=self._queue.qsize(), budget=self.service.max_queue
                ) from None
            # Safe after put_nowait: the batcher cannot pop the item
            # until this coroutine yields at the await below.
            if root is not None:
                item.queue_span = root.child("queue_wait")
            try:
                body = await item.future
            except DeadlineExceeded as exc:
                self.service.metrics.record_deadline_expired()
                if root is not None:
                    root.set(status="deadline_expired")
                await self._write(writer, write_lock,
                                  protocol.error_response(request_id, exc),
                                  binary=binary)
                return
            if root is not None:
                root.set(status="answered")
            self.service.metrics.record_answered(self._loop.time()
                                                 - item.admitted_at)
            await self._write(writer, write_lock,
                              {"id": request_id, "ok": True, **body},
                              binary=binary)
        except Exception as exc:
            if root is not None:
                root.set(status="rejected", error=type(exc).__name__)
            raise
        finally:
            if root is not None:
                root.trace.finish()

    async def _write(self, writer: asyncio.StreamWriter,
                     write_lock: asyncio.Lock, doc: dict, *,
                     binary: bool = False) -> None:
        # Query responses are JSON docs in either framing; ``binary``
        # only wraps them in the binary envelope so a binary-framing
        # client can keep sniffing frames by first byte.
        async with write_lock:
            writer.write(protocol.encode_binary(doc) if binary
                         else protocol.encode(doc))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    # -- batching ------------------------------------------------------------
    async def _batcher(self) -> None:
        while True:
            await self._dispatch_slots.acquire()
            item = await self._queue.get()
            self._forming = 1
            if item.queue_span is not None:
                item.queue_span.end()
            # Batch assembly measured on the first traced request's
            # trace: first pop to dispatch.
            assembly = (item.request.span.child("batch_assembly")
                        if item.request.span is not None else None)
            batch = [item]
            while len(batch) < self.service.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                    self._forming += 1
                except asyncio.QueueEmpty:
                    if self.service.batch_window_ms <= 0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(
                            self._queue.get(),
                            self.service.batch_window_ms / 1000.0))
                        self._forming += 1
                    except asyncio.TimeoutError:
                        break
            for queued in batch[1:]:
                if queued.queue_span is not None:
                    queued.queue_span.end()
            live = []
            now = self._loop.time()
            for queued in batch:
                if queued.expires_at is not None and now > queued.expires_at:
                    queued.future.set_exception(DeadlineExceeded(
                        f"deadline of {queued.deadline_ms:g} ms expired "
                        f"while queued", deadline_ms=queued.deadline_ms))
                else:
                    live.append(queued)
            if assembly is not None:
                assembly.set(size=len(live)).end()
            if not live:
                self._forming = 0
                self._dispatch_slots.release()
                continue
            self._inflight += len(live)
            self._forming = 0
            worker_future = self._loop.run_in_executor(
                self._pool, self.service.execute_batch,
                [queued.request for queued in live])
            asyncio.create_task(self._deliver(worker_future, live))

    async def _deliver(self, worker_future, items: list[_QueueItem]) -> None:
        try:
            bodies = await worker_future
        except Exception as exc:  # noqa: BLE001 — fail the batch, not the server
            bodies = [exc] * len(items)
        finally:
            self._inflight -= len(items)
            self._dispatch_slots.release()
        now = self._loop.time()
        for item, body in zip(items, bodies):
            if item.future.done():
                continue
            if item.expires_at is not None and now > item.expires_at:
                item.future.set_exception(DeadlineExceeded(
                    f"deadline of {item.deadline_ms:g} ms expired during "
                    f"execution", deadline_ms=item.deadline_ms))
            elif isinstance(body, Exception):
                item.future.set_exception(body)
            else:
                item.future.set_result(body)


class ServerThread:
    """Run a :class:`QueryServer` on its own event loop in a daemon
    thread — what in-process embedding, tests and the bench harness use.

    >>> from repro.server import QueryService, ServerThread  # doctest: +SKIP
    >>> handle = ServerThread(QueryService(engine)); handle.start()
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port  # resolved on start()
        self._server: QueryServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServerError("server thread failed to start in time")
        if self._startup_error is not None:
            raise ServerError(
                f"server failed to start: {self._startup_error}")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = QueryServer(self.service, self.host, self.port)
        try:
            await self._server.start()
            self.port = self._server.port
        except BaseException as exc:  # noqa: BLE001 — surfaced to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._server.serve_until_shutdown()

    def stop(self, timeout: float = DRAIN_TIMEOUT_S + 5.0) -> None:
        """Graceful shutdown from any thread; joins the loop thread."""
        if self._loop is not None and self._server is not None \
                and self._thread is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed: the thread is exiting anyway
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
