"""Standalone shard server: one shard of a sharded artifact behind TCP.

``repro shard-serve --artifact <dir>/shard-NNNN --port P`` warm-starts
one :class:`~repro.engine.parallel.ShardRuntime` from its per-shard
sub-artifact (checksum-verified against the top manifest, exactly like a
pool worker) and serves the backend contract over the wire protocol of
:mod:`repro.server.protocol` — packed binary frames when the hello
handshake negotiates them (``--wire-format``), JSON lines otherwise:

* ``hello`` — the handshake: protocol version, artifact format version,
  shard id, shard-manifest checksum, schema version, owned labels. The
  front-end (:class:`~repro.engine.parallel.RemoteShardBackend`)
  requires exact agreement before the first task;
* ``scatter`` / ``extension_stats`` / ``extend`` — the backend rounds;
* ``ping`` / ``metrics`` / ``reload`` / ``shutdown`` — operations.

Topology: N such processes (one per shard, typically on N machines) plus
any number of stateless front-ends opened with
``repro.connect(artifact, backend="remote", shard_addrs=[...])`` — the
front-end needs only the artifact's top-level files (manifest, plans,
partition, catalog), never a shard graph. Each connection is served by
its own thread; ``scatter`` reads are lock-free over the frozen shard
state, mirroring :class:`~repro.engine.parallel.InlineShardBackend`,
while ``extend``/``reload`` serialize under a lock.
"""

from __future__ import annotations

import hashlib
import logging
import queue
import random
import re
import socketserver
import threading
import time
from pathlib import Path

from repro.constraints.schema import AccessConstraint
from repro.errors import (
    EngineError,
    ServerError,
    ShardHandshakeMismatch,
    ShardProtocolError,
)
from repro.server import protocol

_log = logging.getLogger("repro.shardserver")

_SHARD_DIR_RE = re.compile(r"^shard-(\d+)$")


def resolve_shard_artifact(artifact, shard_id: int | None = None):
    """``<dir>/shard-NNNN`` (or ``<dir>`` plus an explicit shard id) →
    ``(root, shard_id)``. The per-shard-directory spelling is the
    deployment-friendly one: each server's unit file names exactly the
    data it owns."""
    path = Path(artifact)
    if shard_id is not None:
        return path, int(shard_id)
    match = _SHARD_DIR_RE.match(path.name)
    if match is None:
        raise EngineError(
            f"cannot infer a shard id from {path}; pass the per-shard "
            f"directory (<artifact>/shard-NNNN) or an explicit shard id")
    return path.parent, int(match.group(1))


class ShardServer:
    """One shard of a sharded artifact, served over TCP.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`). The server owns no partition-global state: handshake
    expectations (format version, schema version, manifest checksum)
    come from the artifact tree it loaded, so front-end and fleet agree
    iff they describe the same compile.
    """

    def __init__(self, artifact, *, host: str = "127.0.0.1", port: int = 0,
                 shard_id: int | None = None, wire_format: str = "auto",
                 delay_ms: float = 0.0, delay_jitter_ms: float = 0.0,
                 task_cost_ms: float = 0.0):
        self.root, self.shard_id = resolve_shard_artifact(artifact, shard_id)
        self.host = host
        self.port = port
        if wire_format not in protocol.WIRE_FORMATS:
            raise EngineError(
                f"wire_format must be one of {protocol.WIRE_FORMATS}, "
                f"got {wire_format!r}")
        self.wire_format = wire_format
        #: Injected scatter latency (testing/benchmarking a skewed
        #: fleet). Measured from frame *arrival*, not dispatch: with the
        #: connection handler's read-ahead, several delayed requests
        #: overlap their waits exactly like genuinely slow concurrent
        #: work would.
        self.delay_s = max(0.0, delay_ms) / 1000.0
        self.delay_jitter_s = max(0.0, delay_jitter_ms) / 1000.0
        self._delay_rng = random.Random()
        #: Injected *serial* compute per scatter task (a hot/overloaded
        #: shard). Unlike ``delay_ms`` this does not overlap across
        #: in-flight requests: the connection worker pays it per task
        #: while later requests queue behind — the regime where
        #: cross-execution dedup and read-ahead matter.
        self.task_cost_s = max(0.0, task_cost_ms) / 1000.0
        #: Codecs this server offers in the hello negotiation.
        self.wire_codecs = protocol.supported_codecs(wire_format)
        self._lock = threading.Lock()
        self._server: _ShardTCPServer | None = None
        self._thread: threading.Thread | None = None
        self._stop_requested = threading.Event()
        self._started = time.monotonic()
        # -- metrics (ints only; torn reads are harmless) -------------------
        self.requests = 0
        self.scatter_rounds = 0
        self.tasks_handled = 0
        self.extensions_applied = 0
        self.reloads = 0
        #: Requests that arrived carrying a front-end trace context.
        self.traced_requests = 0
        #: Cumulative wall time spent executing scatter rounds.
        self.scatter_seconds = 0.0
        # -- wire telemetry -------------------------------------------------
        self.wire_bytes_received = 0
        self.wire_bytes_sent = 0
        self.binary_frames_received = 0
        #: Deepest per-connection read-ahead observed: >1 proves a
        #: front-end really had multiple requests in flight on one
        #: connection (the pipelining overlap the wire stat gates on).
        self.pipeline_depth_peak = 0
        #: Hello negotiations by chosen codec.
        self.codec_negotiations = {protocol.CODEC_BINARY: 0,
                                   protocol.CODEC_JSON: 0}
        self._load()

    # -- state ----------------------------------------------------------------
    def _load(self) -> None:
        """(Re)load the shard runtime and handshake facts from disk —
        the same checksum-verified path a pool worker warm-starts
        through."""
        from repro.engine import persist

        manifest = persist.read_sharded_manifest(self.root)
        shard_meta = manifest.get("shards") or []
        if not 0 <= self.shard_id < len(shard_meta):
            raise EngineError(
                f"artifact at {self.root} has {len(shard_meta)} shards; "
                f"there is no shard {self.shard_id}")
        meta = shard_meta[self.shard_id]
        shard_dir = self.root / meta.get(
            "dir", persist.shard_dir_name(self.shard_id))
        manifest_bytes = (shard_dir / persist.MANIFEST_FILE).read_bytes()
        runtime = persist.load_shard_runtimes(self.root,
                                              [self.shard_id])[0]
        with self._lock:
            self.runtime = runtime
            self.format_version = manifest.get("format_version")
            self.schema_version = manifest.get("schema_version")
            self.manifest_sha256 = hashlib.sha256(manifest_bytes).hexdigest()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "ShardServer":
        """Bind and serve in a background thread; returns ``self``."""
        if self._server is not None:
            raise ServerError("shard server already started")
        self._server = _ShardTCPServer((self.host, self.port), _Handler)
        self._server.shard_server = self
        self._server.active_connections = set()
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"shard-serve-{self.shard_id}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the socket, join the serve thread
        (idempotent)."""
        server, self._server = self._server, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        # Sever live connections too — handler threads outlive shutdown(),
        # and an in-process "restart" must look like a process death to
        # clients (half-open sockets would mask reconnect bugs in tests).
        for conn in list(server.active_connections):
            try:
                conn.shutdown(socketserver.socket.SHUT_RDWR)
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def wait_until_stopped(self) -> None:
        """Block until a ``shutdown`` op (or anything else that sets
        :meth:`request_stop`) arrives, then stop. The CLI's foreground
        loop — its signal handlers call :meth:`request_stop` too, so
        SIGTERM/SIGINT drain identically to a protocol shutdown."""
        self._stop_requested.wait()
        self.stop()

    def request_stop(self) -> None:
        self._stop_requested.set()

    def scatter_delay_for(self, doc: dict) -> float:
        """Injected latency for one request (0 unless configured and
        the request is a scatter — the handshake and management ops stay
        fast so tests and probes are not slowed down)."""
        if not self.delay_s or doc.get("op") != "scatter":
            return 0.0
        jitter = self._delay_rng.uniform(0.0, self.delay_jitter_s) \
            if self.delay_jitter_s else 0.0
        return self.delay_s + jitter

    # -- dispatch -------------------------------------------------------------
    def dispatch(self, doc: dict) -> dict:
        trace = protocol.decode_trace(doc)
        if trace is None:
            return self._dispatch(doc)
        # A traced request: time the op server-side and report it back
        # as ``server_ms`` so the front-end's shard_rpc span can split
        # network wait from shard work; the shard's own log line carries
        # the same trace id the front-end span tree does.
        self.traced_requests += 1
        t0 = time.perf_counter()
        response = self._dispatch(doc)
        server_ms = (time.perf_counter() - t0) * 1000.0
        _log.debug("shard %d %s trace=%s %.2f ms", self.shard_id,
                   doc.get("op"), trace["trace_id"], server_ms)
        if isinstance(response, protocol.Frame):
            # Mutate in place — spreading into a plain dict would drop
            # the payload buffers of a binary scatter response.
            response["server_ms"] = round(server_ms, 3)
            return response
        return {**response, "server_ms": round(server_ms, 3)}

    def _dispatch(self, doc: dict) -> dict:
        op = doc.get("op")
        self.requests += 1
        if op == "hello":
            return self._op_hello(doc)
        if op == "scatter":
            return self._op_scatter(doc)
        if op == "extension_stats":
            labels = [str(label) for label in doc.get("labels", ())]
            return protocol.encode_extension_stats(
                self.runtime.extension_stats(labels))
        if op == "extend":
            return self._op_extend(doc)
        if op == "ping":
            return {"op": "pong", "shard_id": self.shard_id}
        if op == "metrics":
            return self._op_metrics()
        if op == "reload":
            with self._lock:
                pass  # serialize against a concurrent extend
            self._load()
            self.reloads += 1
            return {"op": "reload", "shard_id": self.shard_id,
                    "schema_version": self.schema_version,
                    "manifest_sha256": self.manifest_sha256}
        if op == "shutdown":
            self.request_stop()
            return {"op": "shutdown"}
        raise ServerError(f"unknown op {op!r}")

    def _op_hello(self, doc: dict) -> dict:
        found = doc.get("protocol")
        if found != protocol.PROTOCOL_VERSION:
            raise ShardHandshakeMismatch(
                f"front-end speaks protocol {found!r}, this shard server "
                f"speaks {protocol.PROTOCOL_VERSION}",
                found=found, expected=protocol.PROTOCOL_VERSION)
        # Codec negotiation: the client's first preference this server
        # speaks; a client that predates the field gets JSON. Additive —
        # no PROTOCOL_VERSION bump, old peers ignore the extra keys.
        codec = protocol.choose_codec(doc.get("codecs"), self.wire_codecs)
        self.codec_negotiations[codec] = \
            self.codec_negotiations.get(codec, 0) + 1
        return {
            "op": "hello",
            "protocol": protocol.PROTOCOL_VERSION,
            "codec": codec,
            "codecs": list(self.wire_codecs),
            "shard_id": self.shard_id,
            "format_version": self.format_version,
            "schema_version": self.schema_version,
            "manifest_sha256": self.manifest_sha256,
            "owned_labels": self.runtime.owned_labels(),
            "owned_nodes": len(self.runtime.owned),
            "artifact": str(self.root),
        }

    def _op_scatter(self, doc: dict) -> dict:
        t0 = time.perf_counter()
        binary = "tasks_meta" in doc
        if binary:
            if not protocol.binary_supported():
                raise ShardProtocolError(
                    "binary scatter frame received but this build has no "
                    "numpy; the client must negotiate the json codec")
            tasks = protocol.decode_tasks_binary(
                doc["tasks_meta"], getattr(doc, "payloads", ()))
        else:
            tasks = [protocol.decode_task(item)
                     for item in doc.get("tasks", ())]
        runtime = self.runtime  # one snapshot for the whole round
        raw = [runtime.handle(task) for task in tasks]
        if self.task_cost_s:
            # Charge per work unit (source combo; probes count one), so
            # the injected cost tracks the work actually sent — wire-
            # level task grouping does not discount it, dedup does.
            units = sum(len(task[2]) if task[0] in ("fetch", "edge")
                        else 1 for task in tasks)
            time.sleep(self.task_cost_s * units)
        self.scatter_rounds += 1
        self.tasks_handled += len(tasks)
        if binary:
            metas, buffers = protocol.encode_shard_responses_binary(
                [task[0] for task in tasks], raw)
            response = protocol.Frame({"responses_meta": metas},
                                      payloads=buffers, binary=True)
        else:
            response = {"responses": [
                protocol.encode_shard_response(task[0], value)
                for task, value in zip(tasks, raw)]}
        self.scatter_seconds += time.perf_counter() - t0
        return response

    def _op_extend(self, doc: dict) -> dict:
        constraints = [AccessConstraint.from_dict(item)
                       for item in doc.get("constraints", ())]
        with self._lock:
            result = self.runtime.extend(constraints)
        self.extensions_applied += result["built"]
        return {"result": result}

    def _op_metrics(self) -> dict:
        return {
            "op": "metrics",
            "shard_id": self.shard_id,
            "owned_nodes": len(self.runtime.owned),
            "owned_labels": len(self.runtime.owned_labels()),
            "schema_version": self.schema_version,
            "requests": self.requests,
            "scatter_rounds": self.scatter_rounds,
            "tasks_handled": self.tasks_handled,
            "extensions_applied": self.extensions_applied,
            "reloads": self.reloads,
            "traced_requests": self.traced_requests,
            "scatter_seconds": round(self.scatter_seconds, 6),
            "uptime_s": time.monotonic() - self._started,
            "pipeline_depth_peak": self.pipeline_depth_peak,
            "delay_ms": round(self.delay_s * 1000.0, 3),
            "task_cost_ms": round(self.task_cost_s * 1000.0, 3),
            "wire": {
                "format": self.wire_format,
                "codecs": list(self.wire_codecs),
                "bytes_received": self.wire_bytes_received,
                "bytes_sent": self.wire_bytes_sent,
                "binary_frames_received": self.binary_frames_received,
                "negotiations": dict(self.codec_negotiations),
            },
        }

    def __repr__(self) -> str:
        return (f"ShardServer(shard={self.shard_id}, "
                f"addr={self.address}, root={str(self.root)!r})")


class _ShardTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    shard_server: ShardServer
    active_connections: set


class _Handler(socketserver.StreamRequestHandler):
    """One connection, pipelined: the handler thread reads ahead —
    stamping each frame's arrival and queueing it — while a per-
    connection worker thread dispatches and responds strictly in
    arrival order (the front-end correlates by request id, but in-order
    responses keep the stream trivially self-synchronizing). Reading
    request N+1 while request N computes is what lets one connection
    carry several rounds at once. Typed :mod:`repro.errors` exceptions
    serialize as typed error responses; anything else is a server bug
    and reports opaquely. A malformed, overlong or truncated frame gets
    one typed error response, then the connection is closed (the stream
    cannot be trusted past it)."""

    def setup(self) -> None:
        super().setup()
        self.connection.setsockopt(socketserver.socket.IPPROTO_TCP,
                                   socketserver.socket.TCP_NODELAY, 1)
        self.server.active_connections.add(self.connection)

    def finish(self) -> None:
        self.server.active_connections.discard(self.connection)
        super().finish()

    def handle(self) -> None:
        server = self.server.shard_server
        work: queue.Queue = queue.Queue()
        self._worker_dead = False
        self._unanswered = 0  # read but not yet responded (GIL-atomic)
        worker = threading.Thread(
            target=self._drain, args=(server, work),
            name="shard-serve-worker", daemon=True)
        worker.start()
        try:
            while not self._worker_dead:
                try:
                    frame = protocol.read_frame(self.rfile)
                except EOFError:
                    return
                except (ShardProtocolError, ServerError, OSError) as exc:
                    work.put(("error", exc, None))
                    return
                server.wire_bytes_received += frame.nbytes
                if frame.binary:
                    server.binary_frames_received += 1
                self._unanswered += 1
                if self._unanswered > server.pipeline_depth_peak:
                    server.pipeline_depth_peak = self._unanswered
                work.put(("frame", frame, time.monotonic()))
        finally:
            work.put(("eof", None, None))
            worker.join()

    def _drain(self, server: ShardServer, work: queue.Queue) -> None:
        """The connection's in-order dispatch loop."""
        try:
            while True:
                kind, item, arrival = work.get()
                if kind == "eof":
                    return
                if kind == "error":
                    self._respond(protocol.error_response(
                        None, item if protocol.is_repro_error(item)
                        else ServerError("unreadable frame")))
                    return
                delay = server.scatter_delay_for(item)
                if delay:
                    remaining = arrival + delay - time.monotonic()
                    if remaining > 0:
                        time.sleep(remaining)
                request_id = item.get("id")
                payloads = ()
                try:
                    response = server.dispatch(item)
                    payloads = getattr(response, "payloads", ())
                    response = {"id": request_id, "ok": True, **response}
                except Exception as exc:  # noqa: BLE001 — keep serving
                    if not protocol.is_repro_error(exc):
                        exc = ServerError(
                            f"internal error: {type(exc).__name__}")
                    response = protocol.error_response(request_id, exc)
                ok = self._respond(response, payloads=payloads,
                                   binary=item.binary)
                self._unanswered -= 1
                if not ok:
                    return
        finally:
            self._worker_dead = True

    def _respond(self, doc: dict, payloads=(), binary: bool = False) -> bool:
        try:
            data = protocol.encode_binary(doc, payloads) if binary \
                else protocol.encode(doc)
            self.wfile.write(data)
            self.server.shard_server.wire_bytes_sent += len(data)
            return True
        except (OSError, ValueError):
            return False


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.server.shardserver`` — the same foreground loop
    ``repro shard-serve`` wraps."""
    import argparse
    import signal

    parser = argparse.ArgumentParser(
        description="Serve one shard of a sharded artifact over TCP")
    parser.add_argument("--artifact", required=True,
                        help="per-shard directory (<artifact>/shard-NNNN)")
    parser.add_argument("--shard-id", type=int, default=None,
                        help="shard id (inferred from --artifact when it "
                             "names a shard-NNNN directory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int,
                        default=protocol.DEFAULT_SHARD_PORT)
    parser.add_argument("--wire-format", choices=protocol.WIRE_FORMATS,
                        default="auto",
                        help="codecs offered in the hello negotiation: "
                             "auto prefers packed binary frames when "
                             "numpy is available, json forces the "
                             "JSON-lines codec (default: auto)")
    parser.add_argument("--log-format", choices=("text", "json"),
                        default="text",
                        help="structured log format for the repro.* "
                             "logger namespace (default: text)")
    parser.add_argument("--delay-ms", type=float, default=0.0,
                        help="inject this much latency (from frame "
                             "arrival) into every scatter round — a "
                             "skewed-fleet straggler for benchmarks and "
                             "smoke tests (default: 0)")
    parser.add_argument("--delay-jitter-ms", type=float, default=0.0,
                        help="add up to this much uniformly-random extra "
                             "latency per scatter round (default: 0)")
    parser.add_argument("--task-cost-ms", type=float, default=0.0,
                        help="inject this much serial compute per scatter "
                             "task — a hot shard whose cost scales with "
                             "the work it is sent (default: 0)")
    args = parser.parse_args(argv)

    from repro.obs.logs import setup_logging
    setup_logging(args.log_format)
    server = ShardServer(args.artifact, host=args.host, port=args.port,
                         shard_id=args.shard_id,
                         wire_format=args.wire_format,
                         delay_ms=args.delay_ms,
                         delay_jitter_ms=args.delay_jitter_ms,
                         task_cost_ms=args.task_cost_ms)
    server.start()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: server.request_stop())
    # The start/stop lines stay on stdout: the smoke flows (and any
    # process supervisor) watch for them regardless of log format.
    print(f"shard {server.shard_id} serving {server.root} on "
          f"{server.address} (schema v{server.schema_version})",
          flush=True)
    server.wait_until_stopped()
    print(f"shard {server.shard_id} stopped: {server.requests} requests, "
          f"{server.scatter_rounds} scatter rounds, "
          f"{server.tasks_handled} tasks", flush=True)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(None))


__all__ = [
    "ShardServer",
    "main",
    "resolve_shard_artifact",
]
