"""``python -m repro.server`` — the load client for a running
``repro serve`` instance (see :mod:`repro.server.client`)."""

import sys

from repro.server.client import main

if __name__ == "__main__":
    sys.exit(main())
