"""The serving core: admission control, batch execution, hot reload.

:class:`QueryService` is transport-agnostic — the asyncio front-end
(:mod:`repro.server.server`) calls :meth:`admit` on arrival and
:meth:`execute_batch` from its worker pool, but the same methods serve
tests and embedded use directly. One service wraps one **frozen**
:class:`~repro.engine.engine.QueryEngine` (the thread-safe read path);
:meth:`reload_artifact` swaps in a new engine atomically, so in-flight
work finishes on the snapshot it started on while new admissions land on
the new one.

Admission control is where the paper pays off operationally: the plan's
``worst_case_total_accessed`` is known at ``prepare`` time, *before* any
data is fetched, so a query costing more than the configured budget is
rejected with :class:`~repro.errors.AdmissionRejected` instead of ever
executing unbounded. Unbounded queries (no plan at all) are likewise
typed rejections, not executions.

With an ``--extend-budget`` configured, an unbounded rejection is no
longer final: the **rescue pipeline** (:meth:`QueryService.rescue`)
parks the query, plans the greedy minimum M-bounded extension off the
serving path (Section V of the paper, online), builds indexes for only
the added constraints, publishes them through the engine's
:class:`~repro.constraints.catalog.SchemaCatalog` with the hot-reload
swap discipline, and re-admits the parked query — all without a server
restart or a full index rebuild. Rescues serialize under one lock;
queries parked behind an in-flight rescue usually re-admit from its
result without planning anything.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.actualized import SEMANTICS, SUBGRAPH
from repro.engine import (
    PlanCache,
    PreparedQuery,
    QueryEngine,
    pattern_fingerprint,
    plan_extension,
)
from repro.errors import (
    AdmissionRejected,
    ExtensionError,
    NotEffectivelyBounded,
    ReproError,
    ServerError,
)
from repro.matching.simulation import relation_pairs
from repro.obs.trace import Span, TraceRecorder, activate, child_span
from repro.pattern.dsl import parse_pattern
from repro.pattern.pattern import Pattern
from repro.server.metrics import ServerMetrics


@dataclass
class AdmittedQuery:
    """One admitted request, ready for a worker batch.

    ``prepared`` is bound to the engine that admitted it; execution goes
    through the *current* engine's ``query_batch`` (identical answers
    unless a reload swapped snapshots in between — then the new snapshot
    answers, which is exactly what a reload means).
    """

    pattern: Pattern
    semantics: str
    cost: float
    prepared: PreparedQuery = field(repr=False)
    limit: int = 10
    #: The request's root span when tracing is on (the explicit hand-off
    #: across the event-loop -> worker-thread boundary, which does not
    #: propagate contextvars).
    span: Span | None = field(default=None, repr=False, compare=False)


class QueryService:
    """Admission control + micro-batched execution over one frozen engine.

    Parameters
    ----------
    engine:
        A frozen :class:`QueryEngine` (the thread-safe read path).
    max_cost:
        Admission budget: reject queries whose worst-case access bound
        exceeds this (``None`` admits any *bounded* query; unbounded
        queries are always rejected).
    workers:
        Worker threads executing batches (the front-end owns the pool;
        recorded here for metrics).
    max_batch:
        Most requests funnelled into one ``query_batch`` call.
    batch_window_ms:
        Extra time a forming batch waits for stragglers once the queue
        is drained. ``0`` (default) batches adaptively: whatever queued
        while workers were busy forms the next batch, with no added
        latency when the service is idle.
    max_queue:
        Bound on queued-but-unexecuted requests; admission sheds load
        beyond it with :class:`~repro.errors.ServiceOverloaded`.
    answer_limit:
        Default cap on matches/pairs returned per response (requests may
        lower or raise it; the count is always exact).
    extend_budget:
        The rescue pipeline's ``M``: a query rejected as unbounded is
        parked and the schema extended online with constraints whose
        bounds are at most this (Section V's M-bounded extension).
        ``None`` (default) disables rescue — unbounded stays a final,
        typed rejection.
    extend_max_added:
        Size cap on one rescue's extension: more added constraints than
        this fails the rescue instead of ballooning the index set.
    tracer:
        A :class:`~repro.obs.trace.TraceRecorder`; the front-end roots a
        span tree per request and the instrumented path (admission,
        queue, batches, waves, shard RPCs, rescues) hangs children off
        it. ``None`` (default) disables tracing — every instrumentation
        point no-ops and answers/accounting are byte-identical.
    """

    def __init__(self, engine: QueryEngine, *, max_cost: float | None = None,
                 workers: int = 4, max_batch: int = 32,
                 batch_window_ms: float = 0.0, max_queue: int = 256,
                 answer_limit: int = 10, extend_budget: int | None = None,
                 extend_max_added: int | None = None,
                 tracer: TraceRecorder | None = None):
        if not engine.frozen:
            raise ServerError(
                "QueryService requires a frozen engine session (the "
                "thread-safe read path); updates go through compile + "
                "hot reload instead")
        if workers < 1 or max_batch < 1 or max_queue < 1:
            raise ServerError("workers, max_batch and max_queue must be >= 1")
        self._engine = engine
        self._engine_lock = threading.Lock()
        # In-flight batch counts per engine (by id) plus engines retired
        # by a reload that still have batches running: a retired
        # engine's shard worker pool is closed the moment its last
        # batch drains, not at process exit.
        self._engine_refs: dict[int, int] = {}
        self._retired: dict[int, QueryEngine] = {}
        # The configured worker-process count, remembered independently
        # of the current engine so a sharded -> single -> sharded reload
        # chain restores the pool instead of silently dropping it.
        self._exec_workers = engine.exec_workers
        # Likewise the remote-fleet configuration: a session opened with
        # backend="remote" must reload back onto the same fleet (see
        # reload_artifact for the two-phase order).
        self._remote_config = self._capture_remote_config(engine)
        self.max_cost = max_cost
        self.workers = workers
        self.max_batch = max_batch
        self.batch_window_ms = batch_window_ms
        self.max_queue = max_queue
        self.answer_limit = answer_limit
        self.extend_budget = extend_budget
        self.extend_max_added = extend_max_added
        # Rescues serialize: one off-path extension at a time; queries
        # parked behind it re-check admission under the lock and usually
        # ride the winner's new schema generation for free.
        self._rescue_lock = threading.Lock()
        # Failed rescues are negatively cached per (canonical pattern,
        # semantics) at the schema generation they failed under: a
        # repeated unrescuable query must fail fast, not re-run
        # extension planning under the rescue lock on every request. A
        # later generation invalidates the entry — the schema that grew
        # may now rescue it.
        self._rescue_failures = PlanCache(maxsize=512)
        self.tracer = tracer
        self.metrics = ServerMetrics()
        # Admission parse cache: serving traffic repeats a handful of
        # query texts, so the DSL parse is paid once per text, not per
        # request (patterns are read-only once built — sharing is safe).
        # PlanCache is the library's thread-safe LRU; values here are
        # parsed Patterns keyed by raw DSL text.
        self._parse_cache = PlanCache(maxsize=512)

    @property
    def engine(self) -> QueryEngine:
        """The engine currently serving admissions (atomic to read)."""
        with self._engine_lock:
            return self._engine

    # -- admission -----------------------------------------------------------
    def admit(self, pattern, semantics: str = SUBGRAPH,
              limit: int | None = None) -> AdmittedQuery:
        """Admission control for one query.

        ``pattern`` is DSL text or a :class:`Pattern`. Raises
        :class:`~repro.errors.NotEffectivelyBounded` when no bounded plan
        exists and :class:`~repro.errors.AdmissionRejected` when the
        plan's worst-case access bound exceeds ``max_cost``; either way
        nothing touches the data graph.
        """
        self.metrics.record_request()
        with child_span("admission", semantics=semantics) as span:
            if isinstance(pattern, str):
                pattern = self._parse(pattern)
            if semantics not in SEMANTICS:
                raise ServerError(f"unknown semantics {semantics!r}; "
                                  f"expected one of {sorted(SEMANTICS)}")
            try:
                prepared = self.engine.prepare(pattern, semantics)
            except NotEffectivelyBounded:
                self.metrics.record_rejected("unbounded")
                raise
            admitted = self._finish_admission(prepared, pattern, semantics,
                                              limit)
            if span is not None:
                span.set(cost=admitted.cost)
            return admitted

    def _finish_admission(self, prepared: PreparedQuery, pattern: Pattern,
                          semantics: str, limit: int | None) -> AdmittedQuery:
        """The cost-budget half of admission, shared with the rescue
        path (which re-prepares under the rescue lock)."""
        cost = prepared.worst_case_total_accessed
        if self.max_cost is not None and cost > self.max_cost:
            self.metrics.record_rejected("over_budget")
            raise AdmissionRejected(
                f"query bound {cost:g} exceeds the admission budget "
                f"{self.max_cost:g} (worst-case data accessed; raise "
                f"--max-cost or tighten the pattern)",
                cost=cost, budget=self.max_cost)
        self.metrics.record_admitted()
        return AdmittedQuery(pattern=pattern, semantics=semantics, cost=cost,
                             prepared=prepared,
                             limit=self.answer_limit if limit is None
                             else limit)

    # -- rescue (online M-bounded extension) ---------------------------------
    @property
    def can_rescue(self) -> bool:
        """True when unbounded rejections go through the rescue pipeline."""
        return self.extend_budget is not None

    def rescue(self, pattern, semantics: str = SUBGRAPH,
               limit: int | None = None) -> AdmittedQuery:
        """Park-and-extend a query that admission rejected as unbounded.

        Blocking — the front-end calls this from the executor, off the
        event loop, while the requester's coroutine stays parked on the
        result. Under the rescue lock: re-check admission (a concurrent
        rescue may already have grown the schema far enough), otherwise
        plan the greedy minimum M-bounded extension under
        ``extend_budget``, build indexes for only the added constraints,
        publish the new catalog generation, and re-admit. Raises
        :class:`~repro.errors.NotEffectivelyBounded` when no extension
        within the budget (or the size cap) bounds the query — then the
        rejection really is final at this schema generation.
        """
        if not self.can_rescue:
            raise ServerError(
                "online schema extension is disabled (start the service "
                "with extend_budget / --extend-budget M)")
        if isinstance(pattern, str):
            pattern = self._parse(pattern)
        if semantics not in SEMANTICS:
            raise ServerError(f"unknown semantics {semantics!r}; "
                              f"expected one of {sorted(SEMANTICS)}")
        failure_key = (pattern_fingerprint(pattern)[0], semantics)
        failed_at = self._rescue_failures.get(failure_key)
        if failed_at is not None \
                and failed_at == self.engine.schema_version:
            # Known unrescuable at this generation: fail fast without
            # re-planning (and without touching the rescue lock).
            self.metrics.record_rescue_failed()
            raise NotEffectivelyBounded(
                f"not effectively bounded, and not rescuable within "
                f"extend-budget {self.extend_budget} (cached verdict at "
                f"schema v{failed_at})")
        with self._rescue_lock, child_span("rescue",
                                           budget=self.extend_budget) as rsp:
            engine = self.engine
            try:
                prepared = engine.prepare(pattern, semantics)
                # A rescue that landed while we waited covers this
                # query: re-admit with nothing new to build. Counted as
                # rescued only once admission (the cost budget) accepts.
                admitted = self._finish_admission(prepared, pattern,
                                                  semantics, limit)
                self.metrics.record_rescued(0)
                if rsp is not None:
                    rsp.set(constraints_added=0, piggybacked=True)
                return admitted
            except NotEffectivelyBounded:
                pass
            try:
                with child_span("plan_extension"):
                    plan = plan_extension(engine, [pattern],
                                          m=self.extend_budget,
                                          semantics=semantics,
                                          max_added=self.extend_max_added)
                with child_span("extend_schema",
                                added=len(plan.added)):
                    report = engine.extend_schema(
                        plan.added,
                        provenance={"origin": "rescue", "m": plan.m,
                                    "query": pattern.name or "query",
                                    "semantics": semantics})
            except ExtensionError as exc:
                self._rescue_failures.put(failure_key,
                                          engine.schema_version)
                self.metrics.record_rescue_failed()
                raise NotEffectivelyBounded(
                    f"not effectively bounded, and not rescuable within "
                    f"extend-budget {self.extend_budget}: {exc}") from exc
            prepared = engine.prepare(pattern, semantics)
            # record_rescued only after the cost-budget half accepts:
            # "rescued" means re-admitted, not merely bounded — an
            # over-budget rescue is an AdmissionRejected, and counting
            # it rescued would fake the bounded_fraction.
            admitted = self._finish_admission(prepared, pattern, semantics,
                                              limit)
            self.metrics.record_rescued(len(report.added))
            if rsp is not None:
                rsp.set(constraints_added=len(report.added),
                        schema_version=engine.schema_version)
            return admitted

    def _parse(self, text: str) -> Pattern:
        pattern = self._parse_cache.get(text)
        if pattern is None:
            pattern = parse_pattern(text)
            self._parse_cache.put(text, pattern)
        return pattern

    # -- execution -----------------------------------------------------------
    def execute_batch(self, requests: list[AdmittedQuery]) -> list:
        """Run one micro-batch on a worker thread.

        The whole batch funnels through ``engine.query_batch``, so
        duplicate patterns (the common case under concurrency) are
        executed once. Returns one response body dict *or* exception per
        request, aligned with the input — a request that fails (e.g. it
        became unbounded after a reload swapped schemas) does not poison
        its batch-mates.
        """
        engine = self._acquire_engine()
        self.metrics.record_batch(len(requests))
        # Tracing crosses the thread boundary explicitly: the first
        # traced request's root span hosts the batch span (and the wave
        # and shard-RPC spans execution emits under it); batch-mates
        # riding the same execution link to it by trace id.
        primary = next((r.span for r in requests if r.span is not None), None)
        try:
            with activate(primary), \
                    child_span("batch", size=len(requests)) as bsp:
                if bsp is not None:
                    for request in requests:
                        if request.span is not None \
                                and request.span.trace is not primary.trace:
                            request.span.set(batched_into=primary.trace_id)
                try:
                    runs = engine.query_batch(
                        [(r.pattern, r.semantics) for r in requests])
                    return [self._serialize_safe(request, run)
                            for request, run in zip(requests, runs)]
                except ReproError:
                    return [self._execute_one(engine, request)
                            for request in requests]
        finally:
            self._release_engine(engine)

    def _acquire_engine(self) -> QueryEngine:
        """The current engine, pinned against close-on-reload until the
        matching :meth:`_release_engine`."""
        with self._engine_lock:
            engine = self._engine
            key = id(engine)
            self._engine_refs[key] = self._engine_refs.get(key, 0) + 1
            return engine

    def _release_engine(self, engine: QueryEngine) -> None:
        to_close = None
        with self._engine_lock:
            key = id(engine)
            remaining = self._engine_refs.get(key, 1) - 1
            if remaining:
                self._engine_refs[key] = remaining
            else:
                self._engine_refs.pop(key, None)
                to_close = self._retired.pop(key, None)
        if to_close is not None:
            to_close.close()

    def _execute_one(self, engine: QueryEngine, request: AdmittedQuery):
        try:
            run = engine.query(request.pattern, request.semantics)
        except ReproError as exc:
            return exc
        return self._serialize_safe(request, run)

    def _serialize_safe(self, request: AdmittedQuery, run):
        """Serialize one answer; any failure stays that one request's
        failure (a bad request must never poison its batch-mates)."""
        try:
            return self._serialize(request, run)
        except Exception as exc:  # noqa: BLE001 — contained per request
            return exc

    def _serialize(self, request: AdmittedQuery, run) -> dict:
        """JSON body for one answered query (the ``id``/``ok`` envelope
        and latency accounting belong to the front-end)."""
        # Bound telemetry: the admitted worst-case bound vs what this
        # execution actually touched — the tightness of the paper's
        # promise, per answered query, tracing on or off.
        self.metrics.record_bound(request.cost, run.stats.total_accessed)
        if request.span is not None:
            request.span.set(bound=request.cost,
                             accessed=run.stats.total_accessed)
        body = {"semantics": request.semantics, "cost": request.cost,
                "accessed": run.stats.total_accessed}
        if request.semantics == SUBGRAPH:
            matches = run.answer
            body["answer_count"] = len(matches)
            body["matches"] = [
                {str(u): v for u, v in sorted(match.items())}
                for match in matches[:max(request.limit, 0)]]
        else:
            pairs = sorted(relation_pairs(run.answer))
            body["answer_count"] = len(pairs)
            body["pairs"] = [list(pair)
                             for pair in pairs[:max(request.limit, 0)]]
        return body

    @staticmethod
    def _capture_remote_config(engine: QueryEngine) -> dict | None:
        """Fleet settings of a remote-backed session, if it is one."""
        from repro.engine.parallel import RemoteShardBackend

        backend = getattr(engine, "_shards", None)
        if not isinstance(backend, RemoteShardBackend):
            return None
        return {"shard_addrs": list(backend.shard_addrs),
                "connect_timeout": backend.connect_timeout,
                "request_timeout": backend.request_timeout,
                "retries": backend.retries,
                "retry_backoff_s": backend.retry_backoff_s,
                "owner_routing": backend.router is not None}

    # -- hot reload ----------------------------------------------------------
    def reload_artifact(self, path, *, validate: bool = False) -> dict:
        """Swap serving onto a newly compiled artifact without dropping
        in-flight requests.

        Loads the artifact (the expensive part happens *before* the
        swap, off the serving path), then atomically replaces the engine
        reference: batches already dispatched finish on the snapshot
        they started on, later admissions and batches use the new one.
        Raises the usual artifact errors
        (:class:`~repro.errors.ArtifactCorrupt`, ...) and leaves the old
        engine serving when the load fails.

        A remote-backed session reloads in two phases: first every shard
        server is told to re-read its shard from disk
        (:meth:`~repro.engine.parallel.RemoteShardBackend.reload_fleet`),
        then the front-end re-opens and re-handshakes against the
        reloaded fleet — the reverse order would fail the checksum
        handshake against still-stale servers.
        """
        from repro.engine.persist import artifact_layout

        sharded = artifact_layout(path) == "sharded"
        if self._remote_config is not None and sharded:
            from repro.engine.parallel import RemoteShardBackend

            current = getattr(self._engine, "_shards", None)
            if isinstance(current, RemoteShardBackend):
                current.reload_fleet()
            engine = QueryEngine.open_path(path, frozen=True,
                                           validate=validate,
                                           backend="remote",
                                           **self._remote_config)
        else:
            # The configured worker-process count applies whenever the
            # target is sharded; a single-layout target opens inline (a
            # reload must stay total across layout transitions) without
            # forgetting the configuration.
            workers = self._exec_workers if sharded else 0
            engine = QueryEngine.open_path(path, frozen=True,
                                           validate=validate,
                                           workers=workers)
        to_close = None
        with self._engine_lock:
            old = self._engine
            self._engine = engine
            if old is not engine:
                if self._engine_refs.get(id(old)):
                    # Batches already dispatched finish on the old
                    # snapshot; its worker pool closes when the last
                    # one drains (see _release_engine).
                    self._retired[id(old)] = old
                else:
                    to_close = old
        if to_close is not None:
            to_close.close()
        # A different artifact is a different graph: cached rescue
        # failures recorded against the old engine's generations would
        # wrongly fast-fail queries the new graph can rescue.
        self._rescue_failures.clear()
        self.metrics.record_reload()
        return {"artifact": str(path), "nodes": engine.graph.num_nodes,
                "edges": engine.graph.num_edges,
                "constraints": len(engine.schema),
                "schema_version": engine.schema_version,
                "cached_plans": len(engine.plan_cache)}

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release the serving engine's shard worker pool — and any
        pools still held by engines retired through reloads (the CLI
        calls this after a clean shutdown; idempotent)."""
        with self._engine_lock:
            retired = list(self._retired.values())
            self._retired.clear()
        for engine in retired:
            engine.close()
        self.engine.close()

    # -- inspection ----------------------------------------------------------
    def snapshot(self, queue_depth: int = 0) -> dict:
        """The ``metrics`` endpoint payload: live counters + latency
        percentiles + engine/cache context — plus, on a sharded session,
        the backend's scatter accounting, and on a remote fleet the
        per-shard server snapshots gathered over the wire (so one
        ``metrics`` call observes the whole topology)."""
        engine = self.engine
        doc = self.metrics.snapshot()
        doc.update(self._fleet_snapshot(engine))
        if self.tracer is not None:
            doc["tracing"] = self.tracer.snapshot()
        cache = engine.cache_info()
        lookups = cache["hits"] + cache["misses"]
        doc.update({
            "queue_depth": queue_depth,
            "workers": self.workers,
            "max_batch": self.max_batch,
            "batch_window_ms": self.batch_window_ms,
            "max_queue": self.max_queue,
            "max_cost": self.max_cost,
            "extend_budget": self.extend_budget,
            "schema_version": engine.schema_version,
            "plan_cache": {**cache,
                           "hit_rate": (cache["hits"] / lookups)
                           if lookups else 0.0},
            "engine": {"nodes": engine.graph.num_nodes,
                       "edges": engine.graph.num_edges,
                       "constraints": len(engine.schema),
                       "schema_version": engine.schema_version,
                       "frozen": engine.frozen,
                       "sharded": engine.sharded,
                       "exec_workers": engine.exec_workers,
                       "artifact": (str(engine.artifact_path)
                                    if engine.artifact_path else None)},
        })
        return doc

    @staticmethod
    def _fleet_snapshot(engine: QueryEngine) -> dict:
        """Backend scatter accounting, plus per-shard server snapshots
        fanned out over the wire when the backend is remote. A shard
        whose metrics round fails degrades to an error entry — telemetry
        must never take the service down with it."""
        from repro.engine.parallel import RemoteShardBackend, ShardBackend

        backend = getattr(engine, "_shards", None)
        if not isinstance(backend, ShardBackend):
            return {}
        doc: dict = {"backend": {
            "kind": type(backend).__name__,
            "num_shards": backend.num_shards,
            "workers": backend.workers,
            "owner_routing": backend.router is not None,
            "scatter_rounds": backend.scatter_rounds,
            "tasks_scattered": backend.tasks_scattered,
            "scatter_messages": backend.scatter_messages,
            "scatter_messages_broadcast": backend.scatter_messages_broadcast,
            "rounds_overlapped": backend.rounds_overlapped,
            "scatter_dedup_hits": backend.scatter_dedup_hits,
        }}
        if isinstance(backend, RemoteShardBackend):
            doc["backend"]["reconnects"] = backend.reconnects
            wire = backend.wire_stats()
            doc["backend"]["wire"] = {
                "codec": backend.wire_codec,
                "bytes_sent": sum(w["bytes_sent"] for w in wire),
                "bytes_received": sum(w["bytes_received"] for w in wire),
                "encode_ms": round(sum(w["encode_ms"] for w in wire), 3),
            }
            doc["backend"]["wire_by_shard"] = wire
            try:
                doc["shards"] = backend.shard_metrics()
            except ReproError as exc:
                doc["shards"] = [{"error": f"{type(exc).__name__}: {exc}"}]
        return doc
