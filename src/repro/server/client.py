"""Synchronous client library for the query service.

:class:`ServeClient` speaks the JSON-lines protocol over one TCP
connection and re-raises the service's typed errors
(:class:`~repro.errors.AdmissionRejected`,
:class:`~repro.errors.DeadlineExceeded`,
:class:`~repro.errors.NotEffectivelyBounded`, ...). One client instance
is one connection and is **not** thread-safe — concurrent load uses one
client per thread (see :func:`run_load`).

As a script, this module is the load client the CI smoke job drives
against a background ``repro serve``::

    python -m repro.server.client --port 8642 --pattern q.pat \\
        --requests 50 --clients 4 --metrics --shutdown
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field

from repro.core.actualized import SUBGRAPH
from repro.errors import ServerError
from repro.pattern.dsl import format_pattern
from repro.pattern.pattern import Pattern
from repro.server import protocol


@dataclass
class ServeResult:
    """One answered query."""

    semantics: str
    answer_count: int
    cost: float
    accessed: int
    #: Up to ``limit`` matches (subgraph: ``{pattern_node: data_node}``)
    #: or pairs (simulation: ``(pattern_node, data_node)``).
    matches: list = field(default_factory=list)
    latency_s: float = 0.0


class ServeClient:
    """One connection to a :mod:`repro.server` service.

    ``connect_timeout`` retries the TCP connect until the deadline — the
    server may still be binding when a client races it up (the CI smoke
    flow starts both back to back).
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT, *,
                 timeout: float = 30.0, connect_timeout: float = 5.0):
        self.host = host
        self.port = port
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0
        try:
            self._sock = protocol.connect_retry(
                host, port, timeout=timeout, connect_timeout=connect_timeout)
        except OSError:
            raise ServerError(
                f"cannot connect to {host}:{port} within "
                f"{connect_timeout:g}s — is the server running?") from None
        self._file = self._sock.makefile("rb")

    # -- plumbing ------------------------------------------------------------
    def _call(self, doc: dict) -> dict:
        if self._sock is None:
            raise ServerError("client is closed")
        self._next_id += 1
        doc = {"id": self._next_id, **doc}
        self._sock.sendall(protocol.encode(doc))
        try:
            response = protocol.read_frame(self._file)
        except EOFError:
            raise ServerError("server closed the connection") from None
        if response.get("id") != doc["id"]:
            raise ServerError(
                f"response id {response.get('id')!r} does not match "
                f"request id {doc['id']!r}")
        if not response.get("ok"):
            protocol.raise_error(response)
        return response

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._file.close()
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._file = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- operations ----------------------------------------------------------
    def query(self, pattern, semantics: str = SUBGRAPH, *,
              deadline_ms: float | None = None,
              limit: int | None = None) -> ServeResult:
        """Evaluate a pattern (DSL text or a :class:`Pattern`).

        Raises the same typed errors the service does; in particular an
        over-budget query surfaces as
        :class:`~repro.errors.AdmissionRejected` with ``cost``/``budget``
        filled in.
        """
        if isinstance(pattern, Pattern):
            pattern = format_pattern(pattern)
        doc = {"op": "query", "pattern": pattern, "semantics": semantics}
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        if limit is not None:
            doc["limit"] = limit
        start = time.perf_counter()
        response = self._call(doc)
        latency = time.perf_counter() - start
        return ServeResult(
            semantics=response["semantics"],
            answer_count=response["answer_count"],
            cost=response["cost"],
            accessed=response["accessed"],
            matches=[{int(u): v for u, v in match.items()}
                     for match in response.get("matches", [])]
            if "matches" in response
            else [tuple(pair) for pair in response.get("pairs", [])],
            latency_s=latency)

    def metrics(self) -> dict:
        """The live metrics snapshot (qps, latency percentiles, cache
        hit rate, rejection counts, queue depth, engine info)."""
        response = self._call({"op": "metrics"})
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    def ping(self) -> bool:
        return self._call({"op": "ping"}).get("op") == "pong"

    def reload(self, artifact) -> dict:
        """Hot-swap the service onto a newly compiled artifact."""
        response = self._call({"op": "reload", "artifact": str(artifact)})
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    def shutdown(self) -> bool:
        """Ask the server to drain and exit cleanly."""
        return self._call({"op": "shutdown"}).get("op") == "shutdown"


def run_load(host: str, port: int, patterns: list[str], *,
             requests: int = 50, clients: int = 4,
             semantics: str = SUBGRAPH, limit: int = 5,
             connect_timeout: float = 10.0) -> dict:
    """Drive ``requests`` round-robin queries from each of ``clients``
    concurrent connections; returns aggregate latencies and counts.

    Used by the serve bench and the CI smoke job. Each thread owns its
    connection; any error in any thread propagates.
    """
    import threading

    latencies: list[list[float]] = [[] for _ in range(clients)]
    answers: list[int] = [0] * clients
    errors: list[BaseException | None] = [None] * clients

    def worker(slot: int) -> None:
        try:
            with ServeClient(host, port,
                             connect_timeout=connect_timeout) as client:
                for i in range(requests):
                    pattern = patterns[(slot + i) % len(patterns)]
                    result = client.query(pattern, semantics, limit=limit)
                    latencies[slot].append(result.latency_s)
                    answers[slot] += result.answer_count
        except BaseException as exc:  # noqa: BLE001 — reported by the driver
            errors[slot] = exc

    threads = [threading.Thread(target=worker, args=(slot,), daemon=True)
               for slot in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    for error in errors:
        if error is not None:
            raise error
    all_latencies = [lat for per_client in latencies for lat in per_client]
    return {"clients": clients, "requests": len(all_latencies),
            "seconds": elapsed,
            "qps": len(all_latencies) / elapsed if elapsed else 0.0,
            "latencies_s": all_latencies, "answers": sum(answers)}


def main(argv: list[str] | None = None) -> int:
    import argparse
    from pathlib import Path

    from repro.bench.reporting import latency_summary

    parser = argparse.ArgumentParser(
        description="Load client for a running `repro serve` instance")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=protocol.DEFAULT_PORT)
    parser.add_argument("--pattern", action="append", required=True,
                        help="pattern file (DSL text); repeatable — "
                             "requests round-robin across patterns")
    parser.add_argument("--requests", type=int, default=50,
                        help="queries per client connection")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client connections")
    parser.add_argument("--semantics", default=SUBGRAPH)
    parser.add_argument("--connect-timeout", type=float, default=10.0,
                        help="seconds to keep retrying the first connect")
    parser.add_argument("--metrics", action="store_true",
                        help="print the server metrics snapshot afterwards")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to shut down cleanly at the end")
    args = parser.parse_args(argv)

    patterns = [Path(path).read_text(encoding="utf-8")
                for path in args.pattern]
    report = run_load(args.host, args.port, patterns,
                      requests=args.requests, clients=args.clients,
                      semantics=args.semantics,
                      connect_timeout=args.connect_timeout)
    summary = latency_summary(report["latencies_s"])
    print(f"load: {report['requests']} requests from {report['clients']} "
          f"clients in {report['seconds']:.2f}s = {report['qps']:.0f} qps")
    print(f"latency ms: p50={summary['p50_ms']:.2f} "
          f"p90={summary['p90_ms']:.2f} p99={summary['p99_ms']:.2f} "
          f"max={summary['max_ms']:.2f}")
    with ServeClient(args.host, args.port,
                     connect_timeout=args.connect_timeout) as client:
        if args.metrics:
            from repro.obs.report import render_metrics_table
            print(render_metrics_table(client.metrics()))
        if args.shutdown:
            client.shutdown()
            print("server shutdown requested")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
