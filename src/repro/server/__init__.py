"""Concurrent query service over a compiled engine (the serve side).

The paper's bound makes a query's data cost known *before* execution —
``PreparedQuery.worst_case_total_accessed`` is the size of the fragment
a plan can touch, as a function of ``Q`` and ``A`` only. This package
turns that into a serving discipline:

* :class:`~repro.server.service.QueryService` — worker pool sharing one
  frozen :class:`~repro.engine.engine.QueryEngine`, micro-batching
  through ``query_batch``, **cost-based admission control** (queries
  whose bound exceeds the budget are rejected with
  :class:`~repro.errors.AdmissionRejected`, never silently executed
  unbounded), per-request deadlines, live metrics, hot artifact reload.
* :class:`~repro.server.server.QueryServer` — asyncio JSON-lines TCP
  front-end; :class:`~repro.server.server.ServerThread` runs one in a
  background thread (tests, benches, embedding).
* :class:`~repro.server.client.ServeClient` — small synchronous client
  library re-raising the service's typed errors.

``repro serve`` (:mod:`repro.cli`) is the command-line entry point; see
DESIGN.md ("Serving architecture") for the worker model and the reload
protocol.
"""

from repro.server.client import ServeClient, ServeResult
from repro.server.server import QueryServer, ServerThread
from repro.server.service import QueryService

__all__ = [
    "QueryServer",
    "QueryService",
    "ServeClient",
    "ServeResult",
    "ServerThread",
]
