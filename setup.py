"""Packaging for the ``repro`` library (src layout, pure Python).

numpy is a declared runtime dependency because the engine's default
execution strategy is the vectorized array-kernel executor
(``repro/core/kernels.py``). It is still an *optional* fast path at
runtime: without numpy the library imports cleanly and the engine
auto-selects the sequential executor with identical answers and
accounting (the ``tests-no-numpy`` CI job pins this), so constrained
environments can strip the dependency.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Bounded pattern queries in big graphs — an ICDE 2015 "
                "reproduction with a query-serving engine",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
