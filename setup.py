"""Setup shim for legacy editable installs.

All metadata lives in pyproject.toml; this file exists so environments
without the ``wheel`` package (no PEP 660 backend) can still run
``pip install -e .`` through setuptools' develop path.
"""

from setuptools import setup

setup()
