"""Online M-bounded extension: rescue unbounded queries without a restart.

The paper's Section V makes unbounded queries bounded by extending the
access schema with constraints whose bounds are at most M (an M-bounded
extension A_M). This walkthrough runs that machinery *online*, twice:

1. engine-level — a frozen session rejects a query, `plan_extension`
   finds the greedy minimum extension, `extend_schema` builds indexes
   for only the added constraints and publishes a new catalog
   generation, and the same query now answers;
2. server-level — a `QueryService` started with an extend budget parks
   the rejected query, extends off the serving path, re-admits it, and
   the `metrics` op shows the new schema generation and the workload
   bounded-fraction.

Run with ``PYTHONPATH=src python examples/extend_rescue.py``.
"""

from repro.constraints.schema import AccessSchema
from repro import connect
from repro.engine import plan_extension
from repro.errors import NotEffectivelyBounded
from repro.graph.generators import imdb_like
from repro.pattern import parse_pattern
from repro.server import QueryService, ServeClient, ServerThread

UNBOUNDED = "a: actor; c: country; a -> c"


def engine_level() -> None:
    graph, schema = imdb_like(scale=0.02, seed=7)
    engine = connect((graph, AccessSchema(list(schema))))
    query = parse_pattern(UNBOUNDED, name="lone-actor")

    try:
        engine.query(query)
    except NotEffectivelyBounded as exc:
        print(f"rejected at schema v{engine.schema_version}: {exc}")

    plan = plan_extension(engine, [query])
    print(f"minimum extension at M={plan.m}: "
          f"{', '.join(str(c) for c in plan.added)}")
    report = engine.extend_schema(
        plan.added, provenance={"origin": "example", "m": plan.m})
    print(f"extended to schema v{report.version}: built {report.built} "
          f"indexes (+{report.added_cells} cells) in "
          f"{report.build_seconds * 1000:.1f} ms")

    run = engine.query(query)
    print(f"rescued: {len(run.answer)} matches, "
          f"{run.stats.total_accessed} items accessed\n")


def server_level() -> None:
    graph, schema = imdb_like(scale=0.02, seed=7)
    engine = connect((graph, AccessSchema(list(schema))))
    service = QueryService(engine, workers=2, extend_budget=10 ** 6)
    with ServerThread(service) as handle:
        with ServeClient(handle.host, handle.port) as client:
            before = client.metrics()
            print(f"serving schema v{before['schema_version']}")
            result = client.query(UNBOUNDED)
            print(f"parked -> extended -> answered: "
                  f"{result.answer_count} matches")
            after = client.metrics()
            print(f"metrics: schema v{after['schema_version']}, "
                  f"rescued={after['rescued']}, "
                  f"bounded_fraction={after['bounded_fraction']:.2f}")


if __name__ == "__main__":
    engine_level()
    server_level()
