"""Compile -> serve -> query: the concurrent query service end to end.

The paper's bound is an *admission-control signal*: a compiled plan
declares the worst-case amount of data it can touch before it fetches
anything, so a service can guarantee per-query cost up front — reject
what would be expensive, serve everything else at high concurrency from
one shared frozen engine.

This example plays all three roles in one process:

1. **Compile** — build an engine over the IMDb stand-in, pre-compile the
   workload's shapes, persist the artifact (``repro compile``).
2. **Serve** — start the query service on a background thread,
   warm-started from the artifact, with a cost budget
   (``repro serve --artifact ... --max-cost ...``).
3. **Query** — drive it with the client library: admitted queries,
   an over-budget rejection, a live metrics snapshot, and a hot reload.

Run with::

    PYTHONPATH=src python examples/serve_quickstart.py

See examples/README.md for the equivalent CLI commands.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import connect
from repro.errors import AdmissionRejected
from repro.pattern import parse_pattern
from repro.server import QueryService, ServeClient, ServerThread

WORKLOAD = {
    "movie-year": "m: movie; y: year; m -> y",
    "awarded-movie": "aw: award; m: movie; y: year; m -> aw; m -> y",
}

#: Deliberately more expensive than the budget below: three fetch hops.
EXPENSIVE = ("aw: award; m: movie; a: actor; y: year; "
             "m -> aw; m -> a; m -> y")


def main() -> None:
    from repro.graph.generators import imdb_like

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        artifact = Path(tmp) / "imdb"

        # 1. Compile: pay snapshot + index build + planning once.
        graph, schema = imdb_like(scale=0.02, seed=7)
        compiler = connect((graph, schema))
        for text in WORKLOAD.values():
            compiler.prepare(parse_pattern(text))
        compiler.save(artifact)
        budget = max(
            compiler.prepare(parse_pattern(t)).worst_case_total_accessed
            for t in WORKLOAD.values())
        print(f"compiled {artifact.name}: {graph.num_nodes} nodes, "
              f"budget = {budget:g} (the workload's own worst bound)\n")

        # 2. Serve: warm-start from the artifact, enforce the budget.
        service = QueryService(connect(artifact),
                               max_cost=budget, workers=2)
        with ServerThread(service) as handle:
            print(f"serving on {handle.host}:{handle.port}\n")
            with ServeClient(handle.host, handle.port) as client:
                # 3a. Admitted queries: bound checked, then executed.
                for name, text in WORKLOAD.items():
                    result = client.query(text, limit=3)
                    print(f"{name}: {result.answer_count} matches, "
                          f"bound {result.cost:g}, "
                          f"accessed {result.accessed} items")

                # 3b. Over budget: typed rejection, nothing executed.
                try:
                    client.query(EXPENSIVE)
                except AdmissionRejected as exc:
                    print(f"\nrejected: bound {exc.cost:g} > "
                          f"budget {exc.budget:g} "
                          f"(typed {type(exc).__name__})")

                # 3c. Live metrics — same table `repro metrics` prints.
                from repro.obs import render_metrics_table
                print("\n" + render_metrics_table(client.metrics()))

                # 3d. Hot reload: recompile and swap without downtime.
                compiler.save(artifact)
                info = client.reload(artifact)
                print(f"reloaded artifact in place: "
                      f"{info['cached_plans']} cached plans, "
                      f"in-flight requests unaffected")
                client.shutdown()
        print("\nserver drained and stopped cleanly")


if __name__ == "__main__":
    main()
