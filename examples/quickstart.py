#!/usr/bin/env python3
"""Quickstart: the paper's workflow in ~40 lines.

1. Build (or load) a data graph and an access schema it satisfies.
2. Open a ``QueryEngine`` session: the graph is snapshotted and the
   schema indexes are built once.
3. Ask whether your pattern query is effectively bounded (EBChk).
4. Evaluate it: the engine compiles a worst-case-optimal plan (QPlan),
   caches it, and fetches only the bounded subgraph G_Q (bVF2).

Run:  python examples/quickstart.py
"""

from repro import connect, ebchk, find_matches
from repro.graph.generators import imdb_like
from repro.pattern import parse_pattern


def main() -> None:
    # A movie graph that satisfies the paper's IMDb access constraints.
    graph, schema = imdb_like(scale=0.05, seed=1)
    print(f"data graph: {graph}")
    print(f"access schema: {len(schema)} constraints, |A| = {schema.total_length}")

    # One session: snapshot + index build happen here, once.
    engine = connect((graph, schema))

    # "Find actor/actress pairs from the same country who co-starred in an
    #  award-winning film released 2011-2013" — the paper's Q0 (Fig. 1).
    query = parse_pattern(
        """
        aw: award;  y: year;  m: movie
        a: actor;  s: actress;  c: country
        m -> aw;  m -> y;  m -> a;  m -> s
        a -> c;  s -> c
        y.value >= 2011;  y.value <= 2013
        """,
        name="Q0")

    # Step 1: is Q0 effectively bounded under the schema?
    verdict = ebchk(query, schema)
    print(f"\nEBChk: {verdict.explain()}")

    # Step 2: compile once — EBChk + QPlan, cached by pattern form.
    prepared = engine.prepare(query)
    print(f"\n{prepared.plan.describe()}")

    # Step 3: evaluate through the indexes — time depends on Q and A only.
    run = engine.query(query)
    print(f"\nbVF2 found {len(run.answer)} matches while accessing "
          f"{run.stats.total_accessed} of |G| = {graph.size} items "
          f"({100 * run.stats.total_accessed / graph.size:.2f}%)")

    # Asking again is a plan-cache hit and reuses the memoized answer.
    engine.query(query)
    print(f"asked twice, planned once: {engine.cache_info()}")

    # Sanity: identical to evaluating on the whole graph.
    direct = find_matches(query, graph)
    assert {frozenset(m.items()) for m in run.answer} == \
           {frozenset(m.items()) for m in direct}
    print(f"direct VF2 over all of G agrees: {len(direct)} matches")

    pairs = {(run.gq.value_of(m[3]), run.gq.value_of(m[4]))
             for m in run.answer}
    for actor, actress in sorted(pairs)[:5]:
        print(f"  co-starred pair: {actor} / {actress}")


if __name__ == "__main__":
    main()
