#!/usr/bin/env python3
"""Simulation queries: non-localized matching with bounded evaluation.

Recreates the paper's Section VI narrative (Examples 2, 8-11): pattern Q1
is *not* effectively bounded for graph simulation — deciding a match may
require walking a cycle as large as the graph — while Q2 (two edges
reversed) is, and its plan touches a constant 8 nodes + 12 edges no
matter how big the cycle grows.

Each cycle size gets its own ``QueryEngine`` session, but the sessions
share one plan cache: Q2 is compiled exactly once for the whole sweep.

Run:  python examples/social_simulation.py
"""

from repro import (
    AccessConstraint,
    AccessSchema,
    AccessStats,
    Graph,
    Pattern,
    PlanCache,
    connect,
    sebchk,
    simulate,
)
from repro.core.actualized import SIMULATION
from repro.matching.simulation import relation_pairs


def build_q1() -> Pattern:
    q1 = Pattern(name="Q1")
    a = q1.add_node("A")
    b = q1.add_node("B")
    c = q1.add_node("C")
    d = q1.add_node("D")
    q1.add_edge(a, b)
    q1.add_edge(b, a)
    q1.add_edge(c, b)
    q1.add_edge(d, b)
    return q1


def build_g1(n: int) -> Graph:
    """Fig. 2's G1: an A/B cycle of length 2n, with C and D attached."""
    g = Graph()
    cycle = [g.add_node("A" if i % 2 == 0 else "B") for i in range(2 * n)]
    for i in range(2 * n):
        g.add_edge(cycle[i], cycle[(i + 1) % (2 * n)])
    c = g.add_node("C")
    d = g.add_node("D")
    g.add_edge(c, cycle[-1])
    g.add_edge(d, cycle[-1])
    return g


def main() -> None:
    schema = AccessSchema([
        AccessConstraint(("B",), "A", 2),        # φA
        AccessConstraint(("C", "D"), "B", 2),    # φB
        AccessConstraint((), "C", 1),            # φC
        AccessConstraint((), "D", 1),            # φD
    ])
    q1 = build_q1()
    q2 = q1.reversed_edges([(2, 1), (3, 1)])
    q2.name = "Q2"

    print("Q1:", sebchk(q1, schema).explain())
    print("Q2:", sebchk(q2, schema).explain())

    # One plan cache for every cycle size — sQPlan runs once.
    plan_cache = PlanCache()
    engine = connect((build_g1(2), schema), plan_cache=plan_cache)
    plan = engine.prepare(q2, SIMULATION).plan
    print(f"\n{plan.describe()}\n")

    print("Scaling the cycle: bounded evaluation touches the same data,")
    print("while direct simulation inspects the whole graph:")
    print(f"{'cycle n':>8} | {'|G|':>6} | {'bSim accessed':>13} | "
          f"{'answer':>7}")
    for n in (5, 50, 500):
        g1 = build_g1(n)
        session = connect((g1, schema), plan_cache=plan_cache)
        stats = AccessStats()
        run = session.query(q2, SIMULATION, stats=stats)
        direct = simulate(q2, g1)
        assert relation_pairs(run.answer) == relation_pairs(direct)
        answer = "empty" if not relation_pairs(run.answer) else "match"
        print(f"{n:>8} | {g1.size:>6} | {stats.total_accessed:>13} | "
              f"{answer:>7}")
    print(f"plan cache after the sweep: {plan_cache.info()}")

    # And a graph where Q2 does match:
    g = Graph()
    a = g.add_node("A")
    b = g.add_node("B")
    c = g.add_node("C")
    d = g.add_node("D")
    for edge in [(a, b), (b, a), (b, c), (b, d)]:
        g.add_edge(*edge)
    run = connect((g, schema), plan_cache=plan_cache).query(
        q2, SIMULATION)
    print(f"\nOn a satisfying graph, the maximum match relation is:")
    for u, matches in sorted(run.answer.items()):
        print(f"  pattern node {u} ({q2.label_of(u)}) -> data nodes {sorted(matches)}")


if __name__ == "__main__":
    main()
