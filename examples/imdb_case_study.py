#!/usr/bin/env python3
"""Example 1 of the paper, end to end, with its exact arithmetic.

Builds the IMDb-style graph, restricts the schema to the paper's A0
(constraints φ1-φ6 of Example 3), and walks through the query plan for Q0
step by step, printing the worst-case bounds next to the actual access
counts (the paper's 17 923 nodes / 35 136 edges).

Both graphs are served through ``QueryEngine`` sessions that share one
plan cache — the plan is compiled once and reused on the doubled graph,
which is the engine-level form of the paper's "cost depends on Q and A
only" claim.

Run:  python examples/imdb_case_study.py
"""

from repro import AccessSchema, AccessStats, PlanCache, connect
from repro.graph.generators import imdb_like
from repro.pattern import parse_pattern

Q0 = """
aw: award;  y: year;  m: movie
a: actor;  s: actress;  c: country
m -> aw;  m -> y;  m -> a;  m -> s
a -> c;  s -> c
y.value >= 2011;  y.value <= 2013
"""


def main() -> None:
    graph, full_schema = imdb_like(scale=0.05, seed=1)
    # A0 = φ1..φ6 (the first 8 constraints; φ2/φ3 are pairs).
    a0 = AccessSchema(list(full_schema)[:8])
    print("Access schema A0 (Example 3):")
    for constraint in a0:
        print(f"  {constraint}")

    plan_cache = PlanCache()
    engine = connect((graph, a0), plan_cache=plan_cache)
    query = parse_pattern(Q0, name="Q0")
    prepared = engine.prepare(query)
    plan = prepared.plan

    print("\nWorst-case plan arithmetic (Example 1 / Example 6):")
    labels = {u: query.label_of(u) for u in query.nodes()}
    for op in plan.ops:
        print(f"  fetch {labels[op.target]:8s} via {str(op.constraint):34s}"
              f" fetches <= {int(op.fetch_bound):6d},"
              f" |cmat| <= {int(op.size_bound):6d}")
    print(f"  total nodes fetched <= {int(plan.worst_case_nodes_fetched)}"
          f"  (paper: 17923)")
    print(f"  total edges checked <= {int(plan.worst_case_edges_checked)}"
          f"  (paper: 35136)")
    print(f"  |GQ| nodes          <= {int(plan.worst_case_gq_nodes)}"
          f"  (paper: 17791)")

    stats = AccessStats()
    result = prepared.execute(stats=stats)
    print(f"\nActual execution on {graph}:")
    print(f"  nodes fetched: {stats.nodes_fetched}")
    print(f"  edges checked: {stats.edges_checked}")
    print(f"  G_Q: {result.gq}")

    run = prepared.run()
    print(f"  matches: {len(run.answer)}")
    share = 100 * stats.total_accessed / graph.size
    print(f"  accessed {share:.2f}% of |G| — and this number is flat in |G|:")

    # Demonstrate scale independence: double the graph, same access bound.
    # The second session shares the plan cache, so Q0 is not re-planned.
    bigger, _ = imdb_like(scale=0.1, seed=1)
    big_engine = connect((bigger, a0), plan_cache=plan_cache)
    stats_big = AccessStats()
    big_engine.query(query, stats=stats_big)
    print(f"  on a graph of size {bigger.size} (vs {graph.size}): "
          f"accessed {stats_big.total_accessed} vs {stats.total_accessed} items")
    print(f"  shared plan cache: {plan_cache.info()}")


if __name__ == "__main__":
    main()
