#!/usr/bin/env python3
"""Discovering an access schema from raw data, then querying with it.

The paper (Section II, "Discovering access constraints") mines constraints
from degree bounds, label frequencies, FDs and aggregates. This example
starts from a *bare graph* — no schema — and walks the full pipeline:

1. profile the graph (where would constraints come from?);
2. discover a schema (type (1) + degree bounds + one aggregate shape);
3. measure how much of a random workload the schema makes bounded;
4. open a ``QueryEngine`` session, serve the workload's bounded queries
   through it, and keep one fresh under updates with the incremental
   evaluator.

Run:  python examples/discovery_workflow.py
"""

import random

from repro import GraphDelta, connect, ebchk
from repro.constraints.discovery import discover_schema
from repro.core.incremental import IncrementalEvaluator
from repro.graph.generators import imdb_like
from repro.graph.stats import label_histogram, label_pair_degrees
from repro.pattern.generator import PatternGenerator


def main() -> None:
    # Pretend the schema is unknown: keep only the raw graph.
    graph, _ = imdb_like(scale=0.04, seed=9)
    print(f"raw graph: {graph}")

    # 1. Profile: small labels and tight label pairs.
    histogram = label_histogram(graph)
    small = {label: c for label, c in histogram.items() if c <= 150}
    print(f"\nlabels with <= 150 nodes (type (1) candidates): {small}")
    tight = [(pair, summary.maximum)
             for pair, summary in label_pair_degrees(graph).items()
             if summary.maximum <= 2][:8]
    print(f"tightest label pairs (FD-style candidates): {tight}")

    # 2. Discover a schema: global counts, degree bounds, plus the paper's
    #    aggregate shape (year, award) -> movie.
    schema = discover_schema(
        graph, type1_max=150, unit_max=100,
        general_shapes=[(("year", "award"), "movie")])
    print(f"\ndiscovered schema: {len(schema)} constraints, e.g.:")
    for constraint in list(schema)[:6]:
        print(f"  {constraint}")
    engine = connect((graph, schema))
    assert engine.schema_index.satisfied(), "discovered bounds always hold"

    # 3. How much of a random workload does it make bounded?
    generator = PatternGenerator.from_graph(graph, rng=random.Random(1),
                                            schema=schema)
    workload = generator.generate_many(50)
    bounded = [q for q in workload if ebchk(q, schema).bounded]
    print(f"\nworkload: {len(bounded)}/{len(workload)} queries effectively "
          f"bounded under the discovered schema")

    # 4. Serve the bounded queries through the session in one batch.
    runs = engine.query_batch(bounded)
    total = sum(len(run.answer) for run in runs)
    print(f"served {len(runs)} bounded queries in one batch: {total} matches "
          f"total, accessed {engine.stats.total_accessed} items, "
          f"cache {engine.cache_info()}")

    # 5. Evaluate the largest one, then keep it fresh incrementally.
    query = max(bounded, key=lambda q: q.num_nodes)
    run = engine.query(query)
    print(f"\nquery {query.name!r} ({query.num_nodes} nodes): "
          f"{len(run.answer)} matches, accessed "
          f"{run.stats.total_accessed} of {graph.size} items")

    evaluator = IncrementalEvaluator(graph, schema)
    evaluator.register("q", query)
    year = next(iter(graph.nodes_with_label("year")))
    delta = GraphDelta().add_node(10**6, "movie").add_edge(10**6, year)
    evaluator.apply(delta)
    print(f"after inserting a movie: {len(evaluator.answer('q'))} matches "
          f"({evaluator.evaluations('q')} evaluations so far)")


if __name__ == "__main__":
    main()
