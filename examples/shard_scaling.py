"""Sharded scatter-gather execution: compile once, fan out everywhere.

Walkthrough of the sharding subsystem (DESIGN.md "Sharded execution"):

1. compile a dataset stand-in into a *sharded* artifact — an exact node
   cover into halo shards, each with its own access-constraint indexes;
2. open it inline (``workers=0``) and over a worker-process pool
   (``workers=2``) and show the answers are byte-identical to the
   sequential engine — along with the access accounting;
3. time a batched prepared workload at each worker count.

Run with ``PYTHONPATH=src python examples/shard_scaling.py``.
"""

from __future__ import annotations

import json
import tempfile
import time

from repro.accounting import AccessStats
from repro.bench.datasets import get_dataset, get_workload
from repro.core.ebchk import is_effectively_bounded
from repro import connect
from repro.engine import inspect_artifact, render_inspection
from repro.matching.bounded import canonical_answer

SCALE = 0.02
SHARDS = 4
DISTINCT = 6
BATCHES = 10


def main() -> None:
    graph, schema = get_dataset("imdb", SCALE)
    pool = get_workload("imdb", SCALE, count=100)
    workload = [q for q in pool
                if is_effectively_bounded(q, schema, "subgraph").bounded]
    workload = workload[:DISTINCT]
    print(f"graph: {graph!r}, workload: {len(workload)} bounded patterns")

    sequential = connect((graph, schema))
    for query in workload:
        sequential.prepare(query)
    reference = [canonical_answer("subgraph",
                                  sequential.query(q).answer)
                 for q in workload]

    with tempfile.TemporaryDirectory(prefix="repro-shards-") as artifact:
        # One partition + per-shard index build, persisted with per-shard
        # checksums; plans ride along at the top level.
        sequential.save(artifact, shards=SHARDS)
        print()
        print(render_inspection(inspect_artifact(artifact)))

        for workers in (0, 2):
            with connect(artifact, workers=workers) as engine:
                answers = [canonical_answer("subgraph",
                                            engine.query(q).answer)
                           for q in workload]
                identical = json.dumps(answers) == json.dumps(reference)
                start = time.perf_counter()
                served = 0
                for _ in range(BATCHES):
                    served += len(engine.query_batch(workload,
                                                     stats=AccessStats()))
                seconds = time.perf_counter() - start
                print(f"\nworkers={workers}: answers identical to "
                      f"sequential: {identical}; "
                      f"{served} prepared queries in {seconds:.3f}s "
                      f"({served / seconds:,.0f} qps)")
                assert identical

    print("\nScaling on real hardware (the 1-vs-4-worker comparison):")
    print("  PYTHONPATH=src python -m repro.cli bench "
          "--experiment shard-scaling --scale 0.05")


if __name__ == "__main__":
    main()
