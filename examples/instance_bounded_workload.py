#!/usr/bin/env python3
"""Making an unbounded query load instance-bounded (Section V).

A recommendation-style workload of parameterized queries is checked under
a deliberately weakened schema; EEChk finds the smallest M whose
M-bounded extension (extra type (1)/(2) constraints with bounds <= M)
makes every query answerable with bounded access on *this* graph, and the
greedy approximation trims the extension (the exact minimum is
logAPX-hard). The newly bounded query is then served through a
``QueryEngine`` session over the extended schema.

Run:  python examples/instance_bounded_workload.py
"""

import random

from repro import AccessSchema, connect, ebchk
from repro.core.instance import (
    find_min_m,
    greedy_minimum_extension,
    min_m_for_fraction,
)
from repro.graph.generators import imdb_like
from repro.pattern.generator import PatternGenerator


def main() -> None:
    graph, full_schema = imdb_like(scale=0.05, seed=1)
    # Weakened schema: drop every type (1) constraint — nothing is
    # effectively bounded without seeds.
    weak = AccessSchema(c for c in full_schema if not c.is_type1)
    print(f"weakened schema: {len(weak)} constraints (no type (1) seeds)")

    generator = PatternGenerator.from_graph(graph, rng=random.Random(4),
                                            schema=full_schema)
    workload = generator.generate_many(12)
    bounded = sum(1 for q in workload if ebchk(q, weak).bounded)
    print(f"workload: {len(workload)} queries, {bounded} effectively bounded")

    # Fig. 6-style sweep: minimum M per target fraction.
    print(f"\n{'fraction':>9} | {'min M':>7} | {'added constraints':>18}")
    for fraction in (0.5, 0.75, 0.9, 1.0):
        m, result = min_m_for_fraction(workload, weak, graph, fraction)
        if m is None:
            print(f"{fraction:>9} | {'-':>7} | {'-':>18}")
            continue
        print(f"{fraction:>9} | {m:>7} | {len(result.added):>18}")

    m, result = find_min_m(workload, weak, graph)
    if m is None:
        print("\nworkload cannot be instance-bounded (labels missing from G)")
        return
    print(f"\nfull workload instance-bounded at M = {m} "
          f"({100 * m / graph.size:.3f}% of |G|)")

    greedy = greedy_minimum_extension(workload, weak, graph, m)
    print(f"maximal extension adds {len(result.added)} constraints; "
          f"greedy needs only {len(greedy)}:")
    for constraint in greedy[:10]:
        print(f"  + {constraint}")

    # Serve a previously-unbounded query through a session over the
    # extended schema (snapshot + index build + plan compile, once).
    extended = AccessSchema(weak)
    extended.extend(greedy)
    engine = connect((graph, extended))
    target = next(q for q in workload
                  if not ebchk(q, weak).bounded and ebchk(q, extended).bounded)
    run = engine.query(target)
    print(f"\nquery {target.name!r} ({target.num_nodes} nodes) now bounded: "
          f"{len(run.answer)} matches, accessed {run.stats.total_accessed} "
          f"of {graph.size} items")


if __name__ == "__main__":
    main()
