"""Tracing, bound telemetry, and the metrics surfaces in one process.

The observability contract (DESIGN.md "Observability"): every request
can be traced as a span tree from admission to execution, every
answered query records its admission bound against the accesses it
actually made, and none of it ever changes an answer — tracing on or
off, the result is byte-identical.

This tour plays four scenes against one in-process service:

1. **Traced serving** — a ``TraceRecorder`` on the ``QueryService``;
   every request leaves a span tree (admission, queue wait, batch
   assembly, plan-cache lookup, execution).
2. **Bound vs actual** — the metrics snapshot's bound-utilization
   histogram: how much of its admission bound each query really used,
   and the violation counter that must stay at zero.
3. **The scrape endpoint** — ``MetricsHTTPServer`` rendering the same
   snapshot in Prometheus text format on ``GET /metrics`` (what
   ``repro serve --metrics-port`` starts) and retained slow traces on
   ``GET /slow``.
4. **No observer effect** — the same query, traced and untraced,
   yields the identical canonical answer.

Run with::

    PYTHONPATH=src python examples/observability_tour.py

The CLI equivalents::

    PYTHONPATH=src python -m repro.cli serve --artifact artifact \\
        --metrics-port 9642 --trace --slow-query-ms 50 --log-format json
    PYTHONPATH=src python -m repro.cli metrics 127.0.0.1:8642
    curl http://127.0.0.1:9642/metrics
"""

from __future__ import annotations

import urllib.request

from repro import connect
from repro.matching.bounded import canonical_answer
from repro.obs import MetricsHTTPServer, TraceRecorder, activate
from repro.pattern import parse_pattern
from repro.server import QueryService, ServeClient, ServerThread

WORKLOAD = {
    "movie-year": "m: movie; y: year; m -> y",
    "awarded-movie": "aw: award; m: movie; y: year; m -> aw; m -> y",
}


def main() -> None:
    from repro.graph.generators import imdb_like

    graph, schema = imdb_like(scale=0.02, seed=7)
    engine = connect((graph, schema))
    for text in WORKLOAD.values():
        engine.prepare(parse_pattern(text))

    # 1. Traced serving: slow_ms=0 retains every request's span tree
    #    (production would set a real threshold, e.g. slow_ms=50).
    recorder = TraceRecorder(slow_ms=0.0)
    service = QueryService(engine, workers=2, tracer=recorder)
    with ServerThread(service) as handle:
        with ServeClient(handle.host, handle.port) as client:
            for name, text in WORKLOAD.items():
                result = client.query(text)
                print(f"{name}: {result.answer_count} matches, "
                      f"bound {result.cost:g}, accessed {result.accessed}")

            last = recorder.slow()[-1]
            print(f"\nspan tree of the last request "
                  f"(trace {last.trace_id}):")
            print(last.render())

            # 2. Bound vs actual: the histogram behind
            #    repro_bound_utilization_bucket. Violations (actual >
            #    bound) would disprove the paper's accounting — zero,
            #    always.
            snapshot = client.metrics()
            bound = snapshot["bound_utilization"]
            print(f"bound telemetry: {bound['samples']} samples, "
                  f"mean utilization {bound['mean_utilization']:.3f}, "
                  f"{bound['violations']} violations")

            # 3. The Prometheus surface, exactly as `repro serve
            #    --metrics-port` exposes it (port=0 -> ephemeral).
            with MetricsHTTPServer(lambda: service.snapshot(),
                                   recorder=recorder) as http:
                base = f"http://127.0.0.1:{http.port}"
                text = urllib.request.urlopen(
                    f"{base}/metrics").read().decode()
                wanted = ("repro_requests_total",
                          "repro_bound_utilization_bucket",
                          "repro_bound_violations_total",
                          "repro_traces_finished_total")
                print(f"\nscrape of {base}/metrics "
                      f"({len(text.splitlines())} lines), highlights:")
                for line in text.splitlines():
                    if line.startswith(wanted):
                        print(f"  {line}")
                slow = urllib.request.urlopen(f"{base}/slow").read()
                print(f"{base}/slow: {len(slow)} bytes of retained "
                      f"slow-query traces")
            client.shutdown()

    # 4. No observer effect: traced and untraced answers are identical.
    query = parse_pattern(WORKLOAD["movie-year"])
    untraced = canonical_answer("subgraph", engine.query(query).answer)
    root = recorder.trace("tour")
    with activate(root):
        traced = canonical_answer("subgraph", engine.query(query).answer)
    root.trace.finish()
    assert traced == untraced and untraced
    print(f"\ntracing changed nothing: {len(traced)} identical matches "
          f"traced and untraced")


if __name__ == "__main__":
    main()
