"""Compile once, serve many processes: the persistent-artifact workflow.

The paper's economics are pay-once (indexes, compiled plans),
serve-many. This example plays both roles of the deployment that
realizes them across *processes*:

1. **Compile** — build a `QueryEngine`, prepare the workload's query
   shapes, and `save` the compiled state as an on-disk artifact.
2. **Serve** — in what would normally be a different process (a CLI
   call, a worker, a CI job), `open_path` the artifact and answer
   queries without rebuilding anything.

Run with::

    PYTHONPATH=src python examples/compile_serve.py

See examples/README.md for the equivalent CLI commands.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import connect
from repro.engine import inspect_artifact, render_inspection
from repro.graph.generators import imdb_like
from repro.pattern import parse_pattern

WORKLOAD = {
    "movie-year": "m: movie; y: year; m -> y; y.value >= 2011",
    "awarded-movie": "aw: award; m: movie; y: year; m -> aw; m -> y",
    "movie-actor-year": "m: movie; a: actor; y: year; m -> a; m -> y",
}


def compile_artifact(path: Path) -> None:
    """The pay-once role: snapshot + index build + plan compilation."""
    graph, schema = imdb_like(scale=0.05, seed=7)
    start = time.perf_counter()
    engine = connect((graph, schema))
    for name, text in WORKLOAD.items():
        engine.prepare(parse_pattern(text, name=name))
    build_seconds = time.perf_counter() - start
    manifest = engine.save(path)
    total = sum(meta["bytes"] for meta in manifest["files"].values())
    print(f"compiled in {1000 * build_seconds:.1f} ms -> {total} bytes, "
          f"{manifest['plans']['entries']} cached plans\n")


def serve_from_artifact(path: Path) -> None:
    """The serve-many role: warm start, then answer queries."""
    start = time.perf_counter()
    engine = connect(path)
    open_seconds = time.perf_counter() - start
    print(f"warm open in {1000 * open_seconds:.2f} ms "
          f"(skips graph load, index build, and planning)")
    for name, text in WORKLOAD.items():
        run = engine.query(parse_pattern(text, name=name))
        stats = run.stats.as_dict()
        print(f"  {name}: {len(run.answer)} matches, "
              f"accessed {stats['total_accessed']} items "
              f"of |G| = {engine.graph.size}")
    info = engine.stats
    print(f"plan cache: {info.plan_cache_hits} hits, "
          f"{info.plan_cache_misses} misses "
          f"(every query shape was pre-compiled)\n")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-artifact-") as tmp:
        artifact = Path(tmp) / "imdb-0.05"
        compile_artifact(artifact)
        serve_from_artifact(artifact)
        print(render_inspection(inspect_artifact(artifact)))


if __name__ == "__main__":
    main()
