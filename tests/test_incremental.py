"""Tests for incremental bounded evaluation (Section VIII future work)."""

import pytest

from repro import AccessConstraint, AccessSchema, Graph, GraphDelta
from repro.core.incremental import IncrementalEvaluator
from repro.errors import NotEffectivelyBounded, PatternError, ReproError
from repro.matching.simulation import relation_pairs, simulate
from repro.matching.vf2 import find_matches
from repro.pattern import parse_pattern


@pytest.fixture()
def setup():
    g = Graph()
    y1 = g.add_node("year", value=2000)
    y2 = g.add_node("year", value=2001)
    m1 = g.add_node("movie")
    a1 = g.add_node("actor")
    g.add_edge(m1, y1)
    g.add_edge(m1, a1)
    schema = AccessSchema([
        AccessConstraint((), "year", 10),
        AccessConstraint(("year",), "movie", 5),
        AccessConstraint(("movie",), "actor", 5),
    ])
    evaluator = IncrementalEvaluator(g, schema)
    return evaluator, (y1, y2, m1, a1)


def as_set(matches):
    return {frozenset(m.items()) for m in matches}


class TestRegistration:
    def test_initial_answer(self, setup):
        evaluator, _ = setup
        q = parse_pattern("m: movie; y: year; m -> y", name="q")
        answer = evaluator.register("q", q)
        assert as_set(answer) == as_set(find_matches(q, evaluator.graph))

    def test_duplicate_name_rejected(self, setup):
        evaluator, _ = setup
        q = parse_pattern("m: movie; y: year; m -> y")
        evaluator.register("q", q)
        with pytest.raises(PatternError):
            evaluator.register("q", q)

    def test_unbounded_query_rejected(self, setup):
        evaluator, _ = setup
        lonely = parse_pattern("a: actor")
        with pytest.raises(NotEffectivelyBounded):
            evaluator.register("lonely", lonely)

    def test_unknown_query(self, setup):
        evaluator, _ = setup
        with pytest.raises(PatternError):
            evaluator.answer("ghost")
        with pytest.raises(PatternError):
            evaluator.unregister("ghost")


class TestUpdates:
    def test_insertion_refreshes_answer(self, setup):
        evaluator, (y1, y2, m1, a1) = setup
        q = parse_pattern("m: movie; y: year; m -> y", name="q")
        evaluator.register("q", q)
        delta = GraphDelta().add_node(50, "movie").add_edge(50, y2)
        evaluator.apply(delta)
        assert as_set(evaluator.answer("q")) == \
            as_set(find_matches(q, evaluator.graph))
        assert len(evaluator.answer("q")) == 2

    def test_deletion_refreshes_answer(self, setup):
        evaluator, (y1, y2, m1, a1) = setup
        q = parse_pattern("m: movie; y: year; m -> y", name="q")
        evaluator.register("q", q)
        evaluator.apply(GraphDelta().remove_edge(m1, y1))
        assert evaluator.answer("q") == []

    def test_irrelevant_update_skips_evaluation(self, setup):
        evaluator, (y1, y2, m1, a1) = setup
        q = parse_pattern("m: movie; y: year; m -> y", name="q")
        evaluator.register("q", q)
        assert evaluator.evaluations("q") == 1
        # A rare, unrelated label: no re-evaluation.
        delta = GraphDelta().add_node(60, "unrelated")
        evaluator.apply(delta)
        assert evaluator.evaluations("q") == 1
        # A relevant label: re-evaluated.
        evaluator.apply(GraphDelta().add_node(61, "movie").add_edge(61, y2))
        assert evaluator.evaluations("q") == 2

    def test_violating_update_raises(self, setup):
        evaluator, (y1, y2, m1, a1) = setup
        delta = GraphDelta()
        for i in range(6):
            delta.add_node(70 + i, "movie")
            delta.add_edge(70 + i, y1)
        with pytest.raises(ReproError, match="violates"):
            evaluator.apply(delta)

    def test_simulation_query(self, setup):
        evaluator, (y1, y2, m1, a1) = setup
        q = parse_pattern("m: movie; y: year; m -> y", name="qs")
        evaluator.register("qs", q, semantics="simulation")
        evaluator.apply(GraphDelta().add_node(80, "movie").add_edge(80, y2))
        assert relation_pairs(evaluator.answer("qs")) == \
            relation_pairs(simulate(q, evaluator.graph))

    def test_long_update_stream_stays_consistent(self, setup):
        import random
        evaluator, (y1, y2, m1, a1) = setup
        q = parse_pattern("m: movie; y: year; a: actor; m -> y; m -> a",
                          name="q")
        evaluator.register("q", q)
        rng = random.Random(5)
        next_id = 100
        movies = [m1]
        for _ in range(20):
            delta = GraphDelta()
            if rng.random() < 0.6:
                delta.add_node(next_id, "movie")
                delta.add_edge(next_id, rng.choice([y1, y2]))
                if rng.random() < 0.7:
                    delta.add_edge(next_id, a1)
                movies.append(next_id)
                next_id += 1
            elif len(movies) > 1:
                victim = movies.pop(rng.randrange(len(movies)))
                delta.remove_node(victim)
            if not len(delta):
                continue
            try:
                evaluator.apply(delta)
            except ReproError:
                continue  # violating batch: graph unchanged semantics-wise
            assert as_set(evaluator.answer("q")) == \
                as_set(find_matches(q, evaluator.graph))


class TestBoundedness:
    def test_update_work_is_local(self, setup):
        """Each update's index repair only touches the dirty region."""
        evaluator, (y1, y2, m1, a1) = setup
        report = evaluator.apply(
            GraphDelta().add_node(90, "movie").add_edge(90, y2))
        refreshed = {node for _, node in report.refreshed_targets}
        assert refreshed <= {90, y2}
