"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import io as graph_io


@pytest.fixture()
def artifacts(tmp_path, imdb_small):
    """Pattern/schema/graph files on disk for CLI consumption."""
    graph, schema = imdb_small
    pattern_path = tmp_path / "q.pat"
    pattern_path.write_text(
        "m: movie; y: year; m -> y\n", encoding="utf-8")
    schema_path = tmp_path / "a.json"
    schema.save(str(schema_path))
    graph_path = tmp_path / "g.tsv"
    graph_io.write_tsv(graph, str(graph_path))
    return pattern_path, schema_path, graph_path


class TestCheck:
    def test_bounded_exit_zero(self, artifacts, capsys):
        pattern, schema, _ = artifacts
        code = main(["check", "--pattern", str(pattern),
                     "--schema", str(schema)])
        assert code == 0
        assert "effectively bounded" in capsys.readouterr().out

    def test_unbounded_exit_one(self, artifacts, tmp_path, capsys):
        _, schema, _ = artifacts
        lonely = tmp_path / "lonely.pat"
        lonely.write_text("p: unknown_label\n", encoding="utf-8")
        code = main(["check", "--pattern", str(lonely),
                     "--schema", str(schema)])
        assert code == 1

    def test_simulation_semantics(self, artifacts, capsys):
        pattern, schema, _ = artifacts
        code = main(["check", "--pattern", str(pattern),
                     "--schema", str(schema), "--semantics", "simulation"])
        assert code in (0, 1)
        assert "bounded" in capsys.readouterr().out


class TestPlan:
    def test_plan_printed(self, artifacts, capsys):
        pattern, schema, _ = artifacts
        assert main(["plan", "--pattern", str(pattern),
                     "--schema", str(schema)]) == 0
        out = capsys.readouterr().out
        assert "ft(" in out and "worst case" in out

    def test_unbounded_plan_fails(self, artifacts, tmp_path, capsys):
        _, schema, _ = artifacts
        lonely = tmp_path / "lonely.pat"
        lonely.write_text("p: unknown_label\n", encoding="utf-8")
        assert main(["plan", "--pattern", str(lonely),
                     "--schema", str(schema)]) == 1


class TestRun:
    def test_run_subgraph(self, artifacts, capsys):
        pattern, schema, graph = artifacts
        code = main(["run", "--graph", str(graph), "--pattern", str(pattern),
                     "--schema", str(schema), "--validate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "matches:" in out
        assert "accessed:" in out

    def test_run_simulation(self, artifacts, capsys):
        pattern, schema, graph = artifacts
        code = main(["run", "--graph", str(graph), "--pattern", str(pattern),
                     "--schema", str(schema), "--semantics", "simulation"])
        # The actor->country pattern may or may not be simulation-bounded;
        # either a clean run or a clean refusal is acceptable.
        assert code in (0, 1)


class TestCompile:
    def test_compile_run_round_trip(self, artifacts, tmp_path, capsys):
        pattern, schema, graph = artifacts
        artifact = tmp_path / "artifact"
        code = main(["compile", "--graph", str(graph), "--schema", str(schema),
                     "--out", str(artifact), "--pattern", str(pattern)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 cached plans" in out

        assert main(["run", "--graph", str(graph), "--schema", str(schema),
                     "--pattern", str(pattern)]) == 0
        cold_out = capsys.readouterr().out
        assert main(["run", "--artifact", str(artifact),
                     "--pattern", str(pattern)]) == 0
        warm_out = capsys.readouterr().out
        # Identical matches and identical bounded-access accounting.
        assert warm_out == cold_out

    def test_compile_from_dataset(self, tmp_path, capsys):
        artifact = tmp_path / "artifact"
        assert main(["compile", "--dataset", "imdb", "--scale", "0.005",
                     "--out", str(artifact)]) == 0
        assert "compiled artifact" in capsys.readouterr().out

    def test_inspect(self, artifacts, tmp_path, capsys):
        _, schema, graph = artifacts
        artifact = tmp_path / "artifact"
        main(["compile", "--graph", str(graph), "--schema", str(schema),
              "--out", str(artifact)])
        capsys.readouterr()
        assert main(["compile", "--inspect", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "format: repro-engine-artifact v3" in out
        assert "schema version: 0" in out
        assert "[ok]" in out

    def test_compile_without_out_or_inputs(self, tmp_path, capsys):
        assert main(["compile", "--out", str(tmp_path / "x")]) == 2
        assert main(["compile", "--dataset", "imdb"]) == 2

    def test_corrupt_artifact_fails_loudly(self, artifacts, tmp_path, capsys):
        pattern, schema, graph = artifacts
        artifact = tmp_path / "artifact"
        main(["compile", "--graph", str(graph), "--schema", str(schema),
              "--out", str(artifact)])
        payload = artifact / "index.bin"
        payload.write_bytes(payload.read_bytes()[:-8])
        code = main(["run", "--artifact", str(artifact),
                     "--pattern", str(pattern)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_run_without_source(self, artifacts):
        pattern, _, _ = artifacts
        assert main(["run", "--pattern", str(pattern)]) == 2


class TestGenerate:
    def test_generate_round_trips(self, tmp_path, capsys):
        out_prefix = tmp_path / "tiny"
        code = main(["generate", "--dataset", "imdb", "--scale", "0.005",
                     "--seed", "3", "--out", str(out_prefix)])
        assert code == 0
        graph = graph_io.read_tsv(f"{out_prefix}.graph.tsv")
        assert graph.num_nodes > 0
        from repro import AccessSchema
        schema = AccessSchema.load(f"{out_prefix}.schema.json")
        assert len(schema) > 0

    def test_unknown_dataset(self, tmp_path):
        assert main(["generate", "--dataset", "nope",
                     "--out", str(tmp_path / "x")]) == 2


class TestProfile:
    def test_profile_graph(self, artifacts, capsys):
        _, _, graph = artifacts
        assert main(["profile", "--graph", str(graph)]) == 0
        out = capsys.readouterr().out
        assert "label histogram" in out
        assert "movie" in out


class TestBench:
    def test_exp3_via_cli(self, capsys):
        code = main(["bench", "--experiment", "exp3", "--scale", "0.01"])
        assert code == 0
        assert "ebchk_max_ms" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["bench", "--experiment", "nope"]) == 2

    def test_multiple_experiments_one_invocation(self, capsys):
        code = main(["bench", "--experiment", "exp3",
                     "--experiment", "fig6-instance", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ebchk_max_ms" in out and "min_m" in out

    def test_unknown_experiment_in_list_runs_nothing(self, capsys):
        assert main(["bench", "--experiment", "exp3",
                     "--experiment", "nope", "--scale", "0.01"]) == 2
        assert "ebchk_max_ms" not in capsys.readouterr().out

    def test_warm_start_with_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "artifact"
        code = main(["bench", "--experiment", "warm-start",
                     "--dataset", "imdb", "--scale", "0.01",
                     "--artifact", str(artifact)])
        assert code == 0
        assert "warm_open" in capsys.readouterr().out
        assert (artifact / "manifest.json").is_file()

    def test_fig6_via_cli(self, capsys):
        code = main(["bench", "--experiment", "fig6-instance",
                     "--dataset", "imdb", "--scale", "0.01"])
        assert code == 0
        assert "min_m" in capsys.readouterr().out


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestShardedCompile:
    def test_compile_shards_run_round_trip(self, artifacts, tmp_path,
                                           capsys):
        pattern, schema, graph = artifacts
        artifact = tmp_path / "sharded"
        code = main(["compile", "--graph", str(graph), "--schema",
                     str(schema), "--out", str(artifact),
                     "--pattern", str(pattern), "--shards", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compiled sharded artifact" in out
        assert "3 shards" in out

        assert main(["run", "--graph", str(graph), "--schema", str(schema),
                     "--pattern", str(pattern)]) == 0
        cold_out = capsys.readouterr().out
        assert main(["run", "--artifact", str(artifact),
                     "--pattern", str(pattern)]) == 0
        sharded_out = capsys.readouterr().out
        # Identical matches and identical bounded-access accounting.
        assert sharded_out == cold_out

    def test_inspect_sharded(self, artifacts, tmp_path, capsys):
        _, schema, graph = artifacts
        artifact = tmp_path / "sharded"
        main(["compile", "--graph", str(graph), "--schema", str(schema),
              "--out", str(artifact), "--shards", "2"])
        capsys.readouterr()
        assert main(["compile", "--inspect", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "sharded layout" in out
        assert "shards: 2" in out
        assert "cross-shard edges" in out
        assert "shard-0001" in out

    def test_exec_workers_requires_artifact(self, artifacts, capsys):
        pattern, schema, graph = artifacts
        code = main(["serve", "--graph", str(graph), "--schema",
                     str(schema), "--exec-workers", "2"])
        assert code == 2
        assert "--exec-workers requires" in capsys.readouterr().err
