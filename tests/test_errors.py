"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.GraphError,
        errors.PatternError,
        errors.PredicateError,
        errors.DslError,
        errors.SchemaError,
        errors.ConstraintViolation,
        errors.NotEffectivelyBounded,
        errors.PlanError,
        errors.UnverifiableEdge,
        errors.DiscoveryError,
        errors.MatchTimeout,
        errors.BenchmarkError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_predicate_error_is_pattern_error(self):
        assert issubclass(errors.PredicateError, errors.PatternError)
        assert issubclass(errors.DslError, errors.PatternError)

    def test_unverifiable_edge_is_plan_error(self):
        assert issubclass(errors.UnverifiableEdge, errors.PlanError)


class TestPayloads:
    def test_constraint_violation_payload(self):
        from repro import AccessConstraint
        constraint = AccessConstraint(("a",), "b", 2)
        exc = errors.ConstraintViolation(constraint, (1,), 5)
        assert exc.constraint is constraint
        assert exc.witness == (1,)
        assert exc.count == 5
        assert "violated" in str(exc)

    def test_not_effectively_bounded_payload(self):
        exc = errors.NotEffectivelyBounded("msg", uncovered_nodes=[1],
                                           uncovered_edges=[(1, 2)])
        assert exc.uncovered_nodes == (1,)
        assert exc.uncovered_edges == ((1, 2),)

    def test_match_timeout_payload(self):
        exc = errors.MatchTimeout("slow", elapsed=1.5, partial=3)
        assert exc.elapsed == 1.5
        assert exc.partial == 3

    def test_single_except_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.DslError("boom")
