"""The shared percentile helper (repro.util.percentiles)."""

from __future__ import annotations

import pytest

from repro.graph.stats import DistributionSummary
from repro.util.percentiles import percentile, percentiles, summarize


def test_percentile_nearest_rank_lower():
    data = list(range(10))  # sorted 0..9
    assert percentile(data, 0.0) == 0
    assert percentile(data, 0.5) == 5
    assert percentile(data, 0.9) == 9
    assert percentile(data, 0.99) == 9
    assert percentile(data, 1.0) == 9


def test_percentile_single_value():
    assert percentile([42], 0.5) == 42
    assert percentile([42], 0.99) == 42


def test_percentile_rejects_empty_and_bad_fraction():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1], 1.5)
    with pytest.raises(ValueError):
        percentile([1], -0.1)


def test_percentiles_unsorted_input():
    result = percentiles([3, 1, 2], qs=(0.5, 0.99))
    assert result == {0.5: 2, 0.99: 3}
    assert percentiles([]) == {}


def test_summarize_scale_and_empty():
    stats = summarize([0.001, 0.002, 0.003], scale=1000.0)
    assert stats["count"] == 3
    assert stats["min"] == pytest.approx(1.0)
    assert stats["max"] == pytest.approx(3.0)
    assert stats["mean"] == pytest.approx(2.0)
    empty = summarize([])
    assert empty["count"] == 0 and empty["p99"] == 0


def test_distribution_summary_matches_shared_definition():
    """stats.py output is unchanged by the refactor: the dataclass must
    report exactly the shared nearest-rank percentiles."""
    values = [5, 1, 4, 1, 3, 9, 2, 6]
    summary = DistributionSummary.from_values(values)
    data = sorted(values)
    assert summary.count == len(data)
    assert summary.minimum == data[0]
    assert summary.maximum == data[-1]
    assert summary.mean == pytest.approx(sum(data) / len(data))
    assert summary.p50 == percentile(data, 0.50)
    assert summary.p90 == percentile(data, 0.90)
    assert summary.p99 == percentile(data, 0.99)
    # The exact historical formula, spelled out:
    assert summary.p50 == data[min(int(0.50 * len(data)), len(data) - 1)]


def test_latency_summary_row():
    from repro.bench.reporting import latency_summary

    row = latency_summary([0.010, 0.020, 0.030], prefix="serve_")
    assert row["serve_count"] == 3
    assert row["serve_p50_ms"] == pytest.approx(20.0)
    assert row["serve_max_ms"] == pytest.approx(30.0)
