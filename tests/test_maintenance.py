"""Tests for incremental index maintenance under graph deltas.

The master invariant: after any delta, the maintained index must be
cell-for-cell identical to an index rebuilt from scratch on the updated
graph.
"""

import random

import pytest

from repro import AccessConstraint, AccessSchema, Graph, GraphDelta, SchemaIndex
from repro.constraints.maintenance import MaintainedSchemaIndex
from repro.graph.generators import random_labeled_graph


def assert_same_as_rebuild(maintained: MaintainedSchemaIndex):
    """Compare every index against a from-scratch rebuild."""
    fresh = SchemaIndex(maintained.graph, maintained.schema)
    for constraint in maintained.schema:
        kept = maintained.schema_index.index_for(constraint)
        rebuilt = fresh.index_for(constraint)
        kept_cells = {key: set(kept.fetch(key)) for key in kept.keys()}
        rebuilt_cells = {key: set(rebuilt.fetch(key)) for key in rebuilt.keys()}
        # Ignore keys that became empty (they may linger for type (1)).
        kept_cells = {k: v for k, v in kept_cells.items() if v or k == ()}
        rebuilt_cells = {k: v for k, v in rebuilt_cells.items() if v or k == ()}
        assert kept_cells == rebuilt_cells, f"drift for {constraint}"


@pytest.fixture()
def setup():
    g = Graph()
    y1 = g.add_node("year", value=2012)
    a1 = g.add_node("award")
    m1 = g.add_node("movie")
    m2 = g.add_node("movie")
    g.add_edge(m1, y1)
    g.add_edge(m1, a1)
    g.add_edge(m2, y1)
    schema = AccessSchema([
        AccessConstraint(("year", "award"), "movie", 4),
        AccessConstraint(("movie",), "year", 1),
        AccessConstraint((), "movie", 10),
    ])
    return MaintainedSchemaIndex(g, schema), (y1, a1, m1, m2)


class TestSingleChanges:
    def test_edge_insert(self, setup):
        maintained, (y1, a1, m1, m2) = setup
        report = maintained.apply(GraphDelta().add_edge(m2, a1))
        assert report.still_satisfied
        assert_same_as_rebuild(maintained)
        c = list(maintained.schema)[0]
        assert set(maintained.schema_index.fetch(c, (a1, y1))) == {m1, m2}

    def test_edge_delete(self, setup):
        maintained, (y1, a1, m1, m2) = setup
        maintained.apply(GraphDelta().remove_edge(m1, a1))
        assert_same_as_rebuild(maintained)
        c = list(maintained.schema)[0]
        assert maintained.schema_index.fetch(c, (a1, y1)) == ()

    def test_node_insert_with_edges(self, setup):
        maintained, (y1, a1, m1, m2) = setup
        delta = (GraphDelta()
                 .add_node(100, "movie")
                 .add_edge(100, y1)
                 .add_edge(100, a1))
        report = maintained.apply(delta)
        assert report.still_satisfied
        assert_same_as_rebuild(maintained)

    def test_node_delete_target(self, setup):
        """Deleting a movie must purge its cells everywhere."""
        maintained, (y1, a1, m1, m2) = setup
        maintained.apply(GraphDelta().remove_node(m1))
        assert_same_as_rebuild(maintained)

    def test_node_delete_key_member(self, setup):
        """Deleting a year drops all keys mentioning it."""
        maintained, (y1, a1, m1, m2) = setup
        maintained.apply(GraphDelta().remove_node(y1))
        assert_same_as_rebuild(maintained)

    def test_violation_reported(self, setup):
        maintained, (y1, a1, m1, m2) = setup
        schema = maintained.schema
        schema_c = [c for c in schema if c.source == ("award", "year")][0]
        delta = GraphDelta()
        for i in range(5):
            delta.add_node(200 + i, "movie")
            delta.add_edge(200 + i, y1)
            delta.add_edge(200 + i, a1)
        report = maintained.apply(delta)
        assert not report.still_satisfied
        assert any(c == schema_c for c, _, _ in report.violations)

    def test_type1_violation_reported(self, setup):
        maintained, _ = setup
        delta = GraphDelta()
        for i in range(20):
            delta.add_node(300 + i, "movie")
        report = maintained.apply(delta)
        assert any(c.is_type1 for c, _, _ in report.violations)

    def test_refreshed_targets_are_local(self, setup):
        """Only dirty targets get refreshed — the ΔG ∪ Nb(ΔG) claim."""
        maintained, (y1, a1, m1, m2) = setup
        report = maintained.apply(GraphDelta().add_edge(m2, a1))
        refreshed_nodes = {node for _, node in report.refreshed_targets}
        assert refreshed_nodes <= {m2, a1}


class TestRandomizedEquivalence:
    def test_random_deltas_match_rebuild(self):
        rng = random.Random(11)
        graph = random_labeled_graph(60, 4, 150, seed=11)
        from repro.constraints.discovery import discover_schema
        schema = discover_schema(graph, type1_max=100, unit_max=100)
        maintained = MaintainedSchemaIndex(graph, schema)

        nodes = list(graph.nodes())
        next_id = max(nodes) + 1
        for step in range(15):
            delta = GraphDelta()
            kind = rng.randrange(4)
            if kind == 0:
                a, b = rng.choice(nodes), rng.choice(nodes)
                if a != b and not graph.has_edge(a, b):
                    delta.add_edge(a, b)
            elif kind == 1:
                edges = list(graph.edges())
                if edges:
                    delta.remove_edge(*rng.choice(edges))
            elif kind == 2:
                label = f"L{rng.randrange(4)}"
                delta.add_node(next_id, label, value=rng.randrange(100))
                delta.add_edge(next_id, rng.choice(nodes))
                nodes.append(next_id)
                next_id += 1
            else:
                victim = rng.choice(nodes)
                delta.remove_node(victim)
                nodes.remove(victim)
            if len(delta) == 0:
                continue
            maintained.apply(delta)
            assert_same_as_rebuild(maintained)
