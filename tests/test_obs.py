"""Observability: span trees, bound telemetry, export, and identity.

Covers the tentpole acceptance criteria of the observability PR:

* one **connected** span tree per request — admission, queue wait,
  batch assembly, plan-cache lookup, execution waves, and (on a remote
  fleet) one span per per-shard RPC carrying the ``trace`` wire field,
  all sharing the request's ``trace_id``;
* trace propagation across a remote-shard retry/reconnect and through
  an online rescue (plan_extension / extend_schema children);
* **byte-identical answers and AccessStats** with tracing on vs off at
  shard counts {1, 2, 4} (hypothesis property test);
* bound telemetry: the admitted worst-case bound vs actual accesses as
  a utilization histogram whose overflow bucket stays empty;
* the Prometheus renderer, scrape endpoint, ``repro metrics`` CLI,
  structured JSON logging, and the recent-qps staleness fix.
"""

from __future__ import annotations

import io
import json
import logging
import socket
import time
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AccessStats, connect
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.matching.bounded import canonical_answer
from repro.obs import (
    MetricsHTTPServer,
    TraceRecorder,
    activate,
    bind,
    child_span,
    current_span,
    render_metrics_table,
    render_prometheus,
    setup_logging,
)
from repro.obs.logs import JsonFormatter, TraceIdFilter
from repro.server import QueryService, ServeClient, ServerThread, protocol
from repro.server.metrics import BOUND_BUCKETS, ServerMetrics
from repro.server.shardserver import ShardServer

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(autouse=True)
def _pristine_repro_logger():
    """Undo any earlier ``setup_logging`` call (e.g. a CLI serve test in
    the same process sets ``propagate = False`` on the ``repro`` logger,
    which would starve ``caplog``) and restore the state afterwards."""
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.propagate, logger.level)
    for handler in saved[0]:
        logger.removeHandler(handler)
    logger.propagate = True
    logger.setLevel(logging.NOTSET)
    yield
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    for handler in saved[0]:
        logger.addHandler(handler)
    logger.propagate = saved[1]
    logger.setLevel(saved[2])

_SETTINGS = dict(max_examples=8, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow,
                                        HealthCheck.function_scoped_fixture])

SHARD_COUNTS = (1, 2, 4)

BOUNDED = "m: movie; y: year; m -> y"
UNBOUNDED = "a: actor; c: country; a -> c"


# --------------------------------------------------------------- helpers
def assert_connected(trace):
    """Every span belongs to the trace, is finished, and parents to a
    recorded span; exactly one root."""
    ids = {span.span_id for span in trace.spans}
    roots = [span for span in trace.spans if span.parent_id is None]
    assert len(roots) == 1, [s.name for s in roots]
    for span in trace.spans:
        assert span.trace_id == trace.trace_id
        assert span.duration_s is not None, span.name
        if span.parent_id is not None:
            assert span.parent_id in ids, (span.name, span.parent_id)


def fingerprint(engine, query, semantics):
    run = engine.query(query, semantics, stats=AccessStats(), refresh=True)
    ex = run.execution
    return (canonical_answer(semantics, run.answer),
            sorted(ex.gq.nodes()), sorted(ex.gq.edges()),
            sorted((u, tuple(sorted(c))) for u, c in ex.candidates.items()),
            (ex.stats.nodes_fetched, ex.stats.edges_checked,
             ex.stats.index_fetches, ex.stats.distinct_nodes))


# --------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def sharded_artifacts(tmp_path_factory, imdb_small):
    from repro.pattern import parse_pattern

    graph, schema = imdb_small
    engine = connect((graph, schema))
    engine.prepare(parse_pattern(BOUNDED), SUBGRAPH)
    root = tmp_path_factory.mktemp("obs-artifacts")
    paths = {}
    for shards in SHARD_COUNTS:
        path = root / f"artifact-{shards}"
        engine.save(path, shards=shards)
        paths[shards] = path
    return paths


@pytest.fixture(scope="module")
def fleets(sharded_artifacts):
    servers = []
    addrs = {}
    for shards, path in sharded_artifacts.items():
        fleet = [ShardServer(path / f"shard-{i:04d}").start()
                 for i in range(shards)]
        servers.extend(fleet)
        addrs[shards] = [server.address for server in fleet]
    yield addrs
    for server in servers:
        server.stop()


# ------------------------------------------------------------- span model
class TestSpanModel:
    def test_tree_construction_and_lookup(self):
        recorder = TraceRecorder()
        root = recorder.trace("request", semantics="subgraph")
        trace = root.trace
        child = root.child("admission")
        grand = child.child("compile")
        grand.end()
        child.set(cost=7).end()
        trace.finish()
        assert trace.root is root
        assert root.parent_id is None
        assert [s.name for s in trace.children_of(root)] == ["admission"]
        assert [s.name for s in trace.children_of(child)] == ["compile"]
        assert trace.by_name("admission")[0].attrs["cost"] == 7
        assert_connected(trace)
        assert recorder.recent() == [trace]
        assert recorder.traces_finished == 1

    def test_end_is_idempotent(self):
        trace = TraceRecorder().trace("r").trace
        span = trace.root
        span.end()
        first = span.duration_s
        time.sleep(0.002)
        span.end()
        assert span.duration_s == first
        assert trace.spans.count(span) == 1

    def test_child_span_without_active_parent_is_noop(self):
        assert current_span() is None
        with child_span("anything", attr=1) as span:
            assert span is None
        assert current_span() is None

    def test_child_span_nests_through_contextvar(self):
        root = TraceRecorder().trace("request")
        with activate(root):
            with child_span("outer") as outer:
                assert current_span() is outer
                with child_span("inner") as inner:
                    assert inner.parent_id == outer.span_id
            assert current_span() is root

    def test_child_span_stamps_error_attr(self):
        root = TraceRecorder().trace("request")
        with activate(root):
            with pytest.raises(ValueError):
                with child_span("risky"):
                    raise ValueError("boom")
        span = root.trace.by_name("risky")[0]
        assert span.attrs["error"] == "ValueError"
        assert span.duration_s is not None

    def test_activate_none_and_bind_none_are_passthrough(self):
        with activate(None) as span:
            assert span is None
        fn = lambda: current_span()  # noqa: E731
        assert bind(None, fn) is fn

    def test_bind_carries_span_across_threads(self):
        import threading

        root = TraceRecorder().trace("request")
        seen = []
        worker = threading.Thread(
            target=bind(root, lambda: seen.append(current_span())))
        worker.start()
        worker.join()
        assert seen == [root]

    def test_slow_query_log_and_sampling(self, caplog):
        recorder = TraceRecorder(slow_ms=0.0, slow_sample=2)
        with caplog.at_level(logging.WARNING, logger="repro.slowquery"):
            for _ in range(4):
                recorder.trace("request").trace.finish()
        # Counter-based sampling: every 2nd slow trace is logged.
        assert recorder.slow_queries == 4
        assert len(recorder.slow()) == 4
        assert len(caplog.records) == 2
        assert "slow query" in caplog.records[0].message

    def test_recorder_retention_is_bounded(self):
        recorder = TraceRecorder(max_traces=3)
        traces = [recorder.trace("r").trace.finish() for _ in range(5)]
        assert recorder.recent() == traces[-3:]
        assert recorder.traces_finished == 5

    def test_trace_ids_are_unique_and_render_is_indented(self):
        recorder = TraceRecorder()
        a, b = recorder.trace("request"), recorder.trace("request")
        assert a.trace_id != b.trace_id
        a.child("admission", cost=3).end()
        a.trace.finish()
        text = a.trace.render()
        assert text.splitlines()[0] == f"trace {a.trace_id}"
        assert "  - request" in text
        assert "    - admission" in text and "cost=3" in text


# ------------------------------------------------------------ wire field
class TestTraceWireField:
    def test_encode_decode_roundtrip(self):
        root = TraceRecorder().trace("request")
        doc = {"op": "scatter", "trace": protocol.encode_trace(root)}
        decoded = protocol.decode_trace(doc)
        assert decoded == {"trace_id": root.trace_id,
                           "span_id": root.span_id}

    @pytest.mark.parametrize("doc", [
        {}, {"trace": None}, {"trace": "nope"}, {"trace": 7},
        {"trace": {"span_id": 1}}, {"trace": {"trace_id": 42}},
    ])
    def test_decode_tolerates_malformed(self, doc):
        assert protocol.decode_trace(doc) is None


# --------------------------------------------------------- server metrics
class TestServerMetricsTelemetry:
    def test_recent_qps_zero_when_window_stale(self):
        metrics = ServerMetrics()
        for _ in range(10):
            metrics.record_answered(0.001)
        assert metrics.snapshot()["recent_qps"] > 0
        # Age the whole window past the staleness horizon.
        stale = time.monotonic() - 3600.0
        with metrics._lock:
            metrics._finished_at.clear()
            metrics._finished_at.extend([stale + i * 0.01
                                         for i in range(10)])
        snapshot = metrics.snapshot()
        assert snapshot["recent_qps"] == 0.0
        assert snapshot["qps"] > 0  # lifetime rate unaffected

    def test_window_size_reported(self):
        assert ServerMetrics(window=7).snapshot()["window_size"] == 7

    def test_bound_histogram_math(self):
        metrics = ServerMetrics()
        metrics.record_bound(100, 10)    # 0.1  -> first bucket
        metrics.record_bound(100, 95)    # 0.95 -> le 1.0
        metrics.record_bound(100, 130)   # violation -> +Inf bucket
        metrics.record_bound(0, 0)       # degenerate bound counts as 1.0
        bound = metrics.snapshot()["bound_utilization"]
        assert bound["samples"] == 4
        assert bound["violations"] == 1
        assert bound["bound_sum"] == 300
        assert bound["actual_sum"] == 235
        buckets = dict((str(le), n) for le, n in bound["buckets"])
        assert buckets["0.1"] == 1
        assert buckets["1.0"] == 2
        assert buckets["+Inf"] == 1  # strict-JSON spelling of infinity
        assert bound["mean_utilization"] == pytest.approx(
            (0.1 + 0.95 + 1.3 + 1.0) / 4)

    def test_snapshot_is_strict_json(self):
        metrics = ServerMetrics()
        metrics.record_bound(10, 10)
        text = json.dumps(metrics.snapshot(), allow_nan=False)
        assert "+Inf" in text


# ------------------------------------------------------------ exporters
def _sample_snapshot():
    metrics = ServerMetrics()
    metrics.record_request()
    metrics.record_admitted()
    metrics.record_answered(0.005)
    metrics.record_bound(200, 50)
    snapshot = metrics.snapshot()
    snapshot["shards"] = [
        {"shard_id": 0, "requests": 3, "tasks_handled": 5,
         "scatter_rounds": 2, "scatter_seconds": 0.25, "uptime_s": 9.0,
         "traced_requests": 1, "extensions_applied": 0, "reloads": 0},
        {"shard_id": 1, "error": "ShardUnavailable: gone"},
    ]
    snapshot["backend"] = {"kind": "remote", "num_shards": 2,
                           "scatter_rounds": 2, "tasks_scattered": 5,
                           "scatter_messages": 4,
                           "scatter_messages_broadcast": 0, "reconnects": 1}
    snapshot["plan_cache"] = {"hits": 4, "misses": 1, "hit_rate": 0.8,
                              "size": 5}
    snapshot["tracing"] = {"enabled": True, "traces_finished": 6,
                           "slow_queries": 2, "slow_ms": 10.0,
                           "retained": 6}
    snapshot["engine"] = {"schema_version": 3}
    return snapshot


class TestPrometheusExport:
    def test_render_core_series(self):
        text = render_prometheus(_sample_snapshot())
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 1" in text
        assert "repro_answered_total 1" in text
        assert 'repro_rejected_total{reason="over_budget"} 0' in text
        assert 'repro_latency_ms{quantile="p50"}' in text
        assert "repro_schema_version 3" in text
        # HELP/TYPE emitted once per metric even with many samples.
        assert text.count("# TYPE repro_rejected_total counter") == 1

    def test_bound_histogram_is_cumulative_with_inf(self):
        text = render_prometheus(_sample_snapshot())
        # utilization 0.25: zero below le=0.2, cumulative 1 from 0.3 up.
        assert 'repro_bound_utilization_bucket{le="0.2"} 0' in text
        assert 'repro_bound_utilization_bucket{le="0.3"} 1' in text
        assert 'repro_bound_utilization_bucket{le="+Inf"} 1' in text
        assert "repro_bound_utilization_count 1" in text
        assert "repro_bound_violations_total 0" in text
        assert "repro_bound_admitted_accesses_total 200" in text
        assert "repro_bound_actual_accesses_total 50" in text

    def test_fleet_and_shard_series(self):
        text = render_prometheus(_sample_snapshot())
        assert "repro_backend_num_shards 2" in text
        assert "repro_backend_reconnects_total 1" in text
        assert 'repro_shard_tasks_handled_total{shard="0"} 5' in text
        assert 'repro_shard_scatter_seconds_total{shard="0"} 0.25' in text
        assert 'repro_shard_unreachable{shard="1"} 1' in text
        assert "repro_traces_finished_total 6" in text
        assert "repro_slow_queries_total 2" in text

    def test_http_endpoint_serves_metrics_and_slow(self):
        recorder = TraceRecorder(slow_ms=0.0)
        recorder.trace("request").trace.finish()
        with MetricsHTTPServer(_sample_snapshot, port=0,
                               recorder=recorder) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as response:
                assert "text/plain" in response.headers["Content-Type"]
                body = response.read().decode()
            assert "repro_bound_utilization_bucket" in body
            with urllib.request.urlopen(f"{base}/slow") as response:
                slow = json.loads(response.read())
            assert len(slow) == 1
            assert slow[0]["spans"][0]["name"] == "request"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope")
            assert err.value.code == 404
        # Stopped: the port no longer accepts connections.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", server.port),
                                     timeout=0.5).close()


class TestMetricsTable:
    def test_renders_all_sections(self):
        text = render_metrics_table(_sample_snapshot())
        for section in ("traffic", "rejected", "latency_ms", "batching",
                        "bound_utilization", "plan_cache", "backend",
                        "shard[0]", "shard[1]", "tracing", "engine"):
            assert section in text, section
        assert "le+Inf:0" in text  # histogram row
        assert "error" in text  # unreachable shard degrades to a row

    def test_tolerates_minimal_snapshot(self):
        assert "traffic" in render_metrics_table(ServerMetrics().snapshot())
        assert render_metrics_table({}) == ""


# ------------------------------------------------------- structured logs
class TestStructuredLogs:
    def _record(self, message="hello"):
        return logging.LogRecord("repro.server", logging.INFO, __file__, 1,
                                 message, None, None)

    def test_trace_id_stamped_from_active_span(self):
        record = self._record()
        root = TraceRecorder().trace("request")
        with activate(root):
            TraceIdFilter().filter(record)
        assert record.trace_id == root.trace_id

    def test_trace_id_dash_when_untraced(self):
        record = self._record()
        TraceIdFilter().filter(record)
        assert record.trace_id == "-"

    def test_json_formatter_one_object_per_line(self):
        record = self._record()
        record.trace_id = "abc-1"
        doc = json.loads(JsonFormatter().format(record))
        assert doc["message"] == "hello"
        assert doc["logger"] == "repro.server"
        assert doc["level"] == "INFO"
        assert doc["trace_id"] == "abc-1"
        untraced = self._record()
        untraced.trace_id = "-"
        assert "trace_id" not in json.loads(
            JsonFormatter().format(untraced))

    def test_setup_logging_is_idempotent(self):
        stream = io.StringIO()
        setup_logging("json", stream=stream)
        setup_logging("json", stream=stream)
        logger = logging.getLogger("repro")
        try:
            assert len(logger.handlers) == 1
            logging.getLogger("repro.test").info("ping")
            assert json.loads(stream.getvalue())["message"] == "ping"
        finally:
            for handler in list(logger.handlers):
                logger.removeHandler(handler)


# ------------------------------------------------------------- CLI
class TestMetricsCLI:
    @pytest.fixture()
    def served(self, imdb_small):
        engine = connect(imdb_small)
        service = QueryService(engine, workers=1)
        with ServerThread(service) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.query(BOUNDED)
            yield handle
        service.close()

    def test_parse_addr(self):
        from repro.cli import _parse_addr

        assert _parse_addr("10.0.0.7:9000") == ("10.0.0.7", 9000)
        assert _parse_addr(":9000") == ("127.0.0.1", 9000)
        assert _parse_addr("9000") == ("127.0.0.1", 9000)
        assert _parse_addr("somehost") == ("somehost",
                                           protocol.DEFAULT_PORT)

    def test_metrics_table(self, served, capsys):
        from repro.cli import main

        assert main(["metrics", f"{served.host}:{served.port}"]) == 0
        out = capsys.readouterr().out
        assert "traffic" in out and "bound_utilization" in out
        assert "answered" in out

    def test_metrics_json_is_strict(self, served, capsys):
        from repro.cli import main

        assert main(["metrics", f"{served.host}:{served.port}",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out, parse_constant=_reject)
        assert doc["answered"] == 1
        assert doc["bound_utilization"]["samples"] == 1
        assert doc["bound_utilization"]["violations"] == 0

    def test_metrics_connect_failure_is_typed(self, capsys):
        from repro.cli import main

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        assert main(["metrics", f"127.0.0.1:{free_port}",
                     "--connect-timeout", "0.2"]) == 1
        assert "error:" in capsys.readouterr().err


def _reject(constant):
    raise ValueError(f"non-strict JSON constant {constant}")


# ----------------------------------------------------- traced serving
class TestTracedServing:
    def test_request_span_tree_is_connected(self, imdb_small):
        recorder = TraceRecorder()
        service = QueryService(connect(imdb_small), workers=1,
                               tracer=recorder)
        try:
            with ServerThread(service) as handle:
                with ServeClient(handle.host, handle.port) as client:
                    client.query(BOUNDED)
                    client.query(BOUNDED)
        finally:
            service.close()
        traces = recorder.recent()
        assert len(traces) == 2
        for trace in traces:
            assert_connected(trace)
            root = trace.root
            assert root.name == "request"
            assert root.attrs["status"] == "answered"
            admission = trace.by_name("admission")
            assert admission and admission[0].parent_id == root.span_id
            assert trace.by_name("queue_wait")
            assert trace.by_name("batch_assembly")
            assert trace.by_name("plan_cache_lookup")
        # Bound accounting is stamped on the root: actual <= bound.
        for trace in traces:
            root = trace.root
            assert 0 < root.attrs["accessed"] <= root.attrs["bound"]
        # The batch-hosting trace carries the execution spans.
        batched = [t for t in traces if t.by_name("batch")]
        assert batched
        assert batched[0].by_name("execute")
        snapshot = service.snapshot()
        assert snapshot["tracing"]["traces_finished"] == 2
        assert snapshot["bound_utilization"]["samples"] == 2
        assert snapshot["bound_utilization"]["violations"] == 0

    def test_rejected_request_trace_has_status(self, imdb_small):
        from repro.errors import AdmissionRejected

        recorder = TraceRecorder()
        service = QueryService(connect(imdb_small), workers=1,
                               max_cost=0.5, tracer=recorder)
        try:
            with ServerThread(service) as handle:
                with ServeClient(handle.host, handle.port) as client:
                    with pytest.raises(AdmissionRejected):
                        client.query(BOUNDED)
        finally:
            service.close()
        (trace,) = recorder.recent()
        assert trace.root.attrs["status"] == "rejected"
        assert trace.root.attrs["error"] == "AdmissionRejected"

    def test_rescue_trace_spans(self, imdb_small):
        recorder = TraceRecorder()
        service = QueryService(connect(imdb_small), workers=1,
                               extend_budget=10 ** 6, tracer=recorder)
        try:
            with ServerThread(service) as handle:
                with ServeClient(handle.host, handle.port) as client:
                    assert client.query(UNBOUNDED).answer_count > 0
        finally:
            service.close()
        (trace,) = recorder.recent()
        assert_connected(trace)
        (rescue,) = trace.by_name("rescue")
        assert rescue.parent_id == trace.root.span_id
        assert rescue.attrs["constraints_added"] >= 1
        assert rescue.attrs["schema_version"] == 1
        children = {s.name for s in trace.children_of(rescue)}
        assert "plan_extension" in children
        assert "extend_schema" in children

    def test_untraced_service_records_bound_telemetry(self, imdb_small):
        """record_bound is unconditional: the histogram fills with the
        tracer off (the near-zero-cost path still has telemetry)."""
        service = QueryService(connect(imdb_small), workers=1)
        try:
            with ServerThread(service) as handle:
                with ServeClient(handle.host, handle.port) as client:
                    client.query(BOUNDED)
        finally:
            service.close()
        snapshot = service.snapshot()
        assert "tracing" not in snapshot
        assert snapshot["bound_utilization"]["samples"] == 1
        assert snapshot["bound_utilization"]["violations"] == 0


# ----------------------------------------------------- remote tracing
class TestRemoteTracing:
    def test_span_tree_covers_per_shard_rpcs(self, sharded_artifacts,
                                             fleets):
        from repro.pattern import parse_pattern

        recorder = TraceRecorder()
        query = parse_pattern(BOUNDED)
        with connect(sharded_artifacts[2], backend="remote",
                     shard_addrs=fleets[2]) as engine:
            root = recorder.trace("request")
            with activate(root):
                run = engine.query(query, SUBGRAPH)
            trace = root.trace.finish()
        assert run.answer
        assert_connected(trace)
        (execute,) = trace.by_name("execute")
        assert execute.attrs["strategy"] == "scatter"
        waves = trace.by_name("wave")
        assert waves
        rpcs = trace.by_name("shard_rpc")
        assert {span.attrs["shard"] for span in rpcs} == {0, 1}
        wave_ids = {span.span_id for span in waves}
        scatter_rpcs = [s for s in rpcs if s.attrs["rpc"] == "scatter"]
        assert scatter_rpcs
        for span in scatter_rpcs:
            assert span.parent_id in wave_ids
            # The shard server timed the op and replied with server_ms.
            assert span.attrs["server_ms"] >= 0.0
            assert "addr" in span.attrs

    def test_trace_survives_retry_and_reconnect(self, sharded_artifacts):
        from repro.pattern import parse_pattern

        query = parse_pattern(BOUNDED)
        path = sharded_artifacts[2]
        servers = [_FlakyOnceShardServer(path / "shard-0000").start(),
                   ShardServer(path / "shard-0001").start()]
        recorder = TraceRecorder()
        try:
            with connect(path, strategy="scatter") as inline:
                expected = canonical_answer(
                    SUBGRAPH, inline.query(query).answer)
            with connect(path, backend="remote",
                         shard_addrs=[s.address for s in servers],
                         retries=2, retry_backoff_s=0.01) as engine:
                root = recorder.trace("request")
                with activate(root):
                    run = engine.query(query, SUBGRAPH)
                trace = root.trace.finish()
                assert engine._shards.reconnects >= 1
        finally:
            for server in servers:
                server.stop()
        assert canonical_answer(SUBGRAPH, run.answer) == expected
        assert servers[0].tripped
        assert_connected(trace)
        retried = [s for s in trace.by_name("shard_rpc")
                   if s.attrs.get("retries")]
        assert retried
        assert retried[0].attrs["reconnects"] >= 1

    @given(shards=st.sampled_from(SHARD_COUNTS),
           semantics=st.sampled_from([SUBGRAPH, SIMULATION]))
    @settings(**_SETTINGS)
    def test_identical_answers_tracing_on_vs_off(self, sharded_artifacts,
                                                 fleets, shards, semantics):
        """The observability contract: spans observe, never steer —
        answers, G_Q, candidates, and AccessStats are byte-identical
        with tracing on and off at every shard count."""
        from repro.pattern import parse_pattern

        query = parse_pattern(BOUNDED)
        with connect(sharded_artifacts[shards], backend="remote",
                     shard_addrs=fleets[shards]) as engine:
            off = fingerprint(engine, query, semantics)
            recorder = TraceRecorder()
            root = recorder.trace("request")
            with activate(root):
                on = fingerprint(engine, query, semantics)
            trace = root.trace.finish()
        assert on == off
        assert trace.by_name("shard_rpc")  # tracing really was on


class _FlakyOnceShardServer(ShardServer):
    """Severs every connection on the first scatter, then behaves."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.tripped = False

    def dispatch(self, doc):
        if doc.get("op") == "scatter" and not self.tripped:
            self.tripped = True
            for conn in list(self._server.active_connections):
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        return super().dispatch(doc)


# ------------------------------------------------- shard server telemetry
class TestShardServerTelemetry:
    def test_traced_request_gets_server_ms_and_counter(self,
                                                       sharded_artifacts):
        path = sharded_artifacts[1]
        server = ShardServer(path / "shard-0000")
        untraced = server.dispatch({"op": "ping"})
        assert "server_ms" not in untraced
        traced = server.dispatch({"op": "ping",
                                  "trace": {"trace_id": "t-1",
                                            "span_id": 4}})
        assert traced["server_ms"] >= 0.0
        metrics = server.dispatch({"op": "metrics"})
        assert metrics["traced_requests"] == 1
        assert "scatter_seconds" in metrics
