"""Tests for instance boundedness and M-bounded extensions (Section V)."""

import pytest

from repro import AccessConstraint, AccessSchema
from repro.core.actualized import SIMULATION, SUBGRAPH
from repro.core.instance import (
    candidate_bounds,
    eechk,
    find_min_m,
    greedy_minimum_extension,
    is_instance_bounded,
    make_instance_bounded,
    maximum_extension,
    min_m_for_fraction,
    seechk,
    workload_labels,
)
from repro.errors import SchemaError
from repro.pattern import parse_pattern


@pytest.fixture()
def reduced_schema(a0_schema):
    """A0 without φ4/φ5 — Example 7's starting point."""
    return AccessSchema(c for c in a0_schema
                        if not (c.is_type1 and c.target in ("year", "award")))


class TestMaximumExtension:
    def test_example7(self, q0, reduced_schema, imdb_small):
        """Example 7: with M = 150, EEChk re-discovers φ4 (135 years) and
        φ5 (24 awards) and Q0 becomes instance-bounded."""
        graph, _ = imdb_small
        result = eechk([q0], reduced_schema, graph, 150)
        assert result.bounded
        added_type1 = {(c.target, c.bound) for c in result.added if c.is_type1}
        assert ("year", 135) in added_type1
        assert ("award", 24) in added_type1

    def test_extension_only_over_workload_labels(self, q0, reduced_schema,
                                                 imdb_small):
        graph, _ = imdb_small
        _, added = maximum_extension(graph, reduced_schema, [q0], 10**6)
        labels = workload_labels([q0])
        for constraint in added:
            assert constraint.target in labels
            assert set(constraint.source) <= labels

    def test_extension_constraints_hold(self, q0, reduced_schema, imdb_small):
        from repro import SchemaIndex
        graph, _ = imdb_small
        extension, _ = maximum_extension(graph, reduced_schema, [q0], 10**6)
        assert SchemaIndex(graph, extension).satisfied()

    def test_only_type1_and_type2_added(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        _, added = maximum_extension(graph, reduced_schema, [q0], 10**6)
        assert all(c.is_type1 or c.is_type2 for c in added)

    def test_bounds_capped_by_m(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        _, added = maximum_extension(graph, reduced_schema, [q0], 50)
        assert all(c.bound <= 50 for c in added)

    def test_negative_m_rejected(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        with pytest.raises(SchemaError):
            maximum_extension(graph, reduced_schema, [q0], -1)


class TestEEChk:
    def test_m_zero_insufficient(self, q0, reduced_schema, imdb_small):
        """M = 0 only yields bound-0 constraints for labels absent from G,
        which cannot cover Q0's (present) labels."""
        graph, _ = imdb_small
        result = eechk([q0], reduced_schema, graph, 0)
        assert not result.bounded

    def test_instance_bounded_below_effective_threshold(self, q0,
                                                        reduced_schema,
                                                        imdb_small):
        """On the small instance, per-node degree bounds (e.g. only a few
        actors per country) make Q0 instance-bounded at an M far below the
        135 that *effective* boundedness would need — the exact point of
        instance boundedness."""
        graph, _ = imdb_small
        m, result = find_min_m([q0], reduced_schema, graph)
        assert m is not None and m < 135
        assert result.bounded

    def test_monotone_in_m(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        fractions = [eechk([q0], reduced_schema, graph, m).bounded_fraction
                     for m in (0, 20, 150, 10**6)]
        assert fractions == sorted(fractions)

    def test_per_query_verdicts(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        hopeless = parse_pattern("p: person_nonexistent; q: movie; p -> q",
                                 name="hopeless")
        result = eechk([q0, hopeless], reduced_schema, graph, 10**6)
        assert result.per_query["Q0"] is True
        # 'person_nonexistent' is absent from G: label count 0 <= M, so a
        # type (1) bound of 0 applies and covers it; the edge has a
        # constraint with bound 0 as well.
        assert result.bounded_fraction >= 0.5

    def test_simulation_variant(self, q2, a1_schema, g1):
        result = seechk([q2], a1_schema, g1, 10)
        assert result.bounded
        assert result.semantics == SIMULATION

    def test_simulation_harder_than_subgraph(self, q0, reduced_schema,
                                             imdb_small):
        graph, _ = imdb_small
        sub = eechk([q0], reduced_schema, graph, 150)
        sim = seechk([q0], reduced_schema, graph, 150)
        assert sub.bounded_fraction >= sim.bounded_fraction


class TestMinM:
    def test_find_min_m_bounded(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        m, result = find_min_m([q0], reduced_schema, graph)
        assert m is not None
        assert result.bounded and result.m == m

    def test_min_m_is_minimal(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        m, _ = find_min_m([q0], reduced_schema, graph)
        below = is_instance_bounded([q0], reduced_schema, graph, m - 1)
        assert not below.bounded

    def test_fraction_sweep_monotone(self, imdb_small):
        import random

        from repro.pattern.generator import PatternGenerator
        graph, schema = imdb_small
        gen = PatternGenerator.from_graph(graph, rng=random.Random(2),
                                          schema=schema)
        queries = gen.generate_many(12)
        ms = []
        for fraction in (0.5, 0.75, 1.0):
            m, _ = min_m_for_fraction(queries, schema, graph, fraction)
            ms.append(m if m is not None else float("inf"))
        assert ms == sorted(ms)

    def test_make_instance_bounded(self, q0, reduced_schema, imdb_small):
        """Proposition 5: some M always works for workloads over G's labels."""
        graph, _ = imdb_small
        result = make_instance_bounded([q0], reduced_schema, graph)
        assert result is not None and result.bounded

    def test_candidate_bounds_sorted_unique(self, q0, imdb_small):
        graph, schema = imdb_small
        bounds = candidate_bounds(graph, [q0])
        assert bounds == sorted(set(bounds))


class TestGreedyExtension:
    def test_greedy_smaller_than_maximal(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        full = eechk([q0], reduced_schema, graph, 150)
        chosen = greedy_minimum_extension([q0], reduced_schema, graph, 150)
        assert chosen is not None
        assert len(chosen) <= len(full.added)
        extended = AccessSchema(reduced_schema)
        extended.extend(chosen)
        from repro import ebchk
        assert ebchk(q0, extended).bounded

    def test_greedy_none_when_impossible(self, q0, reduced_schema, imdb_small):
        graph, _ = imdb_small
        assert greedy_minimum_extension([q0], reduced_schema, graph, 5) is None

    def test_greedy_empty_when_already_bounded(self, q0, a0_schema, imdb_small):
        graph, _ = imdb_small
        chosen = greedy_minimum_extension([q0], a0_schema, graph, 10**6)
        assert chosen == []
