"""Unit tests for the mutable graph store."""

import pytest

from repro import Graph
from repro.errors import GraphError


class TestConstruction:
    def test_add_node_returns_sequential_ids(self):
        g = Graph()
        assert g.add_node("a") == 0
        assert g.add_node("b") == 1

    def test_add_node_with_explicit_id(self):
        g = Graph()
        assert g.add_node("a", node_id=10) == 10
        assert g.add_node("b") == 11  # allocation continues past it

    def test_add_node_duplicate_id_rejected(self):
        g = Graph()
        g.add_node("a", node_id=3)
        with pytest.raises(GraphError):
            g.add_node("b", node_id=3)

    def test_add_node_empty_label_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("")

    def test_add_node_non_string_label_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node(42)

    def test_add_edge(self):
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        assert g.add_edge(a, b) is True
        assert g.has_edge(a, b)
        assert not g.has_edge(b, a)
        assert g.num_edges == 1

    def test_add_edge_duplicate_is_noop(self):
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        assert g.add_edge(a, b) is True
        assert g.add_edge(a, b) is False
        assert g.num_edges == 1

    def test_add_edge_unknown_endpoint(self):
        g = Graph()
        a = g.add_node("a")
        with pytest.raises(GraphError):
            g.add_edge(a, 99)
        with pytest.raises(GraphError):
            g.add_edge(99, a)

    def test_self_loop_allowed(self):
        g = Graph()
        a = g.add_node("a")
        g.add_edge(a, a)
        assert g.has_edge(a, a)
        assert a in g.neighbors(a)


class TestRemoval:
    def test_remove_edge(self):
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        g.add_edge(a, b)
        g.remove_edge(a, b)
        assert not g.has_edge(a, b)
        assert g.num_edges == 0

    def test_remove_missing_edge(self):
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        with pytest.raises(GraphError):
            g.remove_edge(a, b)

    def test_remove_node_removes_incident_edges(self):
        g = Graph()
        a, b, c = g.add_node("a"), g.add_node("b"), g.add_node("c")
        g.add_edge(a, b)
        g.add_edge(c, b)
        g.remove_node(b)
        assert not g.has_node(b)
        assert g.num_edges == 0
        assert g.neighbors(a) == set()

    def test_remove_node_updates_label_index(self):
        g = Graph()
        a = g.add_node("only")
        g.remove_node(a)
        assert g.nodes_with_label("only") == set()
        assert "only" not in g.labels()

    def test_remove_unknown_node(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.remove_node(0)


class TestAccessors:
    def test_labels_and_values(self, tiny_graph):
        assert tiny_graph.label_of(0) == "movie"
        assert tiny_graph.value_of(1) == 2012
        assert tiny_graph.value_of(0) == "m1"

    def test_value_default_none(self):
        g = Graph()
        a = g.add_node("a")
        assert g.value_of(a) is None

    def test_set_value(self):
        g = Graph()
        a = g.add_node("a")
        g.set_value(a, 5)
        assert g.value_of(a) == 5
        g.set_value(a, None)
        assert g.value_of(a) is None

    def test_unknown_node_raises(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.label_of(999)
        with pytest.raises(GraphError):
            tiny_graph.value_of(999)
        with pytest.raises(GraphError):
            tiny_graph.out_neighbors(999)

    def test_neighbors_union_of_directions(self, tiny_graph):
        # actor(2): in from movie(0), out to country(3)
        assert tiny_graph.neighbors(2) == {0, 3}
        assert tiny_graph.in_neighbors(2) == {0}
        assert tiny_graph.out_neighbors(2) == {3}

    def test_degree(self, tiny_graph):
        assert tiny_graph.degree(2) == 2
        assert tiny_graph.out_degree(0) == 2
        assert tiny_graph.in_degree(1) == 2

    def test_nodes_with_label(self, tiny_graph):
        assert tiny_graph.nodes_with_label("movie") == {0, 4}
        assert tiny_graph.label_count("movie") == 2
        assert tiny_graph.nodes_with_label("nope") == set()

    def test_size(self, tiny_graph):
        assert tiny_graph.num_nodes == 5
        assert tiny_graph.num_edges == 4
        assert tiny_graph.size == 9

    def test_edges_iteration(self, tiny_graph):
        assert set(tiny_graph.edges()) == {(0, 1), (0, 2), (2, 3), (4, 1)}

    def test_contains_and_len(self, tiny_graph):
        assert 0 in tiny_graph
        assert 999 not in tiny_graph
        assert len(tiny_graph) == 5

    def test_is_adjacent_either_direction(self, tiny_graph):
        assert tiny_graph.is_adjacent(0, 1)
        assert tiny_graph.is_adjacent(1, 0)
        assert not tiny_graph.is_adjacent(1, 3)


class TestCommonNeighbors:
    def test_empty_set_yields_all_nodes(self, tiny_graph):
        assert tiny_graph.common_neighbors([]) == set(tiny_graph.nodes())

    def test_single_node(self, tiny_graph):
        assert tiny_graph.common_neighbors([1]) == {0, 4}

    def test_pair(self, tiny_graph):
        # Common neighbours of year(1) and actor(2): movie(0).
        assert tiny_graph.common_neighbors([1, 2]) == {0}

    def test_disjoint(self, tiny_graph):
        assert tiny_graph.common_neighbors([1, 3]) == set()


class TestSubgraphAndCopy:
    def test_induced_subgraph(self, tiny_graph):
        sub = tiny_graph.subgraph([0, 1, 2])
        assert set(sub.nodes()) == {0, 1, 2}
        assert set(sub.edges()) == {(0, 1), (0, 2)}
        assert sub.value_of(1) == 2012

    def test_subgraph_with_explicit_edges(self, tiny_graph):
        sub = tiny_graph.subgraph([0, 1, 2], edges=[(0, 1)])
        assert set(sub.edges()) == {(0, 1)}

    def test_subgraph_edge_outside_nodes_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.subgraph([0, 1], edges=[(0, 2)])

    def test_copy_is_independent(self, tiny_graph):
        clone = tiny_graph.copy()
        clone.add_node("new")
        clone.remove_edge(0, 1)
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.num_nodes == 5
        assert clone.num_nodes == 6

    def test_repr(self, tiny_graph):
        assert "nodes=5" in repr(tiny_graph)
