"""Tests for subgraph sampling (scale-factor machinery)."""

import pytest

from repro import SchemaIndex
from repro.errors import GraphError
from repro.graph.sampling import induced_sample, scale_series


class TestInducedSample:
    def test_fraction_one_keeps_everything(self, tiny_graph):
        sample = induced_sample(tiny_graph, 1.0)
        assert set(sample.nodes()) == set(tiny_graph.nodes())
        assert set(sample.edges()) == set(tiny_graph.edges())

    def test_smaller_fraction_shrinks(self, imdb_small):
        graph, _ = imdb_small
        sample = induced_sample(graph, 0.3, seed=1)
        assert sample.num_nodes < graph.num_nodes
        assert sample.num_nodes > 0

    def test_sample_is_subgraph(self, imdb_small):
        graph, _ = imdb_small
        sample = induced_sample(graph, 0.5, seed=2)
        for v in sample.nodes():
            assert graph.has_node(v)
            assert sample.label_of(v) == graph.label_of(v)
        for (v, w) in sample.edges():
            assert graph.has_edge(v, w)

    def test_constraints_monotone_under_sampling(self, imdb_small):
        """The load-bearing property: G |= A implies sample(G) |= A."""
        graph, schema = imdb_small
        for seed in (0, 1):
            sample = induced_sample(graph, 0.4, seed=seed)
            assert SchemaIndex(sample, schema).satisfied()

    def test_keep_labels_retained(self, imdb_small):
        graph, _ = imdb_small
        sample = induced_sample(graph, 0.01, seed=3, keep_labels={"year"})
        assert sample.label_count("year") == graph.label_count("year")

    def test_deterministic(self, imdb_small):
        graph, _ = imdb_small
        a = induced_sample(graph, 0.5, seed=9)
        b = induced_sample(graph, 0.5, seed=9)
        assert set(a.nodes()) == set(b.nodes())

    @pytest.mark.parametrize("fraction", [0, -0.5, 1.5])
    def test_invalid_fraction(self, tiny_graph, fraction):
        with pytest.raises(GraphError):
            induced_sample(tiny_graph, fraction)


class TestScaleSeries:
    def test_series_monotone_in_size(self, imdb_small):
        graph, _ = imdb_small
        series = scale_series(graph, (0.25, 0.5, 1.0), seed=4)
        sizes = [g.size for _, g in series]
        assert sizes == sorted(sizes)

    def test_fraction_one_reuses_object(self, tiny_graph):
        series = scale_series(tiny_graph, (0.5, 1.0))
        assert series[-1][1] is tiny_graph
