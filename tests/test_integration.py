"""Cross-module integration tests on all three dataset stand-ins.

For each dataset: generate a workload, and for every effectively bounded
query verify the full pipeline — EBChk -> QPlan -> execute -> match —
against direct evaluation on the whole graph, for both semantics.
"""

import random

import pytest

from repro import (
    AccessStats,
    SchemaIndex,
    bsim,
    bvf2,
    ebchk,
    find_matches,
    qplan,
    sebchk,
    simulate,
    sqplan,
)
from repro.matching.simulation import relation_pairs
from repro.pattern.generator import PatternGenerator

DATASETS = ["imdb_small", "dbpedia_small", "web_small"]


@pytest.fixture(params=DATASETS)
def dataset(request):
    graph, schema = request.getfixturevalue(request.param)
    return request.param, graph, schema


class TestEndToEnd:
    def test_subgraph_pipeline(self, dataset):
        name, graph, schema = dataset
        sx = SchemaIndex(graph, schema)
        gen = PatternGenerator.from_graph(graph, rng=random.Random(13),
                                          schema=schema)
        checked = 0
        for query in gen.generate_many(25, num_nodes=4):
            verdict = ebchk(query, schema)
            if not verdict.bounded:
                continue
            checked += 1
            plan = qplan(query, schema)
            run = bvf2(query, sx, plan=plan)
            direct = find_matches(query, graph)
            assert {frozenset(m.items()) for m in run.answer} == \
                   {frozenset(m.items()) for m in direct}, \
                   f"{name}/{query.name}"
        assert checked >= 3, f"{name}: workload too unbounded to be useful"

    def test_simulation_pipeline(self, dataset):
        name, graph, schema = dataset
        sx = SchemaIndex(graph, schema)
        gen = PatternGenerator.from_graph(graph, rng=random.Random(14),
                                          schema=schema)
        checked = 0
        for query in gen.generate_many(40, num_nodes=3):
            if not sebchk(query, schema).bounded:
                continue
            checked += 1
            run = bsim(query, sx)
            assert relation_pairs(run.answer) == \
                   relation_pairs(simulate(query, graph)), \
                   f"{name}/{query.name}"
        assert checked >= 2, f"{name}: workload too unbounded to be useful"

    def test_bounded_access_is_fraction_of_graph(self, dataset):
        """Fig. 5(d,h,l): accessed data is a small fraction of |G|."""
        name, graph, schema = dataset
        sx = SchemaIndex(graph, schema)
        gen = PatternGenerator.from_graph(graph, rng=random.Random(15),
                                          schema=schema)
        for query in gen.generate_many(20, num_nodes=3):
            if not ebchk(query, schema).bounded:
                continue
            stats = AccessStats()
            bvf2(query, sx, stats=stats)
            assert stats.total_accessed <= graph.size


class TestScaleIndependence:
    """Fig. 5(a,e,i): the fetched volume does not grow with |G|."""

    @pytest.mark.parametrize("maker", ["imdb", "dbpedia", "web"])
    def test_access_constant_across_scales(self, maker):
        from repro.graph.generators import dbpedia_like, imdb_like, web_like
        make = {"imdb": imdb_like, "dbpedia": dbpedia_like,
                "web": web_like}[maker]

        graph_small, schema = make(scale=0.01, seed=3)
        graph_large, _ = make(scale=0.04, seed=3)
        assert graph_large.size > graph_small.size

        gen = PatternGenerator.from_graph(graph_small,
                                          rng=random.Random(16),
                                          schema=schema)
        compared = 0
        for query in gen.generate_many(25, num_nodes=3):
            if not ebchk(query, schema).bounded:
                continue
            plan = qplan(query, schema)
            # The *worst-case* bound is a function of Q and A only:
            plan_large = qplan(query, schema)
            assert plan.worst_case_total_accessed == \
                   plan_large.worst_case_total_accessed
            small_stats = AccessStats()
            large_stats = AccessStats()
            bvf2(query, SchemaIndex(graph_small, schema), plan=plan,
                 stats=small_stats)
            bvf2(query, SchemaIndex(graph_large, schema), plan=plan,
                 stats=large_stats)
            # Actual access on the big graph stays within the same
            # worst-case envelope (it does NOT scale with |G|).
            assert large_stats.total_accessed <= \
                   plan.worst_case_total_accessed
            compared += 1
        assert compared >= 2


class TestFrozenGraphPipeline:
    def test_bounded_evaluation_on_frozen_snapshot(self, imdb_small, q0,
                                                   a0_schema):
        """The whole pipeline runs on a FrozenGraph unchanged."""
        from repro import FrozenGraph
        graph, _ = imdb_small
        frozen = FrozenGraph.from_graph(graph)
        sx = SchemaIndex(frozen, a0_schema)
        run = bvf2(q0, sx)
        direct = find_matches(q0, graph)
        assert {frozenset(m.items()) for m in run.answer} == \
               {frozenset(m.items()) for m in direct}

    def test_simulation_on_frozen(self, imdb_small):
        from repro import FrozenGraph
        from repro.pattern import parse_pattern
        graph, schema = imdb_small
        frozen = FrozenGraph.from_graph(graph)
        p = parse_pattern("a: actor; c: country; a -> c")
        assert relation_pairs(simulate(p, frozen)) == \
               relation_pairs(simulate(p, graph))
